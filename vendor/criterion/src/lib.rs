//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a clean-room micro-benchmark harness with the same API
//! shape: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], and [`BatchSize`]. Timing is a single short
//! calibrated run per benchmark (p50/p95/p99 of the per-iteration
//! wall-clock samples, printed to stdout) — no warm-up schedule,
//! distribution fitting, or HTML reports.
//!
//! # Examples
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut g = c.benchmark_group("arith");
//! g.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
//! g.finish();
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as upstream criterion
/// provides.
pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Samples per benchmark (p50/p95/p99 are reported).
const SAMPLES: usize = 11;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            samples: SAMPLES,
        }
    }

    /// Benchmarks `f` directly under `id`, outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), SAMPLES, &mut f);
        self
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples taken per benchmark in this
    /// group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream finalizes reports here; this prints
    /// nothing).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter,
/// rendered `name/param`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds the identifier `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Setup-cost hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, ignored by this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is small; upstream batches many per allocation.
    SmallInput,
    /// Setup output is large; upstream batches one per allocation.
    LargeInput,
    /// Upstream default.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    n_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` (like the real criterion's
    /// `iter`, each output is dropped inside the timed loop).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let per_sample = MEASURE_BUDGET / self.n_samples as u32;
        for _ in 0..self.n_samples {
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                black_box(routine());
                iters += 1;
                let elapsed = start.elapsed();
                if elapsed >= per_sample {
                    self.samples.push(elapsed / iters as u32);
                    break;
                }
            }
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time and
    /// the drop of the routine's output are excluded from the
    /// measurement (matching the real criterion's `iter_batched`).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let per_sample = MEASURE_BUDGET / self.n_samples as u32;
        for _ in 0..self.n_samples {
            let mut iters = 0u64;
            let mut spent = Duration::ZERO;
            loop {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                spent += start.elapsed();
                drop(out);
                iters += 1;
                if spent >= per_sample {
                    self.samples.push(spent / iters as u32);
                    break;
                }
            }
        }
    }
}

/// Nearest-rank percentile of **sorted** `samples`: the smallest
/// element with at least `q`% of the data at or below it. `q` is
/// clamped to `(0, 100]`; empty input returns `None`.
pub fn percentile(sorted: &[Duration], q: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

fn run_one(label: &str, n_samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        n_samples,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no measurement)");
        return;
    }
    b.samples.sort_unstable();
    let p50 = percentile(&b.samples, 50.0).expect("nonempty");
    let p95 = percentile(&b.samples, 95.0).expect("nonempty");
    let p99 = percentile(&b.samples, 99.0).expect("nonempty");
    println!("  {label:<40} p50 {p50:>12.3?}/iter  p95 {p95:>12.3?}/iter  p99 {p99:>12.3?}/iter");
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut ran = 0u32;
        g.bench_function("plain", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput);
        });
        ran += 1;
        g.finish();
        assert_eq!(ran, 1);
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |v: u64| Duration::from_millis(v);
        let sorted: Vec<Duration> = (1..=11).map(ms).collect();
        // Nearest rank over 11 samples: ceil(0.50*11)=6 → 6ms,
        // ceil(0.95*11)=11 → 11ms (the max), same for p99.
        assert_eq!(percentile(&sorted, 50.0), Some(ms(6)));
        assert_eq!(percentile(&sorted, 95.0), Some(ms(11)));
        assert_eq!(percentile(&sorted, 99.0), Some(ms(11)));
        assert_eq!(percentile(&sorted, 100.0), Some(ms(11)));
        // Tiny quantiles clamp to the minimum, never index below 0.
        assert_eq!(percentile(&sorted, 0.0), Some(ms(1)));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[ms(3)], 99.0), Some(ms(3)));
    }
}
