//! Offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a clean-room implementation of exactly the surface its
//! crates call: [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], the seeded
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — statistically solid for
//! test workloads, deterministic per seed, and *not* the upstream
//! ChaCha-based `StdRng` stream (seeds produce different sequences
//! than the real crate; nothing in this workspace depends on the
//! upstream stream).
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: u32 = rng.gen_range(0..10);
//! assert!(x < 10);
//! assert_eq!(StdRng::seed_from_u64(7).gen_range(0..10u32), x);
//! ```

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next pseudorandom `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudorandom `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, auto-implemented for every
/// [`RngCore`] exactly as in `rand` 0.8.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive
    /// integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random mantissa bits, the standard uniform-f64 recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself; the stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform sampling below `n` (Lemire-style
/// widening multiply with a rejection loop for exactness).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Seedable generators; only the `seed_from_u64` entry point of the
/// upstream trait is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions; only `shuffle` and `choose` are provided.
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-4..4i64);
            assert!((-4..4).contains(&z));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
