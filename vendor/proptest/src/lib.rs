//! Offline stand-in for the subset of `proptest` 1.x this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a clean-room property-testing harness with the same API
//! shape: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and
//! tuple strategies, [`collection::vec`], [`strategy::Strategy::prop_map`],
//! and `any::<bool>()`. Cases are generated from a fixed seed, so runs
//! are deterministic. **No shrinking** is performed on failure — the
//! failing inputs are reported as generated.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(8))]
//!     // `#[test]` goes here in a real test module.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]

/// Case generation driver and error plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies; a seeded [`StdRng`].
    pub type TestRng = StdRng;

    /// Mirror of `proptest::test_runner::Config` (only `cases` is
    /// honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// Runs `body` on freshly generated cases until `cfg.cases`
    /// successes accumulate.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when rejections outnumber
    /// successes beyond any reasonable assume-density.
    pub fn run(cfg: &Config, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut rng = TestRng::seed_from_u64(0x70726F70_74657374);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        while passed < cfg.cases {
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= 256 * u64::from(cfg.cases),
                        "proptest: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed (case {passed}, no shrinking): {msg}")
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u32()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.gen_range(0..=u8::MAX)
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::new()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification accepted by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case (without shrinking) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (it does not count toward the case quota)
/// if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` running [`test_runner::run`] over generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __out: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                __out
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0u64..5, 0u64..5), flip in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
            let _ = flip;
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 21);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume should have filtered {}", n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        proptest! {
            fn always_fails(n in 0u32..10) {
                prop_assert!(n > 100);
            }
        }
        always_fails();
    }
}
