//! Integration: the paper's connectivity algorithm against both
//! baselines on shared streams (experiment E3's correctness layer).

use mpc_stream::baselines::{AgmBaseline, FullMemoryBaseline};
use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::mpc::{MpcConfig, MpcContext};

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

#[test]
fn all_three_agree_with_the_oracle() {
    let n = 48;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.7, 1234);
    let snaps = stream.replay();
    let mut ctx = ctx_for(n);
    let mut ours = Connectivity::new(n, ConnectivityConfig::default(), 1);
    let mut agm = AgmBaseline::new(n, 2);
    let mut full = FullMemoryBaseline::new(n);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        ours.apply_batch(batch, &mut ctx).expect("ours");
        agm.apply_batch(batch, &mut ctx);
        full.apply_batch(batch, &mut ctx);
        let expect = oracle::components(n, snap.edges());
        assert_eq!(ours.component_labels(), &expect[..], "ours diverged");
        assert_eq!(agm.query_components(&mut ctx), expect, "agm diverged");
        assert_eq!(full.query_components(&mut ctx), expect, "fullmem diverged");
    }
}

#[test]
fn our_queries_are_constant_rounds_agm_queries_are_not() {
    // A long path maximizes Borůvka depth for the AGM recompute.
    let n = 128;
    let mut ctx = ctx_for(n);
    let mut ours = Connectivity::new(n, ConnectivityConfig::default(), 3);
    let mut agm = AgmBaseline::new(n, 4);
    let batchify = gen::path_stream(n, 16, false);
    for batch in &batchify.batches {
        ours.apply_batch(batch, &mut ctx).expect("ours");
        agm.apply_batch(batch, &mut ctx);
    }
    // Our query: the labelling is maintained — zero additional rounds.
    ctx.begin_phase("our-query");
    let _ = ours.component_of(77);
    let _ = ours.spanning_forest();
    let ours_rounds = ctx.end_phase().rounds;
    // AGM query: full Borůvka cascade.
    let _ = agm.query_components(&mut ctx);
    let agm_rounds = agm.last_query_rounds();
    assert_eq!(ours_rounds, 0, "maintained solution needs no rounds");
    assert!(
        agm_rounds >= 4,
        "AGM recompute should need multiple levels, got {agm_rounds}"
    );
}

#[test]
fn total_memory_ours_flat_baseline_linear_in_m() {
    // Densify a fixed vertex set and watch the two memory curves.
    let n = 64;
    let stream = gen::densifying_stream(n, 800, 32, 5);
    let mut ctx = ctx_for(n);
    let mut ours = Connectivity::new(n, ConnectivityConfig::default(), 6);
    let mut full = FullMemoryBaseline::new(n);
    let mut ours_words = Vec::new();
    let mut full_words = Vec::new();
    for batch in &stream.batches {
        ours.apply_batch(batch, &mut ctx).expect("ours");
        full.apply_batch(batch, &mut ctx);
        ours_words.push(ours.words());
        full_words.push(full.words());
    }
    let ours_growth = *ours_words.last().unwrap() as f64 / ours_words[0] as f64;
    let full_growth = *full_words.last().unwrap() as f64 / full_words[0] as f64;
    // The baseline's footprint grows ~linearly with m (>5x over this
    // sweep); ours grows only marginally (forest edges), well under 2x.
    assert!(
        full_growth > 5.0,
        "baseline growth {full_growth} unexpectedly flat"
    );
    assert!(
        ours_growth < 2.0,
        "our growth {ours_growth} should be nearly flat in m"
    );
}

#[test]
fn star_and_path_torture_streams() {
    for stream in [
        gen::path_stream(96, 12, true),
        gen::star_stream(96, 12, true),
    ] {
        let n = stream.n;
        let snaps = stream.replay();
        let mut ctx = ctx_for(n);
        let mut ours = Connectivity::new(n, ConnectivityConfig::default(), 8);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            ours.apply_batch(batch, &mut ctx).expect("ours");
            let expect = oracle::components(n, snap.edges());
            assert_eq!(ours.component_labels(), &expect[..]);
        }
    }
}

#[test]
fn deep_component_replacement_search() {
    // A ladder: two parallel paths plus a rung at every position, so
    // deleting any set of path edges always has rung replacements.
    let n = 40usize;
    let half = n as u32 / 2;
    let mut edges: Vec<Edge> = Vec::new();
    for i in 0..half - 1 {
        edges.push(Edge::new(i, i + 1)); // path A
        edges.push(Edge::new(half + i, half + i + 1)); // path B
    }
    for i in 0..half {
        edges.push(Edge::new(i, half + i)); // rungs
    }
    let mut ctx = ctx_for(n);
    let mut ours = Connectivity::new(n, ConnectivityConfig::default(), 9);
    ours.apply_batch(
        &mpc_stream::graph::update::Batch::inserting(edges.clone()),
        &mut ctx,
    )
    .expect("build");
    assert_eq!(ours.component_count(), 1);
    // Delete a batch of interior path-A edges at once.
    let victims: Vec<Edge> = (4..12u32).map(|i| Edge::new(i, i + 1)).collect();
    ours.apply_batch(
        &mpc_stream::graph::update::Batch::deleting(victims.clone()),
        &mut ctx,
    )
    .expect("delete");
    let live: Vec<Edge> = edges.into_iter().filter(|e| !victims.contains(e)).collect();
    assert_eq!(
        ours.component_labels(),
        &oracle::components(n, live.iter().copied())[..],
    );
    assert_eq!(ours.component_count(), 1, "replacements must reconnect");
}
