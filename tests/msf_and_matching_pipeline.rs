//! Integration: the Section 7 (MSF, bipartiteness) and Section 8
//! (matching) algorithms running over shared generated workloads.

use mpc_stream::graph::dynamic::DynamicGraph;
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::{Edge, WeightedEdge};
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::Batch;
use mpc_stream::matching::{
    AklyMatching, CappedGreedyMatching, MatchingSizeEstimator, MaximalMatching, StreamKind,
};
use mpc_stream::mpc::{MpcConfig, MpcContext};
use mpc_stream::msf::{ApproxMsfForest, ApproxMsfWeight, Bipartiteness, ExactMsf};

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

#[test]
fn exact_msf_full_stream_vs_kruskal() {
    let n = 64;
    let stream = gen::random_weighted_insert_stream(n, 8, 16, 100, 42);
    let mut ctx = ctx_for(n);
    let mut msf = ExactMsf::new(n);
    let mut all: Vec<WeightedEdge> = Vec::new();
    for batch in &stream.batches {
        msf.apply_batch(batch, &mut ctx).expect("msf batch");
        all.extend(batch.insertions());
        assert_eq!(msf.weight(), oracle::msf_weight(n, all.iter().copied()));
    }
    // The forest itself is a valid MSF: same weight, forest, spanning.
    let forest = msf.forest();
    assert_eq!(
        forest.len(),
        oracle::kruskal_msf(n, all.iter().copied()).len()
    );
}

#[test]
fn exact_and_approx_msf_agree_within_eps() {
    let n = 48;
    let max_w = 64;
    let eps = 0.2;
    let stream = gen::random_weighted_insert_stream(n, 6, 12, max_w, 17);
    let mut ctx = ctx_for(n);
    let mut exact = ExactMsf::new(n);
    let mut approx = ApproxMsfWeight::new(n, eps, max_w, 17);
    for batch in &stream.batches {
        exact.apply_batch(batch, &mut ctx).expect("exact");
        approx.apply_batch(batch, &mut ctx).expect("approx");
        let (w, est) = (exact.weight() as f64, approx.weight_estimate());
        assert!(
            est >= w - 1e-6 && est <= w * (1.0 + eps) + 1e-6,
            "estimate {est} vs exact {w}"
        );
    }
}

#[test]
fn approx_forest_under_heavy_churn() {
    let n = 32;
    let max_w = 16;
    let stream = gen::random_weighted_stream(n, 10, 8, 0.6, max_w, 23);
    let mut ctx = ctx_for(n);
    let mut af = ApproxMsfForest::new(n, 0.25, max_w, 23);
    let mut live = DynamicGraph::new(n);
    for batch in &stream.batches {
        af.apply_batch(batch, &mut ctx).expect("approx forest");
        live.apply_weighted(batch).expect("valid stream");
        let forest = af.forest();
        let mut uf = oracle::UnionFind::new(n);
        for (e, _) in &forest {
            assert!(live.contains(*e));
            assert!(uf.union(e.u(), e.v()), "cycle at {e}");
        }
        assert_eq!(
            uf.component_count(),
            oracle::component_count(n, live.edges()),
        );
        let true_weight: u64 = forest.iter().map(|(e, _)| live.weight(*e).unwrap()).sum();
        let exact = oracle::msf_weight(n, live.weighted_edges().collect::<Vec<_>>());
        assert!(true_weight as f64 <= exact as f64 * 1.25 + 1e-6);
    }
}

#[test]
fn bipartiteness_tracks_oracle_through_churn() {
    let (stream, _) = gen::bipartite_stream_with_violation(20, 10, 5, Some(4), 31);
    let snaps = stream.replay();
    let mut ctx = ctx_for(2 * stream.n);
    let mut bip = Bipartiteness::new(stream.n, 7);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        bip.apply_batch(batch, &mut ctx).expect("bipartite batch");
        let edges: Vec<Edge> = snap.edges().collect();
        assert_eq!(bip.is_bipartite(), oracle::is_bipartite(stream.n, &edges));
    }
}

#[test]
fn matching_stack_on_one_planted_workload() {
    let (stream, opt) = gen::planted_matching_stream(32, 40, 12, 55);
    let n = stream.n;
    let mut ctx = ctx_for(n);
    let mut greedy = CappedGreedyMatching::for_alpha(n, 2.0);
    let mut akly = AklyMatching::new(n, 2.0, 5);
    let mut est_ins = MatchingSizeEstimator::new(n, 2.0, StreamKind::InsertionOnly, 6);
    let mut est_dyn = MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 6);
    for batch in &stream.batches {
        let ins: Vec<Edge> = batch.insertions().collect();
        greedy.apply_insert_batch(&ins, &mut ctx);
        akly.apply_batch(batch, &mut ctx).expect("valid stream");
        est_ins.apply_batch(batch, &mut ctx).expect("valid stream");
        est_dyn.apply_batch(batch, &mut ctx).expect("valid stream");
    }
    // All four track OPT within generous O(α) windows.
    assert!(greedy.len() * 8 >= opt, "greedy {} vs {opt}", greedy.len());
    assert!(
        akly.matching_size() * 16 >= opt,
        "akly {} vs {opt}",
        akly.matching_size()
    );
    assert!(est_ins.estimate() * 16 >= opt && est_ins.estimate() <= 8 * opt);
    assert!(est_dyn.estimate() * 32 >= opt && est_dyn.estimate() <= 8 * opt);
}

#[test]
fn no21_substrate_survives_adversarial_deletion_of_its_matching() {
    // Repeatedly delete exactly the matched edges — the worst case
    // for rematching.
    let n = 64;
    let mut ctx = ctx_for(n);
    let mut mm = MaximalMatching::new(n);
    // Complete bipartite-ish block so replacements always exist.
    let mut edges = Vec::new();
    for a in 0..16u32 {
        for b in 16..32u32 {
            edges.push(Edge::new(a, b));
        }
    }
    mm.apply_batch(&Batch::inserting(edges.iter().copied()), &mut ctx)
        .expect("valid stream");
    for round in 0..10 {
        assert!(mm.is_maximal(), "round {round}");
        let matched = mm.matching();
        assert!(!matched.is_empty());
        mm.apply_batch(&Batch::deleting(matched.iter().copied()), &mut ctx)
            .expect("valid stream");
    }
    assert!(mm.is_maximal());
}

#[test]
fn cross_algorithm_consistency_on_one_stream() {
    // One unweighted stream feeds connectivity-style structures of
    // three crates; they must agree on the component structure.
    use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
    let n = 40;
    let stream = gen::random_mixed_stream(n, 6, 10, 0.75, 91);
    let snaps = stream.replay();
    let mut ctx = ctx_for(2 * n);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    let mut bip = Bipartiteness::new(n, 2);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        conn.apply_batch(batch, &mut ctx).expect("conn");
        bip.apply_batch(batch, &mut ctx).expect("bip");
        assert_eq!(
            conn.component_count(),
            oracle::component_count(n, snap.edges())
        );
        assert_eq!(bip.component_count(), conn.component_count());
    }
}

#[test]
fn unit_weighted_helper_round_trips() {
    let batch = Batch::inserting([Edge::new(0, 1), Edge::new(2, 3)]);
    let wb = mpc_stream::msf::approx::unit_weighted(&batch);
    assert_eq!(wb.unweighted(), batch);
}
