//! Whole-pipeline determinism: DESIGN.md's reproducibility rule says
//! every run is a pure function of its explicit seeds. Two
//! independent executions with the same seeds must produce *identical*
//! outputs — labels, forests, certificates, matchings, and round
//! counts. (This suite exists because a `HashMap` iteration order
//! once leaked into the k-connectivity peel; see CHANGELOG 0.2.0.)

use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::kconn::DynamicKConn;
use mpc_stream::matching::AklyMatching;
use mpc_stream::mpc::{MpcConfig, MpcContext};
use mpc_stream::msf::ExactMsf;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// Two identically seeded connectivity runs agree on every observable
/// — including the exact round count, which depends on the whole
/// internal control flow.
#[test]
fn connectivity_runs_are_bit_identical() {
    let n = 96;
    let stream = gen::random_mixed_stream(n, 10, 12, 0.6, 0xDE7);
    let run = || {
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 0x5EED);
        let mut trace = Vec::new();
        for batch in &stream.batches {
            ctx.begin_phase("b");
            conn.apply_batch(batch, &mut ctx).expect("in regime");
            let r = ctx.end_phase();
            trace.push((r.rounds, r.words, conn.component_labels().to_vec()));
        }
        (trace, conn.spanning_forest())
    };
    assert_eq!(run(), run());
}

/// Identically seeded certificate peels are identical, layer by
/// layer.
#[test]
fn kconn_peels_are_identical() {
    let n = 64;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 0xC0DE);
    let run = || {
        let mut ctx = ctx_for(n);
        let mut kc = DynamicKConn::new(n, 3, 0xACE);
        let mut certs = Vec::new();
        for batch in &stream.batches {
            kc.apply_batch(batch, &mut ctx).expect("valid stream");
            certs.push(kc.certificate(&mut ctx));
        }
        certs
    };
    assert_eq!(run(), run());
}

/// Exact MSF runs are identical (forest edge lists, not just
/// weights).
#[test]
fn msf_runs_are_identical() {
    let n = 64;
    let stream = gen::random_weighted_insert_stream(n, 6, 12, 100, 0xF00);
    let run = || {
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        for batch in &stream.batches {
            msf.apply_batch(batch, &mut ctx).expect("insert-only");
        }
        let mut f = msf.forest();
        f.sort();
        f
    };
    assert_eq!(run(), run());
}

/// The AKLY sparsifier matcher — the most randomness-heavy structure
/// (hash partitions, active pairs, samplers, rematch rounds) — still
/// reproduces exactly from its seed.
#[test]
fn akly_matching_runs_are_identical() {
    let n = 64;
    let stream = gen::random_mixed_stream(n, 6, 8, 0.7, 0xBEE);
    let run = || {
        let mut ctx = ctx_for(n);
        let mut akly = AklyMatching::new(n, 2.0, 0x5EED);
        let mut sizes = Vec::new();
        for batch in &stream.batches {
            akly.apply_batch(batch, &mut ctx).expect("valid stream");
            let mut m = akly.matching();
            m.sort();
            sizes.push(m);
        }
        sizes
    };
    assert_eq!(run(), run());
}

/// Same seeds, different executors: the full Session pipeline is a
/// pure function of its seeds *and nothing else* — in particular not
/// of the host worker count, which only changes which thread runs
/// each maintainer's branch before the event logs are replayed.
#[test]
fn session_runs_are_identical_across_worker_counts() {
    use mpc_stream::prelude::*;
    let n = 48;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 0x90D);
    let run = |workers: usize| {
        let cfg = MpcConfig::builder(2 * n, 0.5)
            .local_capacity(1 << 16)
            .build();
        let mut session = Session::new(cfg).with_workers(workers);
        let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 0x5EED));
        session.register(DynamicKConn::new(n, 3, 0xACE));
        let akly = session.register(AklyMatching::new(n, 2.0, 0xBEE));
        let mut trace = Vec::new();
        for batch in &stream.batches {
            let reports = session.apply_batch(batch).expect("in regime");
            trace.push((
                reports,
                session.get(conn).component_labels().to_vec(),
                session.get(akly).matching(),
            ));
        }
        let cuts = session
            .ask_all(&QueryRequest::MinCutLowerBound)
            .expect("answered");
        (trace, cuts, session.stats().clone())
    };
    let serial = run(1);
    assert_eq!(run(2), serial, "2 workers diverged from serial");
    assert_eq!(run(4), serial, "4 workers diverged from serial");
}

/// A restored maintainer's RNG streams continue *exactly* where the
/// original stopped: snapshotting mid-stream and resuming must
/// reproduce the uninterrupted run's sampler outcomes — the spanning
/// forest rebuilt from ℓ0 samples after deletions, the cumulative
/// sampler-failure count, and every per-batch round/word charge.
/// (A snapshot that re-seeded or replayed its samplers would diverge
/// on the first post-restore deletion.)
#[test]
fn restored_sampler_streams_continue_exactly() {
    use mpc_stream::core_alg::Maintain;
    use mpc_stream::snapshot::{load_section, save_section, Snapshot, SnapshotWriter};
    let n = 96;
    let stream = gen::random_mixed_stream(n, 10, 12, 0.6, 0xDE7);
    let split = stream.batches.len() / 2;
    type Trace = Vec<(u64, u64, Vec<u32>, Vec<Edge>, u64)>;
    let observe = |conn: &mut Connectivity, ctx: &mut MpcContext, batch| {
        ctx.begin_phase("b");
        conn.apply_batch(batch, ctx).expect("in regime");
        let r = ctx.end_phase();
        let mut f = conn.spanning_forest();
        f.sort();
        (
            r.rounds,
            r.words,
            conn.component_labels().to_vec(),
            f,
            Maintain::l0_failures(conn),
        )
    };

    // The uninterrupted twin.
    let mut ctx = ctx_for(n);
    let mut full = Connectivity::new(n, ConnectivityConfig::default(), 0x5EED);
    let mut full_trace: Trace = Vec::new();
    for batch in &stream.batches {
        full_trace.push(observe(&mut full, &mut ctx, batch));
    }

    // The interrupted twin: half the stream, a `Persist` round-trip
    // through real snapshot bytes, then the rest of the stream.
    let mut ctx = ctx_for(n);
    let mut first_half = Connectivity::new(n, ConnectivityConfig::default(), 0x5EED);
    let mut trace: Trace = Vec::new();
    for batch in &stream.batches[..split] {
        trace.push(observe(&mut first_half, &mut ctx, batch));
    }
    let mut w = SnapshotWriter::new(0);
    save_section(&mut w, "conn", &first_half);
    let bytes = w.finish();
    drop(first_half);
    let snap = Snapshot::from_bytes(&bytes).expect("container parses");
    let mut resumed: Connectivity = load_section(&snap, "conn").expect("decodes");
    let mut ctx = ctx_for(n);
    for batch in &stream.batches[split..] {
        trace.push(observe(&mut resumed, &mut ctx, batch));
    }
    assert_eq!(
        trace, full_trace,
        "post-restore sampler outcomes diverged from the uninterrupted run"
    );
}

/// Different seeds genuinely change the randomized internals (the
/// deterministic tests above are not vacuous).
#[test]
fn different_seeds_differ_somewhere() {
    let n = 48;
    // A star whose tree deletions force replacement sampling.
    let center_edges: Vec<Edge> = (1..n as u32).map(|i| Edge::new(0, i)).collect();
    let extra: Vec<Edge> = (1..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
    let forest_of = |seed: u64| {
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), seed);
        for chunk in center_edges.chunks(8) {
            conn.apply_batch(
                &mpc_stream::graph::update::Batch::inserting(chunk.iter().copied()),
                &mut ctx,
            )
            .expect("insert");
        }
        for chunk in extra.chunks(8) {
            conn.apply_batch(
                &mpc_stream::graph::update::Batch::inserting(chunk.iter().copied()),
                &mut ctx,
            )
            .expect("insert");
        }
        // Delete a batch of star edges: replacements come from the
        // sketches, whose samples depend on the seed.
        conn.apply_batch(
            &mpc_stream::graph::update::Batch::deleting(center_edges[4..12].iter().copied()),
            &mut ctx,
        )
        .expect("delete");
        let mut f = conn.spanning_forest();
        f.sort();
        f
    };
    let forests: Vec<_> = (0..6).map(|s| forest_of(s * 1000 + 1)).collect();
    assert!(
        forests.windows(2).any(|w| w[0] != w[1]),
        "six different seeds produced identical replacement forests — \
         the sketches are not consuming their seeds"
    );
}
