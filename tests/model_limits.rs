//! Failure injection: the MPC model's resource gates must trip — and
//! trip cleanly — when an algorithm is driven outside the regime its
//! theorem permits (batch larger than `Õ(s)`, machine smaller than
//! its state).

use mpc_stream::core_alg::{Connectivity, ConnectivityConfig, ConnectivityError};
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::update::Batch;
use mpc_stream::mpc::{MpcConfig, MpcContext, MpcError};

#[test]
fn oversized_batch_trips_the_gather_gate() {
    // s = 64 words: the coordinator can gather at most a handful of
    // updates; a 64-edge batch must be rejected, not silently
    // processed.
    let n = 256;
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(64).build());
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    let batch = Batch::inserting((0..64u32).map(|i| Edge::new(2 * i, 2 * i + 1)));
    let err = conn.apply_batch(&batch, &mut ctx).unwrap_err();
    assert!(
        matches!(err, ConnectivityError::Mpc(MpcError::GatherTooLarge { .. })),
        "expected a gather violation, got {err:?}"
    );
}

#[test]
fn legal_batches_pass_the_same_gate() {
    let n = 256;
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(64).build());
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    // 8 edges × ~4 words each fits in 64.
    let batch = Batch::inserting((0..8u32).map(|i| Edge::new(2 * i, 2 * i + 1)));
    conn.apply_batch(&batch, &mut ctx).expect("legal batch");
    assert_eq!(conn.component_count(), n - 8);
}

#[test]
fn permissive_mode_records_memory_violations_instead_of_failing() {
    // A cluster whose machines are far too small for the sketch bank:
    // permissive mode keeps running and records every violation so
    // experiments can report the overflow.
    let n = 64;
    let mut ctx = MpcContext::new(
        MpcConfig::builder(n, 0.5)
            .local_capacity(256)
            .machines(4)
            .build(),
    );
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 2);
    let stream = gen::random_insert_stream(n, 3, 8, 5);
    for batch in &stream.batches {
        conn.apply_batch(batch, &mut ctx).expect("permissive mode");
    }
    assert!(
        !ctx.stats().violations.is_empty(),
        "sketch state cannot fit 4×256 words; violations must be recorded"
    );
}

#[test]
fn strict_mode_fails_fast_on_the_same_configuration() {
    let n = 64;
    let mut ctx = MpcContext::new(
        MpcConfig::builder(n, 0.5)
            .local_capacity(256)
            .machines(4)
            .strict(true)
            .build(),
    );
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 2);
    let stream = gen::random_insert_stream(n, 3, 8, 5);
    let mut failed = false;
    for batch in &stream.batches {
        if let Err(ConnectivityError::Mpc(MpcError::LocalMemoryExceeded { .. })) =
            conn.apply_batch(batch, &mut ctx)
        {
            failed = true;
            break;
        }
    }
    assert!(failed, "strict mode must surface the overflow as an error");
}

#[test]
fn adequately_provisioned_cluster_stays_violation_free() {
    // The paper's regime: machines big enough for their shard of the
    // Õ(n) state. No violations should be recorded.
    let n = 64;
    let mut ctx = MpcContext::new(
        MpcConfig::builder(n, 0.5)
            .local_capacity(1 << 16)
            .machines(16)
            .build(),
    );
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 3);
    let stream = gen::random_mixed_stream(n, 6, 8, 0.7, 9);
    for batch in &stream.batches {
        conn.apply_batch(batch, &mut ctx).expect("within model");
    }
    assert!(ctx.stats().violations.is_empty());
    assert!(ctx.stats().peak_total_words > 0);
}

#[test]
fn communication_is_bounded_by_total_memory_scale() {
    // Theorem 1.1's communication claim: per-round traffic is bounded
    // by the total memory budget Õ(n) — in particular it must not
    // scale with m. Compare peak per-round words on a sparse stream
    // vs a much denser one.
    let n = 128;
    let mut peak = Vec::new();
    for target_m in [100usize, 1600] {
        let stream = gen::densifying_stream(n, target_m, 16, 4);
        let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build());
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 4);
        for batch in &stream.batches {
            conn.apply_batch(batch, &mut ctx).expect("within model");
        }
        peak.push(ctx.stats().peak_round_words);
    }
    // 16x the edges must not translate into anywhere near 16x the
    // per-round communication.
    assert!(
        peak[1] < peak[0] * 4,
        "per-round words grew with m: {} -> {}",
        peak[0],
        peak[1]
    );
}

#[test]
fn robust_wrapper_propagates_the_gather_gate() {
    use mpc_stream::core_alg::{RobustConnectivity, RobustError};
    let n = 256;
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(64).build());
    let mut rc = RobustConnectivity::new(n, 2, 4, ConnectivityConfig::default(), 1);
    let batch = Batch::inserting((0..64u32).map(|i| Edge::new(2 * i, 2 * i + 1)));
    let err = rc.apply_batch(&batch, &mut ctx).unwrap_err();
    assert!(
        matches!(
            err,
            RobustError::Conn(ConnectivityError::Mpc(MpcError::GatherTooLarge { .. }))
        ),
        "expected the inner gather violation, got {err:?}"
    );
}

#[test]
fn vertex_dynamic_propagates_the_gather_gate() {
    use mpc_stream::core_alg::{VertexDynError, VertexDynamicConnectivity};
    let n = 256;
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(64).build());
    let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 1);
    vd.add_vertices(128, &mut ctx).expect("capacity");
    let batch = Batch::inserting((0..64u32).map(|i| Edge::new(2 * i, 2 * i + 1)));
    let err = vd.apply_batch(&batch, &mut ctx).unwrap_err();
    assert!(
        matches!(
            err,
            VertexDynError::Conn(ConnectivityError::Mpc(MpcError::GatherTooLarge { .. }))
        ),
        "expected the inner gather violation, got {err:?}"
    );
}

#[test]
fn contract_violations_are_rejected_not_absorbed() {
    // Deleting an edge that is not live violates the dynamic-graph
    // contract (paper Section 1.2); the sketches detect it.
    let n = 32;
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 14).build());
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    conn.apply_batch(&Batch::inserting([Edge::new(0, 1)]), &mut ctx)
        .expect("insert");
    // Duplicate insertion of a live edge is rejected.
    let err = conn
        .apply_batch(&Batch::inserting([Edge::new(0, 1)]), &mut ctx)
        .unwrap_err();
    assert!(matches!(err, ConnectivityError::InvalidBatch(_)));
    // An endpoint outside [0, n) is rejected before any mutation.
    let err = conn
        .apply_batch(&Batch::inserting([Edge::new(0, n as u32 + 5)]), &mut ctx)
        .unwrap_err();
    assert!(matches!(err, ConnectivityError::InvalidBatch(_)));
    // The valid state is untouched.
    assert!(conn.connected(0, 1));
    assert_eq!(conn.live_edge_count(), 1);
}

#[test]
fn tiny_phi_still_works_just_slower() {
    // φ → small means less local memory and deeper trees: rounds grow
    // as 1/φ but correctness is unaffected.
    let n = 512;
    let mut rounds_by_phi = Vec::new();
    for phi in [0.3f64, 0.6] {
        let s = (16.0 * (n as f64).powf(phi)).ceil() as u64;
        let mut ctx = MpcContext::new(MpcConfig::builder(n, phi).local_capacity(s).build());
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 9);
        let stream = gen::random_mixed_stream(n, 5, 6, 0.7, 31);
        let snaps = stream.replay();
        ctx.begin_phase("all");
        for batch in &stream.batches {
            conn.apply_batch(batch, &mut ctx).expect("in regime");
        }
        let r = ctx.end_phase().rounds;
        let expect = mpc_stream::graph::oracle::components(n, snaps.last().unwrap().edges());
        assert_eq!(conn.component_labels(), &expect[..], "phi {phi}");
        rounds_by_phi.push(r);
    }
    assert!(
        rounds_by_phi[0] > rounds_by_phi[1],
        "smaller phi must cost more rounds: {rounds_by_phi:?}"
    );
}
