//! Property-based tests over the workspace invariants (DESIGN.md §6).

use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
use mpc_stream::etf::tour::validate;
use mpc_stream::etf::DistEtf;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::{Batch, Update};
use mpc_stream::mpc::{MpcConfig, MpcContext};
use mpc_stream::sketch::l0::L0Sampler;
use mpc_stream::sketch::vertex::{EdgeSample, VertexSketch};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// A valid random batch sequence: at every step, insert an absent
/// edge or delete a live one, grouped into batches.
fn batch_sequences(
    n: u32,
    max_batches: usize,
    batch_size: usize,
) -> impl Strategy<Value = Vec<Batch>> {
    let step = (0u32..n, 0u32..n, any::<bool>());
    proptest::collection::vec(step, 1..max_batches * batch_size).prop_map(move |steps| {
        let mut live: BTreeSet<Edge> = BTreeSet::new();
        let mut batches = Vec::new();
        let mut current = Batch::new();
        for (a, b, prefer_insert) in steps {
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            let do_insert = if live.contains(&e) {
                false
            } else {
                prefer_insert || live.is_empty()
            };
            if do_insert && !live.contains(&e) {
                live.insert(e);
                current.push(Update::Insert(e));
            } else if live.contains(&e) {
                live.remove(&e);
                current.push(Update::Delete(e));
            }
            if current.len() >= batch_size {
                batches.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
        batches
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Connectivity ≡ union-find oracle after every batch, with valid
    /// Euler tours throughout (the headline invariant of Thm 1.1).
    #[test]
    fn connectivity_matches_oracle(batches in batch_sequences(24, 8, 6), seed in 0u64..1000) {
        let n = 24usize;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), seed);
        let mut live: BTreeSet<Edge> = BTreeSet::new();
        for batch in &batches {
            for u in batch.iter() {
                match u {
                    Update::Insert(e) => { live.insert(e); }
                    Update::Delete(e) => { live.remove(&e); }
                }
            }
            conn.apply_batch(batch, &mut ctx).expect("valid batch");
            let expect = oracle::components(n, live.iter().copied());
            prop_assert_eq!(conn.component_labels(), &expect[..]);
            validate(conn.etf()).expect("valid tours");
            // Forest sanity.
            let forest = conn.spanning_forest();
            let mut uf = oracle::UnionFind::new(n);
            for e in &forest {
                prop_assert!(live.contains(e));
                prop_assert!(uf.union(e.u(), e.v()));
            }
            prop_assert_eq!(uf.component_count(), oracle::component_count(n, live.iter().copied()));
        }
    }

    /// Sketch linearity (paper Remark 3.2): splitting any update
    /// sequence across two sketches and merging equals sketching the
    /// whole sequence.
    #[test]
    fn l0_sampler_linearity(
        updates in proptest::collection::vec((0u64..4096, any::<bool>(), any::<bool>()), 1..120),
        seed in 0u64..1000,
    ) {
        let mut whole = L0Sampler::new(4096, seed);
        let mut left = L0Sampler::new(4096, seed);
        let mut right = L0Sampler::new(4096, seed);
        for (i, positive, to_left) in updates {
            let delta = if positive { 1 } else { -1 };
            whole.update(i, delta);
            if to_left { left.update(i, delta); } else { right.update(i, delta); }
        }
        left.merge(&right);
        prop_assert_eq!(left, whole);
    }

    /// A sampled cut edge is always a true cut edge, and a certified
    /// empty cut is truly empty (Lemma 3.5's guarantee, checked
    /// exactly rather than probabilistically).
    #[test]
    fn vertex_sketch_cut_soundness(
        edge_bits in proptest::collection::vec(any::<bool>(), 45),
        side_bits in proptest::collection::vec(any::<bool>(), 10),
        seed in 0u64..500,
    ) {
        let n = 10usize;
        let mut edges = Vec::new();
        let mut idx = 0;
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if edge_bits[idx] {
                    edges.push(Edge::new(a, b));
                }
                idx += 1;
            }
        }
        let members: Vec<u32> = (0..n as u32).filter(|&v| side_bits[v as usize]).collect();
        prop_assume!(!members.is_empty());
        let mut sketches: Vec<VertexSketch> =
            (0..n as u32).map(|v| VertexSketch::new(n, v, seed)).collect();
        for &e in &edges {
            sketches[e.u() as usize].insert_edge(e);
            sketches[e.v() as usize].insert_edge(e);
        }
        let mut set = sketches[members[0] as usize].clone();
        for &v in &members[1..] {
            set.merge(&sketches[v as usize]);
        }
        let cut: Vec<Edge> = edges
            .iter()
            .copied()
            .filter(|e| side_bits[e.u() as usize] != side_bits[e.v() as usize])
            .collect();
        match set.sample() {
            EdgeSample::Edge(e) => prop_assert!(cut.contains(&e), "sampled non-cut edge {}", e),
            EdgeSample::Empty => prop_assert!(cut.is_empty(), "cut of size {} reported empty", cut.len()),
            EdgeSample::Fail => {} // allowed with constant probability
        }
    }

    /// Euler-tour forests stay intrinsically valid under arbitrary
    /// single-op sequences, and identify_path equals the unique tree
    /// path computed by BFS.
    #[test]
    fn etf_ops_stay_valid(ops in proptest::collection::vec((0u32..16, 0u32..16, any::<bool>()), 1..40)) {
        let n = 16usize;
        let mut ctx = ctx_for(n);
        let mut etf = DistEtf::new(n);
        let mut live: BTreeSet<Edge> = BTreeSet::new();
        for (a, b, del) in ops {
            if a == b { continue; }
            let e = Edge::new(a, b);
            if del && live.contains(&e) {
                etf.split(e, &mut ctx);
                live.remove(&e);
            } else if !del && !live.contains(&e) && etf.tour_of(a) != etf.tour_of(b) {
                etf.join(e, &mut ctx);
                live.insert(e);
            }
            validate(&etf).expect("valid after op");
        }
        // Check identify_path against BFS on the forest.
        let adj = {
            let mut adj = vec![Vec::new(); n];
            for e in &live {
                adj[e.u() as usize].push(e.v());
                adj[e.v() as usize].push(e.u());
            }
            adj
        };
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u < v && etf.tour_of(u) == etf.tour_of(v) {
                    let mut path = etf.identify_path(u, v, &mut ctx);
                    path.sort();
                    let mut expect = bfs_path(&adj, u, v);
                    expect.sort();
                    prop_assert_eq!(path, expect);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch Euler-tour join/split keep the tours intrinsically valid
    /// for arbitrary legal batch sequences (the Section 6.2 machinery
    /// under random auxiliary-tree shapes).
    #[test]
    fn etf_batch_ops_stay_valid(
        steps in proptest::collection::vec(
            (proptest::collection::vec((0u32..20, 0u32..20), 1..6), any::<bool>()),
            1..10,
        )
    ) {
        use mpc_stream::graph::oracle::UnionFind;
        let n = 20usize;
        let mut ctx = ctx_for(n);
        let mut etf = DistEtf::new(n);
        let mut live: Vec<Edge> = Vec::new();
        for (pairs, join) in steps {
            if join {
                // Build a legal join batch: edges across distinct
                // tours forming a forest over tours.
                let mut batch: Vec<Edge> = Vec::new();
                let mut uf = UnionFind::new(n);
                let mut index: std::collections::HashMap<u64, u32> = Default::default();
                for (a, b) in pairs {
                    if a == b {
                        continue;
                    }
                    let (ta, tb) = (etf.tour_of(a), etf.tour_of(b));
                    if ta == tb {
                        continue;
                    }
                    let next = index.len() as u32;
                    let ia = *index.entry(ta).or_insert(next);
                    let next = index.len() as u32;
                    let ib = *index.entry(tb).or_insert(next);
                    if uf.union(ia, ib) {
                        batch.push(Edge::new(a, b));
                    }
                }
                if !batch.is_empty() {
                    etf.batch_join(&batch, &mut ctx);
                    live.extend(&batch);
                }
            } else if !live.is_empty() {
                // Split a pseudo-random subset of live edges.
                let take = (pairs.len()).min(live.len());
                let batch: Vec<Edge> = live.drain(..take).collect();
                etf.batch_split(&batch, &mut ctx);
            }
            validate(&etf).expect("valid after batch op");
        }
        // Connectivity of the forest matches union-find on live edges.
        let labels = oracle::components(n, live.iter().copied());
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                prop_assert_eq!(
                    etf.tour_of(u) == etf.tour_of(v),
                    labels[u as usize] == labels[v as usize],
                    "connectivity mismatch {} {}", u, v
                );
            }
        }
    }

    /// Exact MSF stays equal to Kruskal for random insertion batches
    /// with small weight ranges (maximizing ties, the hard case).
    #[test]
    fn exact_msf_matches_kruskal(
        edges in proptest::collection::vec((0u32..16, 0u32..16, 1u64..6), 1..40),
        chunk in 1usize..8,
    ) {
        use mpc_stream::graph::ids::WeightedEdge;
        use mpc_stream::graph::update::WeightedBatch;
        use mpc_stream::msf::ExactMsf;
        let n = 16usize;
        let mut seen = std::collections::BTreeSet::new();
        let clean: Vec<WeightedEdge> = edges
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .filter(|&(a, b, _)| seen.insert(Edge::new(a, b)))
            .map(|(a, b, w)| WeightedEdge::new(a, b, w))
            .collect();
        prop_assume!(!clean.is_empty());
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        let mut all: Vec<WeightedEdge> = Vec::new();
        for batch_edges in clean.chunks(chunk) {
            let batch = WeightedBatch::inserting(batch_edges.iter().copied());
            msf.apply_batch(&batch, &mut ctx).expect("legal batch");
            all.extend(batch_edges);
            prop_assert_eq!(
                msf.weight(),
                oracle::msf_weight(n, all.iter().copied()),
                "weight diverged from Kruskal"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena canonicality: the dense column layout makes a sampler a
    /// pure function of the summarized vector — any permutation of
    /// one update stream yields a bit-identical sampler.
    #[test]
    fn l0_update_order_is_canonical(
        updates in proptest::collection::vec((0u64..4096, any::<bool>()), 1..100),
        rot in 0usize..100,
        seed in 0u64..500,
    ) {
        let apply = |order: &[(u64, bool)]| {
            let mut s = L0Sampler::new(4096, seed);
            for &(i, positive) in order {
                s.update(i, if positive { 1 } else { -1 });
            }
            s
        };
        let forward = apply(&updates);
        let mut rotated = updates.clone();
        rotated.rotate_left(rot % updates.len());
        prop_assert_eq!(&apply(&rotated), &forward);
        let mut reversed = updates.clone();
        reversed.reverse();
        prop_assert_eq!(&apply(&reversed), &forward);
    }

    /// Arena equivalence: a `SketchBank` column driven through the
    /// contiguous pools equals a standalone `VertexSketch` of the
    /// same family driven through its own dense column, cell for
    /// cell — and the scratch-merge path (`merged_copy`) equals the
    /// fold of standalone sketch merges (merge linearity vs direct
    /// application).
    #[test]
    fn bank_arena_matches_standalone_sketches(
        edge_bits in proptest::collection::vec(any::<bool>(), 66),
        delete_bits in proptest::collection::vec(any::<bool>(), 66),
        side_bits in proptest::collection::vec(any::<bool>(), 12),
        seed in 0u64..500,
    ) {
        use mpc_stream::sketch::SketchBank;
        use mpc_stream::sketch::vertex::VertexSketch;
        let n = 12usize;
        let copies = 3usize;
        let mut bank = SketchBank::new(n, copies, seed);
        let mut standalone: Vec<Vec<VertexSketch>> = (0..n as u32)
            .map(|v| (0..copies).map(|c| VertexSketch::new(n, v, seed + c as u64)).collect())
            .collect();
        let mut idx = 0;
        let mut touched = std::collections::BTreeSet::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if edge_bits[idx] {
                    let e = Edge::new(a, b);
                    bank.insert_edge(e);
                    touched.insert(a);
                    touched.insert(b);
                    for endpoint in [a, b] {
                        for s in &mut standalone[endpoint as usize] {
                            s.insert_edge(e);
                        }
                    }
                    if delete_bits[idx] {
                        bank.delete_edge(e);
                        for endpoint in [a, b] {
                            for s in &mut standalone[endpoint as usize] {
                                s.delete_edge(e);
                            }
                        }
                    }
                }
                idx += 1;
            }
        }
        // Column-for-column equality of the two representations.
        for &v in &touched {
            for (c, expected) in standalone[v as usize].iter().enumerate() {
                let col = bank.vertex_sketch(v, c).expect("touched column");
                prop_assert_eq!(&col, expected, "vertex {} copy {}", v, c);
            }
        }
        prop_assert!(
            (0..n as u32).all(|v| bank.is_materialized(v) == touched.contains(&v))
        );
        // Merge linearity: scratch accumulation == fold of merges.
        let members: Vec<u32> =
            (0..n as u32).filter(|&v| side_bits[v as usize]).collect();
        let touched_members: Vec<u32> =
            members.iter().copied().filter(|v| touched.contains(v)).collect();
        for (c, via_arena) in (0..copies).map(|c| bank.merged_copy(&members, c)).enumerate() {
            match (&via_arena, touched_members.split_first()) {
                (None, None) => {}
                (Some(merged), Some((&first, rest))) => {
                    let mut fold = standalone[first as usize][c].clone();
                    for &v in rest {
                        fold.merge(&standalone[v as usize][c]);
                    }
                    prop_assert_eq!(merged, &fold, "merged copy {}", c);
                }
                _ => prop_assert!(false, "materialization disagreement"),
            }
        }
    }

    /// `words()` accounting pins the paper's dense shape: the cached
    /// per-column cost equals the pre-arena probe-sketch formula, and
    /// total words depend only on which vertices were ever touched —
    /// insert/delete churn back to the zero vector changes nothing.
    #[test]
    fn bank_words_invariant_under_churn(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
        copies in 1usize..6,
        seed in 0u64..100,
    ) {
        use mpc_stream::sketch::SketchBank;
        use mpc_stream::sketch::vertex::VertexSketch;
        let n = 20usize;
        let mut bank = SketchBank::new(n, copies, seed);
        // The cached per-column cost matches a freshly seeded probe
        // column (what the pre-arena code recomputed per call).
        prop_assert_eq!(
            bank.words_per_vertex(),
            VertexSketch::new(n, 0, 0).words() * copies as u64
        );
        let clean: Vec<Edge> = {
            let mut seen = std::collections::BTreeSet::new();
            edges.iter().filter(|&&(a, b)| a != b)
                .map(|&(a, b)| Edge::new(a, b))
                .filter(|e| seen.insert(*e))
                .collect()
        };
        prop_assume!(!clean.is_empty());
        for &e in &clean {
            bank.insert_edge(e);
        }
        let touched: std::collections::BTreeSet<u32> =
            clean.iter().flat_map(|e| [e.u(), e.v()]).collect();
        let after_inserts = bank.words();
        prop_assert_eq!(
            after_inserts,
            touched.len() as u64 * bank.words_per_vertex()
        );
        // Churn everything back to zero: accounted words must not
        // move (dense accounted shape, host cells merely cancel).
        for &e in &clean {
            bank.delete_edge(e);
        }
        prop_assert_eq!(bank.words(), after_inserts);
        for &v in &touched {
            for c in 0..copies {
                prop_assert!(bank.vertex_sketch(v, c).expect("still materialized").is_empty_cut());
            }
        }
        // Re-inserting the same edges still does not re-charge.
        for &e in &clean {
            bank.insert_edge(e);
        }
        prop_assert_eq!(bank.words(), after_inserts);
    }
}

fn bfs_path(adj: &[Vec<u32>], u: u32, v: u32) -> Vec<Edge> {
    use std::collections::VecDeque;
    let mut prev = vec![u32::MAX; adj.len()];
    let mut q = VecDeque::from([u]);
    prev[u as usize] = u;
    while let Some(x) = q.pop_front() {
        if x == v {
            break;
        }
        for &y in &adj[x as usize] {
            if prev[y as usize] == u32::MAX {
                prev[y as usize] = x;
                q.push_back(y);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = v;
    while cur != u {
        let p = prev[cur as usize];
        path.push(Edge::new(cur, p));
        cur = p;
    }
    path
}
