//! Integration tests for the extension layers: k-edge-connectivity
//! certificates (`mpc-kconn`), adversarially robust connectivity
//! (sketch switching), and vertex dynamics — including their
//! interactions with the base connectivity algorithm and the cut
//! oracles.

use mpc_stream::core_alg::{
    Connectivity, ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity,
};
use mpc_stream::graph::cuts;
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::Batch;
use mpc_stream::kconn::{DynamicKConn, InsertOnlyKConn, MinCut};
use mpc_stream::mpc::{MpcConfig, MpcContext};

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// The k = 1 insert-only certificate is exactly a spanning forest, so
/// it must agree with the core connectivity algorithm's components on
/// the same insertion stream.
#[test]
fn k1_certificate_agrees_with_core_connectivity() {
    let n = 128;
    let stream = gen::random_insert_stream(n, 8, 12, 0x51);
    let mut ctx = ctx_for(n);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    let mut kc = InsertOnlyKConn::new(n, 1);
    for batch in &stream.batches {
        conn.apply_batch(batch, &mut ctx).expect("conn batch");
        kc.apply_batch(batch, &mut ctx).expect("kconn batch");
        let cert = kc.certificate();
        assert_eq!(cert.component_labels(), conn.component_labels());
        // A 1-layer certificate has exactly the forest size.
        assert_eq!(cert.edge_count(), conn.spanning_forest().len());
    }
}

/// The dynamic sketch-peeled certificate agrees with the insert-only
/// cascade on the truncated cut value when both see the same stream.
#[test]
fn dynamic_and_insert_only_certificates_agree_on_cuts() {
    let n = 64;
    let k = 3;
    let stream = gen::random_insert_stream(n, 6, 10, 0x52);
    let snaps = stream.replay();
    let mut ctx = ctx_for(n);
    let mut io = InsertOnlyKConn::new(n, k);
    let mut dy = DynamicKConn::new(n, k, 0x52);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        io.apply_batch(batch, &mut ctx).expect("insert-only");
        dy.apply_batch(batch, &mut ctx).expect("dynamic kconn");
        let live: Vec<Edge> = snap.edges().collect();
        let truth = cuts::edge_connectivity(n, &live).min(k as u64);
        let io_cut = cuts::edge_connectivity(n, &io.certificate().edges()).min(k as u64);
        let dy_cut = cuts::edge_connectivity(n, &dy.certificate(&mut ctx).edges()).min(k as u64);
        assert_eq!(io_cut, truth, "insert-only certificate diverged");
        assert_eq!(dy_cut, truth, "dynamic certificate diverged");
    }
}

/// Bridges found by the k >= 2 certificate match the DFS oracle on a
/// dynamic stream with deletions.
#[test]
fn certificate_bridges_match_oracle_under_deletions() {
    let n = 48;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 0x53);
    let snaps = stream.replay();
    let mut ctx = ctx_for(n);
    let mut dy = DynamicKConn::new(n, 2, 0x53);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        dy.apply_batch(batch, &mut ctx).expect("dynamic kconn");
        let live: Vec<Edge> = snap.edges().collect();
        let cert = dy.certificate(&mut ctx);
        assert_eq!(
            cert.bridges().expect("k = 2"),
            cuts::bridges(n, &live),
            "bridges diverged at m = {}",
            live.len()
        );
    }
}

/// min_cut() transitions from AtLeast(k) to Exact as edges are
/// removed from a well-connected graph.
#[test]
fn min_cut_estimate_degrades_gracefully() {
    let n: u32 = 16;
    let k = 3;
    let mut ctx = ctx_for(n as usize);
    let mut dy = DynamicKConn::new(n as usize, k, 0x54);
    // A 4-regular circulant: edges to +1 and +2 around the ring.
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push(Edge::new(i, (i + 1) % n));
        edges.push(Edge::new(i, (i + 2) % n));
    }
    dy.apply_batch(&Batch::inserting(edges.iter().copied()), &mut ctx)
        .expect("dynamic kconn");
    assert_eq!(dy.certificate(&mut ctx).min_cut(), MinCut::AtLeast(3));
    // Remove vertex 0's +2 links: its degree falls to ... ring only.
    dy.apply_batch(
        &Batch::deleting([Edge::new(0, 2), Edge::new(n - 2, 0)]),
        &mut ctx,
    )
    .expect("dynamic kconn");
    assert_eq!(dy.certificate(&mut ctx).min_cut(), MinCut::Exact(2));
    // Cut one ring edge at vertex 0 too: a single link remains.
    dy.apply_batch(&Batch::deleting([Edge::new(0, 1)]), &mut ctx)
        .expect("dynamic kconn");
    assert_eq!(dy.certificate(&mut ctx).min_cut(), MinCut::Exact(1));
}

/// Sketch switching keeps answering correctly on an oblivious stream,
/// spending no exposure on insert-only prefixes.
#[test]
fn robust_connectivity_tracks_oracle_on_oblivious_stream() {
    let n = 96;
    let stream = gen::random_mixed_stream(n, 10, 8, 0.7, 0x55);
    let snaps = stream.replay();
    let mut ctx = ctx_for(n);
    let mut rc = RobustConnectivity::new(n, 3, 8, ConnectivityConfig::default(), 0x55);
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        rc.apply_batch(batch, &mut ctx).expect("within budget");
        let labels = oracle::components(n, snap.edges());
        assert_eq!(rc.component_labels(), &labels[..]);
    }
    assert!(rc.exposures_spent() <= 10);
}

/// The robust wrapper and a plain instance agree label-for-label; the
/// wrapper merely costs R× memory.
#[test]
fn robust_wrapper_is_semantically_transparent() {
    let stream = gen::merge_split_stream(8, 8, 3, 12, 0x56);
    let mut ctx = ctx_for(stream.n);
    let mut plain = Connectivity::new(stream.n, ConnectivityConfig::default(), 0x99);
    let mut rc = RobustConnectivity::new(stream.n, 2, 16, ConnectivityConfig::default(), 0x99);
    for batch in &stream.batches {
        plain.apply_batch(batch, &mut ctx).expect("plain");
        rc.apply_batch(batch, &mut ctx).expect("robust");
        assert_eq!(plain.component_count(), rc.component_count());
    }
    assert_eq!(rc.words(), 2 * plain.words());
}

/// Vertex churn composes with the k-connectivity certificate: run the
/// certificate over the *capacity* space while vertices come and go,
/// restricting cut questions to the active induced subgraph.
#[test]
fn vertex_dynamics_compose_with_certificates() {
    let cap = 32;
    let mut ctx = ctx_for(cap);
    let mut vd = VertexDynamicConnectivity::with_capacity(cap, ConnectivityConfig::default(), 0x57);
    let mut kc = InsertOnlyKConn::new(cap, 2);
    // Activate 8 vertices and build a cycle on them.
    let ids = vd.add_vertices(8, &mut ctx).expect("capacity");
    let cycle: Vec<Edge> = (0..8)
        .map(|i| Edge::new(ids[i], ids[(i + 1) % 8]))
        .collect();
    vd.apply_batch(&Batch::inserting(cycle.iter().copied()), &mut ctx)
        .expect("edges");
    kc.apply_batch(&Batch::inserting(cycle.iter().copied()), &mut ctx)
        .expect("cert edges");
    assert_eq!(vd.component_count(), 1);
    // Inactive capacity slots do not confuse the certificate: the
    // active subgraph is 2-edge-connected even though the full
    // capacity space is not even connected.
    let cert = kc.certificate();
    let active_edges = cert.edges();
    assert_eq!(cuts::edge_connectivity(8, &remap(&active_edges, &ids)), 2);
}

/// Renames `ids`-space edges to [0, ids.len()) so the oracle can run
/// on the induced subgraph.
fn remap(edges: &[Edge], ids: &[u32]) -> Vec<Edge> {
    let pos = |v: u32| ids.iter().position(|&x| x == v).expect("active") as u32;
    edges
        .iter()
        .map(|e| Edge::new(pos(e.u()), pos(e.v())))
        .collect()
}

/// Certificates survive the model's memory gate: a batch that fits
/// passes, an oversized one is rejected by the same gather gate the
/// core algorithm uses.
#[test]
fn kconn_respects_model_memory_limits() {
    let n = 256;
    // s = 64 words → max gather-able batch is 32 updates.
    let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.3).local_capacity(64).build());
    let mut kc = InsertOnlyKConn::new(n, 2);
    let small = Batch::inserting((0..16u32).map(|i| Edge::new(i, i + 16)));
    kc.apply_batch(&small, &mut ctx).expect("fits");
    let big = Batch::inserting((0..64u32).map(|i| Edge::new(i, i + 64)));
    assert!(kc.apply_batch(&big, &mut ctx).is_err());
}
