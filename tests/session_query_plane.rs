//! The typed query plane, end to end: `ask` answers must equal the
//! inherent-API answers for **every** maintainer kind in the
//! workspace (property-tested over generated insert streams), every
//! supported answer must be charged, and the machine-group capacity
//! audit must attribute overruns to the offending maintainer while
//! its neighbors stay green.

use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::update::{Batch, Update};
use mpc_stream::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn cfg(n: usize) -> MpcConfig {
    // 2n covers the bipartite double cover; permissive mode lets one
    // cluster host all sixteen maintainers without provisioning.
    MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 16)
        .build()
}

/// Insert-only simple-graph batch sequences (every maintainer kind,
/// including the insertion-only ones, accepts them).
fn insert_streams(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Batch>> {
    let step = (0u32..n, 0u32..n);
    proptest::collection::vec(step, 1..max_edges).prop_map(move |pairs| {
        let mut seen: BTreeSet<Edge> = BTreeSet::new();
        let mut batches = Vec::new();
        let mut current = Batch::new();
        for (a, b) in pairs {
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if seen.insert(e) {
                current.push(Update::Insert(e));
            }
            if current.len() >= 8 {
                batches.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
        batches
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One session, all sixteen maintainer kinds, one shared stream:
    /// for each maintainer, at least one `ask` answer is compared
    /// against the inherent API it re-expresses — and every answer
    /// must have been charged nonzero rounds *and* words.
    #[test]
    fn ask_answers_equal_inherent_answers_for_every_maintainer_kind(
        batches in insert_streams(20, 40),
    ) {
        let n = 20usize;
        let mut session = Session::new(cfg(n));
        let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        let strm = session.register(StreamingConnectivity::new(n, 2));
        let robust = session.register(RobustConnectivity::new(
            n, 2, 4, ConnectivityConfig::default(), 3,
        ));
        let mut vd0 =
            VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 4);
        {
            let mut setup = MpcContext::new(cfg(n));
            vd0.add_vertices(n, &mut setup).expect("slots available");
        }
        let vd = session.register(vd0);
        let msf = session.register(ExactMsf::new(n));
        let aw = session.register(ApproxMsfWeight::new(n, 0.5, 4, 5));
        let af = session.register(ApproxMsfForest::new(n, 0.5, 4, 6));
        let bip = session.register(Bipartiteness::new(n, 7));
        let est_i = session.register(MatchingSizeEstimator::new(
            n, 2.0, StreamKind::InsertionOnly, 8,
        ));
        let est_d = session.register(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 9));
        let akly = session.register(AklyMatching::new(n, 2.0, 10));
        let mm = session.register(MaximalMatching::new(n));
        let dy = session.register(DynamicKConn::new(n, 2, 11));
        let io = session.register(InsertOnlyKConn::new(n, 2));
        let agm = session.register(AgmBaseline::new(n, 12));
        let full = session.register(FullMemoryBaseline::new(n));
        prop_assert_eq!(session.maintainer_count(), 16);

        for batch in &batches {
            session.apply_batch(batch).expect("insert-only simple stream");
        }

        // Every ask below must be charged: nonzero rounds and words.
        macro_rules! asked {
            ($session:expr) => {{
                let r = &$session.query_reports()[0];
                prop_assert!(r.rounds > 0, "{}: free answer", r.maintainer);
                prop_assert!(r.words > 0, "{}: weightless answer", r.maintainer);
            }};
        }

        let (u, v) = (0u32, n as u32 - 1);

        // Connectivity family: Connected + ComponentCount + forest.
        let want = session.get(conn).connected(u, v);
        prop_assert_eq!(
            session.ask(conn, &QueryRequest::Connected(u, v)).unwrap().as_bool(),
            Some(want)
        );
        asked!(session);
        let want = session.get(conn).component_count() as u64;
        prop_assert_eq!(
            session.ask(conn, &QueryRequest::ComponentCount).unwrap().as_count(),
            Some(want)
        );
        asked!(session);
        let want = session.get(conn).spanning_forest();
        let got = session.ask(conn, &QueryRequest::SpanningForest).unwrap();
        prop_assert_eq!(got.as_edges(), Some(&want[..]));
        asked!(session);

        let want = session.get(strm).connected(u, v);
        prop_assert_eq!(
            session.ask(strm, &QueryRequest::Connected(u, v)).unwrap().as_bool(),
            Some(want)
        );
        asked!(session);

        let want = session.get(robust).component_count() as u64;
        prop_assert_eq!(
            session.ask(robust, &QueryRequest::ComponentCount).unwrap().as_count(),
            Some(want)
        );
        asked!(session);

        let want = session.get(vd).connected(u, v).expect("all slots active");
        prop_assert_eq!(
            session.ask(vd, &QueryRequest::Connected(u, v)).unwrap().as_bool(),
            Some(want)
        );
        asked!(session);

        // MSF family: weights and forests.
        let want = session.get(msf).weight() as f64;
        prop_assert_eq!(
            session.ask(msf, &QueryRequest::ForestWeight).unwrap().as_weight(),
            Some(want)
        );
        asked!(session);
        let want = session.get(aw).weight_estimate();
        prop_assert_eq!(
            session.ask(aw, &QueryRequest::ForestWeight).unwrap().as_weight(),
            Some(want)
        );
        asked!(session);
        let want: Vec<Edge> = session.get(af).forest().into_iter().map(|(e, _)| e).collect();
        let got = session.ask(af, &QueryRequest::SpanningForest).unwrap();
        prop_assert_eq!(got.as_edges(), Some(&want[..]));
        asked!(session);
        let want = session.get(bip).is_bipartite();
        prop_assert_eq!(
            session.ask(bip, &QueryRequest::IsBipartite).unwrap().as_bool(),
            Some(want)
        );
        asked!(session);

        // Matching family: sizes and edges.
        for (handle, want) in [
            (est_i, session.get(est_i).estimate() as u64),
            (est_d, session.get(est_d).estimate() as u64),
        ] {
            prop_assert_eq!(
                session.ask(handle, &QueryRequest::MatchingSize).unwrap().as_count(),
                Some(want)
            );
            asked!(session);
        }
        let want = session.get(akly).matching_size() as u64;
        prop_assert_eq!(
            session.ask(akly, &QueryRequest::MatchingSize).unwrap().as_count(),
            Some(want)
        );
        asked!(session);
        let want = session.get(mm).matching();
        let got = session.ask(mm, &QueryRequest::MatchingEdges).unwrap();
        prop_assert_eq!(got.as_edges(), Some(&want[..]));
        asked!(session);

        // k-connectivity: cut bounds, maintained vs peeled.
        let mut oracle_ctx = MpcContext::new(cfg(n));
        let want = match session.get(dy).certificate(&mut oracle_ctx).min_cut() {
            MinCut::Exact(c) => (c, true),
            MinCut::AtLeast(c) => (c, false),
        };
        prop_assert_eq!(
            session.ask(dy, &QueryRequest::MinCutLowerBound).unwrap().as_min_cut(),
            Some(want)
        );
        asked!(session);
        let want = match session.get(io).certificate().min_cut() {
            MinCut::Exact(c) => (c, true),
            MinCut::AtLeast(c) => (c, false),
        };
        prop_assert_eq!(
            session.ask(io, &QueryRequest::MinCutLowerBound).unwrap().as_min_cut(),
            Some(want)
        );
        asked!(session);

        // Baselines: recomputed answers equal the charged recompute.
        let want = session.query(agm, |b, ctx| b.query_components(ctx));
        prop_assert_eq!(
            session.ask(agm, &QueryRequest::ComponentOf(v)).unwrap().as_vertex(),
            Some(want[v as usize])
        );
        asked!(session);
        let want = session.query(full, |b, ctx| b.query_components(ctx));
        prop_assert_eq!(
            session.ask(full, &QueryRequest::ComponentOf(v)).unwrap().as_vertex(),
            Some(want[v as usize])
        );
        asked!(session);

        // All sixteen answered at least once, all charged: the stats
        // breakdown has a nonzero query entry for every maintainer.
        for m in &session.stats().per_maintainer {
            prop_assert!(m.queries >= 1, "{} never answered", m.name);
            prop_assert!(m.query_rounds > 0, "{} answered for free", m.name);
            prop_assert!(m.query_words > 0, "{} moved no words", m.name);
        }
    }

    /// `ask_all` cross-checks: every maintainer that answers
    /// `ComponentCount` on a shared stream must agree with the
    /// union-find oracle.
    #[test]
    fn ask_all_component_counts_agree_with_the_oracle(
        batches in insert_streams(16, 30),
    ) {
        let n = 16usize;
        let mut session = Session::new(cfg(n));
        session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        session.register(StreamingConnectivity::new(n, 2));
        session.register(ExactMsf::new(n));
        session.register(AgmBaseline::new(n, 3));
        session.register(FullMemoryBaseline::new(n));
        let mut live = Vec::new();
        for batch in &batches {
            session.apply_batch(batch).expect("insert-only simple stream");
            live.extend(batch.insertions());
        }
        let labels = mpc_stream::graph::oracle::components(n, live.iter().copied());
        let cc = mpc_stream::core_alg::canonical_component_count(&labels);
        let answers = session.ask_all(&QueryRequest::ComponentCount).expect("fan-out");
        prop_assert_eq!(answers.len(), 5, "all five support component counts");
        for (id, answer) in answers {
            prop_assert_eq!(
                answer.as_count(),
                Some(cc),
                "maintainer {} diverged from the oracle",
                session.maintainer(id).expect("registered").name()
            );
        }
    }
}

/// Every typed query the plane knows, for the contract sweep below.
const ALL_QUERIES: [QueryRequest; 9] = [
    QueryRequest::Connected(0, 1),
    QueryRequest::ComponentOf(1),
    QueryRequest::ComponentCount,
    QueryRequest::SpanningForest,
    QueryRequest::ForestWeight,
    QueryRequest::MatchingSize,
    QueryRequest::MatchingEdges,
    QueryRequest::MinCutLowerBound,
    QueryRequest::IsBipartite,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The `supports`/`answer` contract, swept over all sixteen
    /// maintainer kinds × all nine query kinds: a maintainer that
    /// claims support must actually answer (never `Unsupported`),
    /// and a maintainer that declines must be completely free —
    /// no receipt, no query count, zero charged rounds and words.
    #[test]
    fn supports_and_answer_agree_for_every_maintainer(
        batches in insert_streams(20, 40),
    ) {
        let n = 20usize;
        let mut session = Session::new(cfg(n));
        session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        session.register(StreamingConnectivity::new(n, 2));
        session.register(RobustConnectivity::new(
            n, 2, 4, ConnectivityConfig::default(), 3,
        ));
        let mut vd0 =
            VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 4);
        {
            let mut setup = MpcContext::new(cfg(n));
            vd0.add_vertices(n, &mut setup).expect("slots available");
        }
        session.register(vd0);
        session.register(ExactMsf::new(n));
        session.register(ApproxMsfWeight::new(n, 0.5, 4, 5));
        session.register(ApproxMsfForest::new(n, 0.5, 4, 6));
        session.register(Bipartiteness::new(n, 7));
        session.register(MatchingSizeEstimator::new(
            n, 2.0, StreamKind::InsertionOnly, 8,
        ));
        session.register(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 9));
        session.register(AklyMatching::new(n, 2.0, 10));
        session.register(MaximalMatching::new(n));
        session.register(DynamicKConn::new(n, 2, 11));
        session.register(InsertOnlyKConn::new(n, 2));
        session.register(AgmBaseline::new(n, 12));
        session.register(FullMemoryBaseline::new(n));
        let count = session.maintainer_count();
        prop_assert_eq!(count, 16);

        for batch in &batches {
            session.apply_batch(batch).expect("insert-only simple stream");
        }

        for query in &ALL_QUERIES {
            let supports: Vec<bool> = (0..count)
                .map(|id| session.maintainer(id).expect("registered").supports(query))
                .collect();
            let before: Vec<(u64, u64, u64)> = session
                .stats()
                .per_maintainer
                .iter()
                .map(|m| (m.queries, m.query_rounds, m.query_words))
                .collect();
            let answers = session.ask_all(query).expect("fan-out succeeds");
            let answered: BTreeSet<usize> = answers.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(
                session.query_reports().len(),
                answered.len(),
                "one receipt per answering maintainer for {}",
                query
            );
            for id in 0..count {
                let name = session.maintainer(id).expect("registered").name();
                let after = &session.stats().per_maintainer[id];
                if supports[id] {
                    // A claimed `supports` must produce a real answer:
                    // `ask_all` drops any branch that returns
                    // `Unsupported`, so membership proves the pair
                    // agreed.
                    prop_assert!(
                        answered.contains(&id),
                        "{} claims support for {} but answered Unsupported",
                        name,
                        query
                    );
                    prop_assert!(
                        after.query_rounds > before[id].1,
                        "{} answered {} for free",
                        name,
                        query
                    );
                } else {
                    prop_assert!(
                        !answered.contains(&id),
                        "{} answered {} it does not support",
                        name,
                        query
                    );
                    let (q, r, w) = before[id];
                    prop_assert_eq!(after.queries, q, "{} probed {} was counted", name, query);
                    prop_assert_eq!(after.query_rounds, r, "{} charged rounds for {}", name, query);
                    prop_assert_eq!(after.query_words, w, "{} charged words for {}", name, query);
                }
            }
        }
    }
}

/// The attribution gate: a strict session with one deliberately
/// oversized maintainer must name *that* maintainer (and its machine
/// group) in `ClusterMemoryExceeded`, while its neighbor stays green.
#[test]
fn capacity_overrun_names_the_oversized_maintainer_and_spares_neighbors() {
    let n = 64;
    // 2 machines × 4096 words, one per maintainer group: the
    // full-memory baseline's n + 2m words fit easily; the AGM sketch
    // bank (Õ(n log² n) ≈ 45k words at n = 64) is the deliberate
    // overrun.
    let tight = MpcConfig::builder(n, 0.5)
        .local_capacity(4096)
        .machines(2)
        .strict(true)
        .build();
    let mut session = Session::new(tight);
    let green = session.register(FullMemoryBaseline::new(n));
    let fat = session.register(AgmBaseline::new(n, 7));
    let err = session
        .apply((0..16u32).map(|i| Update::Insert(Edge::new(i, i + 16))))
        .expect_err("a sketch bank cannot fit a 4096-word group");
    match err {
        MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
            maintainer,
            group,
            used,
            capacity,
        }) => {
            assert_eq!(maintainer, "agm-baseline", "the overrun must be attributed");
            assert_eq!(capacity, 4096);
            assert!(used > capacity);
            assert_eq!(group.start(), 1, "the second group is the AGM baseline's");
            assert_eq!(group.machines(), 1);
        }
        other => panic!("expected ClusterMemoryExceeded, got {other:?}"),
    }
    // The neighbor stayed green: its state was observed, no violation
    // was attributed to it, and its own group would have held it.
    let stats = session.stats();
    assert_eq!(stats.per_maintainer[green.id()].capacity_violations, 0);
    let green_words = session.get(green).words();
    assert!(green_words > 0 && green_words <= 4096);
    assert_eq!(
        stats.per_maintainer[fat.id()].capacity_violations,
        0,
        "strict mode errors instead of recording"
    );
    // Permissive twin: same overrun is recorded against the same
    // maintainer instead of erroring.
    let permissive = MpcConfig::builder(n, 0.5)
        .local_capacity(4096)
        .machines(2)
        .build();
    let mut session = Session::new(permissive);
    let green = session.register(FullMemoryBaseline::new(n));
    let fat = session.register(AgmBaseline::new(n, 7));
    session
        .apply((0..16u32).map(|i| Update::Insert(Edge::new(i, i + 16))))
        .expect("permissive mode records instead of erroring");
    let stats = session.stats();
    assert_eq!(stats.per_maintainer[green.id()].capacity_violations, 0);
    assert!(stats.per_maintainer[fat.id()].capacity_violations > 0);
    assert!(stats.per_maintainer[fat.id()].state_words > 4096);
}

/// A maintainer whose `answer` burns rounds *before* discovering the
/// query is outside its vocabulary — the shape that made the old
/// `ask_all` leak charges: it opened a parallel branch for every
/// maintainer, so a noisy decliner's probe rounds max-composed into
/// the scope even though it had nothing to say.
#[derive(Debug)]
struct NoisyDecliner;

impl Maintain for NoisyDecliner {
    fn name(&self) -> &'static str {
        "noisy-decliner"
    }

    fn n(&self) -> usize {
        4
    }

    fn words(&self) -> u64 {
        1
    }

    fn ingest(&mut self, _batch: &Batch, _ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        Ok(())
    }

    fn save_state(&self, _w: &mut mpc_stream::snapshot::SnapshotWriter) {}

    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        // Ten broadcasts dwarf any supporter's answer, so a leaked
        // branch visibly inflates the fan-out's max-composed rounds.
        for _ in 0..10 {
            ctx.broadcast(1);
        }
        Err(MpcStreamError::Unsupported(format!(
            "noisy-decliner cannot answer {query}"
        )))
    }

    // Default `supports`: false for every query. `ask_all` must trust
    // the probe and never call `answer` at all.
}

/// Regression: `ask_all` must consult `supports` *before* opening a
/// parallel branch, so non-supporters are free — same fan-out rounds
/// as a session without them, no query receipt, no per-maintainer
/// query charge.
#[test]
fn ask_all_charges_nothing_for_unsupported_decliners() {
    let n = 16usize;
    let batch: Vec<Update> = (0..8u32)
        .map(|i| Update::Insert(Edge::new(i, i + 8)))
        .collect();

    // Twin sessions over the same stream: one with the decliner
    // sandwiched between two supporters, one with the supporters only.
    let mut with = Session::new(cfg(n));
    with.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
    let decliner = with.register(NoisyDecliner);
    with.register(FullMemoryBaseline::new(n));
    with.apply(batch.iter().copied())
        .expect("insert-only stream");

    let mut without = Session::new(cfg(n));
    without.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
    without.register(FullMemoryBaseline::new(n));
    without
        .apply(batch.iter().copied())
        .expect("insert-only stream");

    let rounds_before = with.stats().query_rounds;
    let answers = with
        .ask_all(&QueryRequest::ComponentCount)
        .expect("supporters answer");
    let with_delta = with.stats().query_rounds - rounds_before;

    let rounds_before = without.stats().query_rounds;
    let expected = without
        .ask_all(&QueryRequest::ComponentCount)
        .expect("supporters answer");
    let without_delta = without.stats().query_rounds - rounds_before;

    // Only the two supporters answered, with identical responses…
    assert_eq!(answers.len(), 2);
    assert_eq!(
        answers.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
        expected.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>()
    );
    assert_eq!(with.query_reports().len(), 2, "no receipt for a decliner");
    // …the decliner was never asked, never charged…
    let m = &with.stats().per_maintainer[decliner.id()];
    assert_eq!(m.queries, 0, "decliner must not be counted as answering");
    assert_eq!(m.query_rounds, 0, "decliner must not be charged rounds");
    assert_eq!(m.query_words, 0, "decliner must not be charged words");
    // …and the fan-out cost exactly what the decliner-free twin paid:
    // the skipped maintainer contributed no branch to the max.
    assert_eq!(with_delta, without_delta, "a decliner must be free");
}
