//! Property-based tests for the distributed primitives: the *real*
//! message-passing engine must (a) compute the right answer and (b)
//! stay within the round formulas the accounting facade
//! (`MpcContext`) charges — across random cluster shapes, payloads,
//! and data placements.

use mpc_stream::mpc::cluster::Cluster;
use mpc_stream::mpc::primitives::{
    broadcast, converge_cast, prefix_sum, sample_sort, tree_fanout, tree_rounds,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Broadcast delivers the exact payload to every machine within
    /// the fan-out-tree round bound.
    #[test]
    fn broadcast_is_exact_and_within_bound(
        machines in 1usize..40,
        payload_len in 1usize..8,
        capacity_slack in 4u64..64,
        seed in 0u64..1000,
    ) {
        let payload: Vec<u64> = (0..payload_len as u64).map(|i| i * 31 + seed).collect();
        let capacity = payload.len() as u64 * capacity_slack;
        let mut c = Cluster::new(machines, capacity);
        let rounds = broadcast(&mut c, &payload).unwrap();
        for m in 0..machines {
            prop_assert_eq!(c.buffer(m), &payload[..]);
        }
        let fanout = tree_fanout(capacity, payload.len() as u64);
        // The engine spends the tree depth plus one delivery round.
        prop_assert!(rounds <= tree_rounds(machines, fanout) + 1);
    }

    /// Converge-cast folds every machine's value into machine 0
    /// within the aggregation-tree round bound.
    #[test]
    fn converge_cast_sums_within_bound(
        machines in 1usize..40,
        values in proptest::collection::vec(0u64..1000, 1..40),
    ) {
        let machines = machines.min(values.len());
        let mut c = Cluster::new(machines, 1 << 12);
        for (m, v) in values.iter().take(machines).enumerate() {
            c.buffer_mut(m).push(*v);
        }
        let expect: u64 = values.iter().take(machines).sum();
        let rounds = converge_cast(&mut c, |a, b| {
            let add = b.first().copied().unwrap_or(0);
            if a.is_empty() {
                a.push(add);
            } else {
                a[0] += add;
            }
        })
        .unwrap();
        prop_assert_eq!(c.buffer(0).first().copied().unwrap_or(0), expect);
        let fanout = tree_fanout(1 << 12, 1);
        prop_assert!(rounds <= tree_rounds(machines, fanout) + 2);
    }

    /// Sample sort produces a globally sorted placement: each machine
    /// locally sorted, machine boundaries monotone, multiset
    /// preserved.
    #[test]
    fn sample_sort_is_a_permutation_sorted_globally(
        machines in 1usize..16,
        mut data in proptest::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut c = Cluster::new(machines, 1 << 12);
        // Scatter arbitrarily (round-robin with a twist).
        for (i, v) in data.iter().enumerate() {
            let m = (i * 7 + i / 3) % machines;
            c.buffer_mut(m).push(*v);
        }
        sample_sort(&mut c).unwrap();
        let mut collected = Vec::new();
        let mut prev_last: Option<u64> = None;
        for m in 0..machines {
            let b = c.buffer(m);
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]), "machine {} unsorted", m);
            if let (Some(last), Some(first)) = (prev_last, b.first()) {
                prop_assert!(last <= *first, "boundary into machine {}", m);
            }
            if let Some(l) = b.last() {
                prev_last = Some(*l);
            }
            collected.extend_from_slice(b);
        }
        data.sort_unstable();
        prop_assert_eq!(collected, data);
    }

    /// Prefix sum gives every machine the exclusive sum of the buffer
    /// value sums before it.
    #[test]
    fn prefix_sum_is_exclusive_scan(
        sizes in proptest::collection::vec(0u64..50, 1..24),
    ) {
        let machines = sizes.len();
        let mut c = Cluster::new(machines, 1 << 12);
        let mut value_sums = vec![0u64; machines];
        for (m, sz) in sizes.iter().enumerate() {
            for i in 0..*sz {
                c.buffer_mut(m).push(i * 3 + 1);
                value_sums[m] += i * 3 + 1;
            }
        }
        prefix_sum(&mut c).unwrap();
        let mut expect = 0u64;
        for (m, vs) in value_sums.iter().enumerate() {
            prop_assert_eq!(c.buffer(m)[0], expect, "machine {}", m);
            expect += vs;
        }
    }
}
