//! Crash-recovery equivalence for `Session::checkpoint` /
//! `Session::restore`: killing a session mid-stream and resuming from
//! its snapshot must be *unobservable*. Every scenario runs the full
//! sixteen-maintainer roster twice — once uninterrupted, once as
//! checkpoint → drop → restore → continue — and demands bit-identical
//! batch reports, query answers, receipts, rolled-up `SessionStats`,
//! and stream epochs, at 1, 2, and 4 workers. The failure paths
//! (stale epoch, unknown maintainer, corrupt bytes) must all surface
//! as typed `SnapshotError`s, never as garbage state.

use mpc_stream::graph::gen;
use mpc_stream::prelude::*;
use std::path::PathBuf;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn cfg(n: usize) -> MpcConfig {
    MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 16)
        .build()
}

/// A collision-free scratch path for one checkpoint file; the suite
/// runs in one process, so pid + tag is unique per call site.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpc-snap-test-{}-{tag}.snap", std::process::id()))
}

/// The full sixteen-kind roster from the parallel-equivalence
/// harness: one registration function keeps the twin runs identical.
fn full_roster(workers: usize) -> Session {
    let n = 24usize;
    let mut session = Session::new(cfg(n)).with_workers(workers);
    session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
    session.register(StreamingConnectivity::new(n, 2));
    session.register(RobustConnectivity::new(
        n,
        2,
        4,
        ConnectivityConfig::default(),
        3,
    ));
    let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 4);
    {
        let mut setup = MpcContext::new(cfg(n));
        vd.add_vertices(n, &mut setup).expect("slots available");
    }
    session.register(vd);
    session.register(ExactMsf::new(n));
    session.register(ApproxMsfWeight::new(n, 0.5, 4, 5));
    session.register(ApproxMsfForest::new(n, 0.5, 4, 6));
    session.register(Bipartiteness::new(n, 7));
    session.register(MatchingSizeEstimator::new(
        n,
        2.0,
        StreamKind::InsertionOnly,
        8,
    ));
    session.register(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 9));
    session.register(AklyMatching::new(n, 2.0, 10));
    session.register(MaximalMatching::new(n));
    session.register(DynamicKConn::new(n, 2, 11));
    session.register(InsertOnlyKConn::new(n, 2));
    session.register(AgmBaseline::new(n, 12));
    session.register(FullMemoryBaseline::new(n));
    assert_eq!(session.maintainer_count(), 16);
    session
}

const ALL_QUERIES: [QueryRequest; 9] = [
    QueryRequest::Connected(0, 23),
    QueryRequest::ComponentOf(3),
    QueryRequest::ComponentCount,
    QueryRequest::SpanningForest,
    QueryRequest::ForestWeight,
    QueryRequest::IsBipartite,
    QueryRequest::MatchingSize,
    QueryRequest::MatchingEdges,
    QueryRequest::MinCutLowerBound,
];

/// Everything a run can observe: per-apply batch reports, per-query
/// fan-out answers with their receipts, the final rollup, and the
/// stream epoch.
type Observables = (
    Vec<Vec<BatchReport>>,
    Vec<Vec<(MaintainerId, QueryResponse)>>,
    Vec<Vec<QueryReport>>,
    SessionStats,
    u64,
);

/// Asks the whole query vocabulary and seals the run: answers,
/// receipts, validated invariants, final stats, stream epoch.
fn finish(mut session: Session, reports: Vec<Vec<BatchReport>>) -> Observables {
    let mut answers = Vec::new();
    let mut receipts = Vec::new();
    for q in &ALL_QUERIES {
        answers.push(session.ask_all(q).expect("fan-out answers"));
        receipts.push(session.query_reports().to_vec());
    }
    session.validate_all().expect("invariants hold");
    let epoch = session.stream_epoch();
    (reports, answers, receipts, session.stats().clone(), epoch)
}

/// The uninterrupted twin.
fn uninterrupted(workers: usize, batches: &[Batch]) -> Observables {
    let mut session = full_roster(workers);
    let mut reports = Vec::new();
    for batch in batches {
        reports.push(session.apply_batch(batch).expect("stream in regime"));
    }
    finish(session, reports)
}

/// The crashed twin: run half the stream, checkpoint, *drop the
/// session entirely*, restore from disk, and finish the stream.
fn crash_and_recover(workers: usize, batches: &[Batch], tag: &str) -> Observables {
    let path = scratch(tag);
    let split = batches.len() / 2;
    let mut session = full_roster(workers);
    let mut reports = Vec::new();
    for batch in &batches[..split] {
        reports.push(session.apply_batch(batch).expect("stream in regime"));
    }
    let receipt = session.checkpoint(&path).expect("checkpoint succeeds");
    assert_eq!(receipt.epoch, session.stream_epoch());
    assert_eq!(receipt.maintainers.len(), 16);
    assert!(receipt.bytes > 0);
    // Per-maintainer section sizes land in the stats rollup too.
    for (i, (name, bytes)) in receipt.maintainers.iter().enumerate() {
        let entry = &session.stats().per_maintainer[i];
        assert_eq!(entry.name, name.as_str());
        assert_eq!(entry.checkpoint_bytes, *bytes);
    }
    drop(session); // the "crash"

    let mut session = Session::restore(&path, &mpc_stream::full_registry()).expect("restore");
    std::fs::remove_file(&path).expect("scratch file removable");
    session.set_workers(workers);
    assert_eq!(session.maintainer_count(), 16);
    for batch in &batches[split..] {
        reports.push(session.apply_batch(batch).expect("stream in regime"));
    }
    finish(session, reports)
}

#[test]
fn crash_recovery_is_bit_identical_at_every_worker_count() {
    let stream = gen::random_insert_stream(24, 6, 10, 0x9A11);
    for workers in WORKER_COUNTS {
        let full = uninterrupted(workers, &stream.batches);
        let recovered = crash_and_recover(workers, &stream.batches, &format!("recover-w{workers}"));
        assert_eq!(
            recovered, full,
            "{workers}-worker recovery diverged from the uninterrupted run"
        );
    }
}

/// Deletions exercise sketch recovery and rematch control flow — the
/// state a shallow snapshot would lose. Mixed stream, dynamic subset.
#[test]
fn crash_recovery_survives_deletions() {
    let n = 32usize;
    let build = || {
        let mut s = Session::new(cfg(n)).with_workers(2);
        s.register(Connectivity::new(n, ConnectivityConfig::default(), 21));
        s.register(AklyMatching::new(n, 2.0, 22));
        s.register(DynamicKConn::new(n, 2, 23));
        s.register(AgmBaseline::new(n, 24));
        s.register(FullMemoryBaseline::new(n));
        s
    };
    let stream = gen::random_mixed_stream(n, 8, 10, 0.65, 0xD11);
    let queries = [
        QueryRequest::Connected(1, n as u32 - 2),
        QueryRequest::ComponentCount,
        QueryRequest::MatchingSize,
        QueryRequest::MinCutLowerBound,
    ];

    // Uninterrupted twin.
    let mut full = build();
    let mut full_reports = Vec::new();
    for batch in &stream.batches {
        full_reports.push(full.apply_batch(batch).expect("stream in regime"));
    }
    let full_answers: Vec<_> = queries
        .iter()
        .map(|q| full.ask_all(q).expect("answers"))
        .collect();

    // Crashed twin.
    let path = scratch("mixed");
    let split = stream.batches.len() / 2;
    let mut crashed = build();
    let mut reports = Vec::new();
    for batch in &stream.batches[..split] {
        reports.push(crashed.apply_batch(batch).expect("stream in regime"));
    }
    crashed.checkpoint(&path).expect("checkpoint succeeds");
    drop(crashed);
    let mut resumed = Session::restore(&path, &mpc_stream::full_registry()).expect("restore");
    std::fs::remove_file(&path).expect("scratch file removable");
    resumed.set_workers(2);
    for batch in &stream.batches[split..] {
        reports.push(resumed.apply_batch(batch).expect("stream in regime"));
    }
    let answers: Vec<_> = queries
        .iter()
        .map(|q| resumed.ask_all(q).expect("answers"))
        .collect();

    assert_eq!(reports, full_reports, "batch reports diverged");
    assert_eq!(answers, full_answers, "query answers diverged");
    assert_eq!(resumed.stats(), full.stats(), "stats rollups diverged");
    assert_eq!(resumed.stream_epoch(), full.stream_epoch());
}

/// checkpoint → restore → checkpoint must reproduce the container
/// byte for byte: nothing in the format depends on host state, and
/// the stats section (which carries `checkpoint_bytes`) is written
/// after those sizes are recorded.
#[test]
fn double_checkpoint_is_byte_identical() {
    let stream = gen::random_insert_stream(24, 4, 10, 0x9A11);
    let mut session = full_roster(1);
    for batch in &stream.batches {
        session.apply_batch(batch).expect("stream in regime");
    }
    let first = scratch("double-a");
    let second = scratch("double-b");
    session.checkpoint(&first).expect("first checkpoint");
    drop(session);
    let mut restored = Session::restore(&first, &mpc_stream::full_registry()).expect("restore");
    restored.checkpoint(&second).expect("second checkpoint");
    let a = std::fs::read(&first).expect("first readable");
    let b = std::fs::read(&second).expect("second readable");
    std::fs::remove_file(&first).expect("scratch file removable");
    std::fs::remove_file(&second).expect("scratch file removable");
    assert_eq!(a, b, "re-checkpoint of a restored session changed bytes");
}

/// A checkpoint taken at epoch `e` must refuse to pose as epoch `e'`:
/// the guard is the typed `EpochMismatch`, not a silent stale resume.
#[test]
fn stale_epoch_restore_fails_typed() {
    let stream = gen::random_insert_stream(16, 3, 6, 0xA0A0);
    let n = 16usize;
    let mut session = Session::new(cfg(n));
    session.register(FullMemoryBaseline::new(n));
    for batch in &stream.batches {
        session.apply_batch(batch).expect("stream in regime");
    }
    let epoch = session.stream_epoch();
    assert_eq!(epoch, stream.batches.len() as u64);
    let path = scratch("stale");
    session.checkpoint(&path).expect("checkpoint succeeds");

    let registry = mpc_stream::full_registry();
    let err = Session::restore_checked(&path, &registry, epoch + 7)
        .expect_err("stale expectation must fail");
    assert_eq!(
        err,
        SnapshotError::EpochMismatch {
            expected: epoch + 7,
            found: epoch,
        }
    );
    // The exact expectation still restores.
    let ok = Session::restore_checked(&path, &registry, epoch).expect("matching epoch restores");
    assert_eq!(ok.stream_epoch(), epoch);
    std::fs::remove_file(&path).expect("scratch file removable");
}

/// A registry that has never heard of a kind in the file must fail
/// typed, naming the kind — not panic, not skip the maintainer.
#[test]
fn restore_with_missing_loader_fails_typed() {
    let n = 16usize;
    let mut session = Session::new(cfg(n));
    session.register(MaximalMatching::new(n));
    let path = scratch("unknown");
    session.checkpoint(&path).expect("checkpoint succeeds");

    let empty = MaintainerRegistry::new();
    let err = Session::restore(&path, &empty).expect_err("no loaders registered");
    match err {
        SnapshotError::UnknownMaintainer { kind } => assert_eq!(kind, "matching-maximal"),
        other => panic!("expected UnknownMaintainer, got {other:?}"),
    }
    std::fs::remove_file(&path).expect("scratch file removable");
}

/// Bit flips must never decode: the header magic and the per-section
/// checksums are both load-bearing.
#[test]
fn corrupt_bytes_fail_typed() {
    let n = 16usize;
    let mut session = Session::new(cfg(n));
    session.register(FullMemoryBaseline::new(n));
    session
        .apply([Update::Insert(Edge::new(0, 1))])
        .expect("legal batch");
    let path = scratch("corrupt");
    session.checkpoint(&path).expect("checkpoint succeeds");
    let pristine = std::fs::read(&path).expect("snapshot readable");
    let registry = mpc_stream::full_registry();

    // Clobbered magic: rejected before anything is decoded.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&path, &bad_magic).expect("scratch writable");
    assert_eq!(
        Session::restore(&path, &registry).expect_err("magic must be checked"),
        SnapshotError::BadMagic
    );

    // A payload bit flip: caught by a section checksum (or, if it
    // lands in the section table, by a structural decode error) —
    // always an `Err`, never a quietly wrong session.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&path, &flipped).expect("scratch writable");
    assert!(
        Session::restore(&path, &registry).is_err(),
        "mid-file bit flip decoded cleanly"
    );

    // Truncation: an `Err`, not a partial session.
    let truncated = &pristine[..pristine.len() - 8];
    std::fs::write(&path, truncated).expect("scratch writable");
    assert!(
        Session::restore(&path, &registry).is_err(),
        "truncated snapshot decoded cleanly"
    );
    std::fs::remove_file(&path).expect("scratch file removable");
}
