//! Property-based tests for the extension invariants: certificate
//! soundness (cut preservation up to `k`), sketch-switching
//! transparency, and vertex-churn correctness.

use mpc_stream::core_alg::{ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity};
use mpc_stream::graph::cuts;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::{Batch, Update};
use mpc_stream::kconn::{DynamicKConn, InsertOnlyKConn};
use mpc_stream::mpc::{MpcConfig, MpcContext};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// Random simple edge set on `n` vertices.
fn edge_sets(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((0u32..n, 0u32..n), 0..max_edges).prop_map(|pairs| {
        let mut seen = BTreeSet::new();
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .filter(|e| seen.insert(*e))
            .collect()
    })
}

/// A valid mixed batch sequence (inserts of absent edges, deletes of
/// live ones) together with the live edge set after every batch.
fn mixed_streams(n: u32) -> impl Strategy<Value = (Vec<Batch>, Vec<Vec<Edge>>)> {
    proptest::collection::vec((0u32..n, 0u32..n, any::<bool>()), 1..80).prop_map(move |steps| {
        let mut live: BTreeSet<Edge> = BTreeSet::new();
        let mut batches = Vec::new();
        let mut snapshots = Vec::new();
        let mut current = Batch::new();
        for (a, b, prefer_insert) in steps {
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if live.contains(&e) && !prefer_insert {
                live.remove(&e);
                current.push(Update::Delete(e));
            } else if !live.contains(&e) && (prefer_insert || live.is_empty()) {
                live.insert(e);
                current.push(Update::Insert(e));
            }
            if current.len() >= 6 {
                batches.push(std::mem::take(&mut current));
                snapshots.push(live.iter().copied().collect());
            }
        }
        if !current.is_empty() {
            batches.push(current);
            snapshots.push(live.iter().copied().collect());
        }
        (batches, snapshots)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Insert-only certificate: structurally valid, edge-subset of G,
    /// within the k(n-1) size bound, and cut-exact up to k.
    #[test]
    fn insert_only_certificate_preserves_small_cuts(
        edges in edge_sets(10, 30),
        k in 1usize..4,
    ) {
        let n = 10usize;
        let mut ctx = ctx_for(n);
        let mut kc = InsertOnlyKConn::new(n, k);
        for chunk in edges.chunks(4) {
            kc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx).unwrap();
        }
        let cert = kc.certificate();
        prop_assert_eq!(cert.validate(), Ok(()));
        prop_assert!(cert.edge_count() <= k * (n - 1));
        for e in cert.edges() {
            prop_assert!(edges.contains(&e));
        }
        let lam_g = cuts::edge_connectivity(n, &edges).min(k as u64);
        let lam_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
        prop_assert_eq!(lam_g, lam_c);
        // Bridges coincide whenever the certificate may answer.
        if k >= 2 {
            prop_assert_eq!(cert.bridges().unwrap(), cuts::bridges(n, &edges));
        }
    }

    /// Dynamic sketch-peeled certificate preserves truncated cuts
    /// after arbitrary valid insert/delete streams.
    #[test]
    fn dynamic_certificate_preserves_small_cuts(
        (batches, snapshots) in mixed_streams(9),
        k in 1usize..3,
        seed in 0u64..1000,
    ) {
        let n = 9usize;
        let mut ctx = ctx_for(n);
        let mut kc = DynamicKConn::new(n, k, seed);
        for batch in &batches {
            kc.apply_batch(batch, &mut ctx);
        }
        let live = snapshots.last().cloned().unwrap_or_default();
        let cert = kc.certificate(&mut ctx);
        for e in cert.edges() {
            prop_assert!(live.contains(&e), "ghost edge {:?}", e);
        }
        let lam_g = cuts::edge_connectivity(n, &live).min(k as u64);
        let lam_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
        prop_assert_eq!(lam_g, lam_c);
    }

    /// The robust wrapper gives oracle-exact labels on every prefix of
    /// any oblivious stream (budget set high enough to never refuse).
    #[test]
    fn robust_connectivity_matches_oracle(
        (batches, snapshots) in mixed_streams(12),
        r in 1usize..4,
    ) {
        let n = 12usize;
        let mut ctx = ctx_for(n);
        let mut rc = RobustConnectivity::new(n, r, 1000, ConnectivityConfig::default(), 77);
        for (batch, live) in batches.iter().zip(&snapshots) {
            rc.apply_batch(batch, &mut ctx).unwrap();
            let labels = oracle::components(n, live.iter().copied());
            prop_assert_eq!(rc.component_labels(), &labels[..]);
        }
    }

    /// Vertex-dynamic connectivity matches the oracle under arbitrary
    /// add-vertex / add-edge / delete-edge / remove-vertex programs.
    #[test]
    fn vertex_churn_matches_oracle(
        program in proptest::collection::vec((0u8..4, 0u32..16, 0u32..16), 1..60),
    ) {
        let cap = 16usize;
        let mut ctx = ctx_for(cap);
        let mut vd = VertexDynamicConnectivity::with_capacity(
            cap, ConnectivityConfig::default(), 3,
        );
        let mut live: Vec<Edge> = Vec::new();
        let mut active: Vec<u32> = Vec::new();
        for (op, x, y) in program {
            match op {
                0 => {
                    if vd.active_count() < cap {
                        active.push(vd.add_vertex(&mut ctx).unwrap());
                    }
                }
                1 => {
                    if active.len() >= 2 {
                        let a = active[x as usize % active.len()];
                        let b = active[y as usize % active.len()];
                        if a != b {
                            let e = Edge::new(a, b);
                            if !live.contains(&e) {
                                vd.apply_batch(&Batch::inserting([e]), &mut ctx).unwrap();
                                live.push(e);
                            }
                        }
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let e = live.swap_remove(x as usize % live.len());
                        vd.apply_batch(&Batch::deleting([e]), &mut ctx).unwrap();
                    }
                }
                _ => {
                    if !active.is_empty() {
                        let i = x as usize % active.len();
                        let v = active[i];
                        if live.iter().all(|e| !e.touches(v)) {
                            vd.remove_vertex(v, &mut ctx).unwrap();
                            active.swap_remove(i);
                        }
                    }
                }
            }
        }
        let labels = oracle::components(cap, live.iter().copied());
        for &a in &active {
            for &b in &active {
                prop_assert_eq!(
                    vd.connected(a, b).unwrap(),
                    labels[a as usize] == labels[b as usize]
                );
            }
        }
        // Inactive slots are rejected, not misanswered.
        for v in 0..cap as u32 {
            if !active.contains(&v) {
                prop_assert!(vd.component_of(v).is_err());
            }
        }
    }
}
