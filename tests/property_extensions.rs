//! Property-based tests for the extension invariants: certificate
//! soundness (cut preservation up to `k`), sketch-switching
//! transparency, and vertex-churn correctness.

use mpc_stream::core_alg::{ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity};
use mpc_stream::graph::cuts;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::{Batch, Update};
use mpc_stream::kconn::{DynamicKConn, InsertOnlyKConn};
use mpc_stream::mpc::{MpcConfig, MpcContext};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// Random simple edge set on `n` vertices.
fn edge_sets(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((0u32..n, 0u32..n), 0..max_edges).prop_map(|pairs| {
        let mut seen = BTreeSet::new();
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(a, b))
            .filter(|e| seen.insert(*e))
            .collect()
    })
}

/// A valid mixed batch sequence (inserts of absent edges, deletes of
/// live ones) together with the live edge set after every batch.
fn mixed_streams(n: u32) -> impl Strategy<Value = (Vec<Batch>, Vec<Vec<Edge>>)> {
    proptest::collection::vec((0u32..n, 0u32..n, any::<bool>()), 1..80).prop_map(move |steps| {
        let mut live: BTreeSet<Edge> = BTreeSet::new();
        let mut batches = Vec::new();
        let mut snapshots = Vec::new();
        let mut current = Batch::new();
        for (a, b, prefer_insert) in steps {
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if live.contains(&e) && !prefer_insert {
                live.remove(&e);
                current.push(Update::Delete(e));
            } else if !live.contains(&e) && (prefer_insert || live.is_empty()) {
                live.insert(e);
                current.push(Update::Insert(e));
            }
            if current.len() >= 6 {
                batches.push(std::mem::take(&mut current));
                snapshots.push(live.iter().copied().collect());
            }
        }
        if !current.is_empty() {
            batches.push(current);
            snapshots.push(live.iter().copied().collect());
        }
        (batches, snapshots)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Insert-only certificate: structurally valid, edge-subset of G,
    /// within the k(n-1) size bound, and cut-exact up to k.
    #[test]
    fn insert_only_certificate_preserves_small_cuts(
        edges in edge_sets(10, 30),
        k in 1usize..4,
    ) {
        let n = 10usize;
        let mut ctx = ctx_for(n);
        let mut kc = InsertOnlyKConn::new(n, k);
        for chunk in edges.chunks(4) {
            kc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx).unwrap();
        }
        let cert = kc.certificate();
        prop_assert_eq!(cert.validate(), Ok(()));
        prop_assert!(cert.edge_count() <= k * (n - 1));
        for e in cert.edges() {
            prop_assert!(edges.contains(&e));
        }
        let lam_g = cuts::edge_connectivity(n, &edges).min(k as u64);
        let lam_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
        prop_assert_eq!(lam_g, lam_c);
        // Bridges coincide whenever the certificate may answer.
        if k >= 2 {
            prop_assert_eq!(cert.bridges().unwrap(), cuts::bridges(n, &edges));
        }
    }

    /// Dynamic sketch-peeled certificate preserves truncated cuts
    /// after arbitrary valid insert/delete streams.
    #[test]
    fn dynamic_certificate_preserves_small_cuts(
        (batches, snapshots) in mixed_streams(9),
        k in 1usize..3,
        seed in 0u64..1000,
    ) {
        let n = 9usize;
        let mut ctx = ctx_for(n);
        let mut kc = DynamicKConn::new(n, k, seed);
        for batch in &batches {
            kc.apply_batch(batch, &mut ctx).expect("valid stream");
        }
        let live = snapshots.last().cloned().unwrap_or_default();
        let cert = kc.certificate(&mut ctx);
        for e in cert.edges() {
            prop_assert!(live.contains(&e), "ghost edge {:?}", e);
        }
        let lam_g = cuts::edge_connectivity(n, &live).min(k as u64);
        let lam_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
        prop_assert_eq!(lam_g, lam_c);
    }

    /// The robust wrapper gives oracle-exact labels on every prefix of
    /// any oblivious stream (budget set high enough to never refuse).
    #[test]
    fn robust_connectivity_matches_oracle(
        (batches, snapshots) in mixed_streams(12),
        r in 1usize..4,
    ) {
        let n = 12usize;
        let mut ctx = ctx_for(n);
        let mut rc = RobustConnectivity::new(n, r, 1000, ConnectivityConfig::default(), 77);
        for (batch, live) in batches.iter().zip(&snapshots) {
            rc.apply_batch(batch, &mut ctx).unwrap();
            let labels = oracle::components(n, live.iter().copied());
            prop_assert_eq!(rc.component_labels(), &labels[..]);
        }
    }

    /// Vertex-dynamic connectivity matches the oracle under arbitrary
    /// add-vertex / add-edge / delete-edge / remove-vertex programs.
    #[test]
    fn vertex_churn_matches_oracle(
        program in proptest::collection::vec((0u8..4, 0u32..16, 0u32..16), 1..60),
    ) {
        let cap = 16usize;
        let mut ctx = ctx_for(cap);
        let mut vd = VertexDynamicConnectivity::with_capacity(
            cap, ConnectivityConfig::default(), 3,
        );
        let mut live: Vec<Edge> = Vec::new();
        let mut active: Vec<u32> = Vec::new();
        for (op, x, y) in program {
            match op {
                0 => {
                    if vd.active_count() < cap {
                        active.push(vd.add_vertex(&mut ctx).unwrap());
                    }
                }
                1 => {
                    if active.len() >= 2 {
                        let a = active[x as usize % active.len()];
                        let b = active[y as usize % active.len()];
                        if a != b {
                            let e = Edge::new(a, b);
                            if !live.contains(&e) {
                                vd.apply_batch(&Batch::inserting([e]), &mut ctx).unwrap();
                                live.push(e);
                            }
                        }
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let e = live.swap_remove(x as usize % live.len());
                        vd.apply_batch(&Batch::deleting([e]), &mut ctx).unwrap();
                    }
                }
                _ => {
                    if !active.is_empty() {
                        let i = x as usize % active.len();
                        let v = active[i];
                        if live.iter().all(|e| !e.touches(v)) {
                            vd.remove_vertex(v, &mut ctx).unwrap();
                            active.swap_remove(i);
                        }
                    }
                }
            }
        }
        let labels = oracle::components(cap, live.iter().copied());
        for &a in &active {
            for &b in &active {
                prop_assert_eq!(
                    vd.connected(a, b).unwrap(),
                    labels[a as usize] == labels[b as usize]
                );
            }
        }
        // Inactive slots are rejected, not misanswered.
        for v in 0..cap as u32 {
            if !active.contains(&v) {
                prop_assert!(vd.component_of(v).is_err());
            }
        }
    }
}

/// Snapshot of every tour NOT in `touched`: length, members, and the
/// full edge-record shard.
type TourSnapshot = std::collections::BTreeMap<
    mpc_stream::etf::TourId,
    (u64, Vec<u32>, Vec<(Edge, mpc_stream::etf::dist::EdgeRec)>),
>;

fn snapshot_untouched(
    etf: &mpc_stream::etf::DistEtf,
    touched: &BTreeSet<mpc_stream::etf::TourId>,
) -> TourSnapshot {
    etf.tours()
        .filter(|t| !touched.contains(t))
        .map(|t| {
            (
                t,
                (
                    etf.tour_len(t),
                    etf.tour_members(t).to_vec(),
                    etf.tour_edges(t).map(|(e, r)| (e, *r)).collect(),
                ),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded-ETF locality guarantee: after any batch_join /
    /// batch_split, the edge records (and lengths and memberships) of
    /// every tour the batch did not touch are bit-identical — the
    /// regression guard that writes stay shard-local.
    #[test]
    fn batch_ops_leave_untouched_tours_bit_identical(seed in 0u64..1u64 << 48) {
        use mpc_stream::etf::DistEtf;
        use mpc_stream::etf::tour::validate;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let n = 60usize;
        let mut ctx = ctx_for(n);
        let mut etf = DistEtf::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<Edge> = Vec::new();
        // Ten disjoint 6-vertex paths.
        for t in 0..10u32 {
            for j in 0..5u32 {
                let e = Edge::new(6 * t + j, 6 * t + j + 1);
                etf.join(e, &mut ctx);
                live.push(e);
            }
        }
        for _round in 0..8 {
            if rng.gen_bool(0.55) || live.is_empty() {
                // Batch join of up to 3 fresh cross-tour edges whose
                // tour pairs form a forest.
                let mut batch: Vec<Edge> = Vec::new();
                let mut used: BTreeSet<mpc_stream::etf::TourId> = BTreeSet::new();
                for _ in 0..40 {
                    if batch.len() >= 3 {
                        break;
                    }
                    let a = rng.gen_range(0..n as u32);
                    let b = rng.gen_range(0..n as u32);
                    let (ta, tb) = (etf.tour_of(a), etf.tour_of(b));
                    if a == b || ta == tb || used.contains(&ta) || used.contains(&tb) {
                        continue;
                    }
                    used.insert(ta);
                    used.insert(tb);
                    batch.push(Edge::new(a, b));
                }
                if batch.is_empty() {
                    continue;
                }
                let snap = snapshot_untouched(&etf, &used);
                etf.batch_join(&batch, &mut ctx);
                live.extend(&batch);
                for (t, (len, members, recs)) in &snap {
                    prop_assert_eq!(etf.tour_len(*t), *len, "length of untouched tour changed");
                    prop_assert_eq!(etf.tour_members(*t), &members[..], "members of untouched tour changed");
                    let now: Vec<_> = etf.tour_edges(*t).map(|(e, r)| (e, *r)).collect();
                    prop_assert_eq!(&now, recs, "edge records of untouched tour changed");
                }
                validate(&etf).expect("valid after batch_join");
            } else {
                // Batch split of up to 3 live tree edges; touched =
                // the tours those edges belong to.
                let take = 1 + rng.gen_range(0..live.len().min(3));
                let mut batch: Vec<Edge> = Vec::new();
                for _ in 0..take {
                    let i = rng.gen_range(0..live.len());
                    batch.push(live.swap_remove(i));
                }
                let touched: BTreeSet<mpc_stream::etf::TourId> =
                    batch.iter().map(|e| etf.tour_of(e.u())).collect();
                let snap = snapshot_untouched(&etf, &touched);
                etf.batch_split(&batch, &mut ctx);
                for (t, (len, members, recs)) in &snap {
                    prop_assert_eq!(etf.tour_len(*t), *len, "length of untouched tour changed");
                    prop_assert_eq!(etf.tour_members(*t), &members[..], "members of untouched tour changed");
                    let now: Vec<_> = etf.tour_edges(*t).map(|(e, r)| (e, *r)).collect();
                    prop_assert_eq!(&now, recs, "edge records of untouched tour changed");
                }
                validate(&etf).expect("valid after batch_split");
            }
        }
    }
}
