//! Maintainer-vs-baseline sessions: the paper's Section 2.1 / 1.3.1
//! comparisons run head-to-head inside **one** accounted cluster.
//!
//! The ROADMAP follow-up to the unified maintainer surface: register
//! the AGM sketch-recompute baseline and the `Θ(n+m)` full-memory
//! baseline as [`Maintain`] implementors next to the paper's
//! `Connectivity`, drive all three over the same update stream with
//! one `Session`, and check that (a) every structure answers
//! identically to the union-find oracle, (b) the paper's maintained
//! labelling answers for free while the baselines pay `Θ(log n)`
//! query rounds on the shared context, and (c) the session's capacity
//! audit sees the *combined* standing state.

use mpc_stream::baselines::{AgmBaseline, FullMemoryBaseline};
use mpc_stream::core_alg::{Connectivity, ConnectivityConfig, Session};
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::Update;
use mpc_stream::mpc::{MpcConfig, MpcContext, MpcStreamError};

fn cfg(n: usize) -> MpcConfig {
    MpcConfig::builder(n, 0.5).local_capacity(1 << 15).build()
}

#[test]
fn maintainer_and_baselines_agree_on_one_cluster() {
    let n = 48;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 0xBA5E);
    let snaps = stream.replay();
    let mut session = Session::new(cfg(n));
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 7));
    let agm = session.register(AgmBaseline::new(n, 7));
    let full = session.register(FullMemoryBaseline::new(n));
    assert_eq!(
        session.names(),
        vec!["connectivity", "agm-baseline", "fullmem-baseline"]
    );
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        session.apply_batch(batch).expect("valid stream");
        let live: Vec<Edge> = snap.edges().collect();
        let expect = oracle::components(n, live.iter().copied());
        // The paper's structure answers from its maintained labels.
        let maintained = session.get(conn).component_labels().to_vec();
        assert_eq!(maintained, expect, "maintained labels diverged");
        // Both baselines recompute on the session's own context.
        let agm_labels = session.query(agm, |b, ctx| b.query_components(ctx));
        assert_eq!(agm_labels, expect, "AGM recompute diverged");
        let full_labels = session.query(full, |b, ctx| b.query_components(ctx));
        assert_eq!(full_labels, expect, "full-memory recompute diverged");
    }
    // The query-round asymmetry the comparison is about: baseline
    // queries cost rounds, the maintained labelling is free.
    let agm_rounds = session.get(agm).last_query_rounds();
    assert!(agm_rounds > 0, "AGM queries must pay Borůvka rounds");
    // All three standing states are audited together.
    let conn_words = session.maintainer(conn.id()).expect("live").words();
    let agm_words = session.maintainer(agm.id()).expect("live").words();
    let full_words = session.maintainer(full.id()).expect("live").words();
    assert!(conn_words > 0 && agm_words > 0 && full_words > 0);
    assert_eq!(
        session.state_words(),
        conn_words + agm_words + full_words,
        "combined standing state"
    );
    // Every chunk fanned to all three maintainers.
    assert_eq!(
        session.stats().maintainer_batches,
        3 * session.stats().batches
    );
    session.validate_all().expect("invariants hold");
}

#[test]
fn baseline_ingest_rejects_illegal_batches_like_a_maintainer() {
    let n = 16;
    let mut session = Session::new(cfg(n));
    session.register(AgmBaseline::new(n, 3));
    let err = session
        .apply([Update::Insert(Edge::new(0, 200))])
        .expect_err("endpoint out of range");
    assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
    let mut session = Session::new(cfg(n));
    session.register(FullMemoryBaseline::new(n));
    let err = session
        .apply([Update::Insert(Edge::new(0, 200))])
        .expect_err("endpoint out of range");
    assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
}

#[test]
fn memory_asymmetry_is_observable_in_one_session() {
    // Section 1.3.1's point, measured side by side: the full-memory
    // baseline's words grow linearly with m while the sketch-based
    // structures stay put once their columns are materialized.
    let n = 64;
    let mut session = Session::new(cfg(n));
    let agm = session.register(AgmBaseline::new(n, 5));
    let full = session.register(FullMemoryBaseline::new(n));
    // A dense-ish first wave touches every vertex.
    let wave1: Vec<Update> = (0..n as u32 - 1)
        .map(|i| Update::Insert(Edge::new(i, i + 1)))
        .collect();
    session.apply(wave1).expect("valid");
    let agm_w1 = session.maintainer(agm.id()).expect("live").words();
    let full_w1 = session.maintainer(full.id()).expect("live").words();
    // A second wave adds edges between already-touched vertices.
    let wave2: Vec<Update> = (0..n as u32 / 2)
        .map(|i| Update::Insert(Edge::new(i, i + n as u32 / 2)))
        .collect();
    session.apply(wave2).expect("valid");
    let agm_w2 = session.maintainer(agm.id()).expect("live").words();
    let full_w2 = session.maintainer(full.id()).expect("live").words();
    assert_eq!(agm_w1, agm_w2, "sketch state is Õ(n): no growth with m");
    assert!(full_w2 > full_w1, "full-memory state grows with m");
    // A permissive tiny cluster records the combined overrun instead
    // of erroring.
    let tiny = MpcConfig::builder(n, 0.5)
        .local_capacity(64)
        .machines(2)
        .build();
    let mut tiny_session = Session::new(tiny).with_max_batch(8);
    tiny_session.register(AgmBaseline::new(n, 5));
    tiny_session.register(FullMemoryBaseline::new(n));
    tiny_session
        .apply([Update::Insert(Edge::new(0, 1))])
        .expect("permissive mode absorbs the overrun");
    assert!(tiny_session.stats().capacity_violations > 0);
}

#[test]
fn direct_context_queries_match_session_driven_ones() {
    // The baselines remain usable outside a Session (back-compat):
    // the same stream driven directly gives the same answers.
    let n = 32;
    let stream = gen::random_mixed_stream(n, 5, 8, 0.7, 0xF00D);
    let snaps = stream.replay();
    let mut ctx = MpcContext::new(cfg(n));
    let mut agm = AgmBaseline::new(n, 9);
    let mut session = Session::new(cfg(n)).with_normalization(false);
    let via = session.register(AgmBaseline::new(n, 9));
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        agm.apply_batch(batch, &mut ctx);
        session.apply_batch(batch).expect("valid stream");
        let direct = agm.query_components(&mut ctx);
        let driven = session.query(via, |b, ctx| b.query_components(ctx));
        assert_eq!(direct, driven);
        assert_eq!(direct, oracle::components(n, snap.edges()));
    }
}
