//! Whole-system integration: every maintained structure in the
//! workspace ingesting the *same* update stream side by side, each
//! checked against its oracle after every batch — the scenario a
//! deployment would actually run (one evolving graph, many consumers).

use mpc_stream::baselines::AgmBaseline;
use mpc_stream::core_alg::{Connectivity, ConnectivityConfig, RobustConnectivity};
use mpc_stream::graph::cuts;
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::kconn::DynamicKConn;
use mpc_stream::mpc::{MpcConfig, MpcContext};
use mpc_stream::msf::Bipartiteness;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
}

/// One mixed stream feeding connectivity, its robust wrapper, the AGM
/// baseline, bipartiteness, and the 2-edge-connectivity certificate —
/// all validated per batch.
#[test]
fn all_consumers_agree_on_one_stream() {
    let n = 40;
    let stream = gen::random_mixed_stream(n, 8, 10, 0.65, 0xF00D);
    let snaps = stream.replay();
    let mut ctx = ctx_for(n);

    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
    let mut robust = RobustConnectivity::new(n, 2, 64, ConnectivityConfig::default(), 2);
    let mut agm = AgmBaseline::new(n, 3);
    let mut bip = Bipartiteness::new(n, 4);
    let mut kc = DynamicKConn::new(n, 2, 5);

    for (i, (batch, snap)) in stream.batches.iter().zip(&snaps).enumerate() {
        conn.apply_batch(batch, &mut ctx).expect("conn");
        robust.apply_batch(batch, &mut ctx).expect("robust");
        agm.apply_batch(batch, &mut ctx);
        bip.apply_batch(batch, &mut ctx).expect("bipartiteness");
        kc.apply_batch(batch, &mut ctx).expect("kconn");

        let live: Vec<Edge> = snap.edges().collect();
        let labels = oracle::components(n, live.iter().copied());

        // All three connectivity views agree with the oracle.
        assert_eq!(conn.component_labels(), &labels[..], "batch {i}: conn");
        assert_eq!(robust.component_labels(), &labels[..], "batch {i}: robust");
        assert_eq!(
            agm.query_components(&mut ctx),
            labels,
            "batch {i}: agm recompute"
        );

        // Bipartiteness agrees with 2-coloring.
        assert_eq!(
            bip.is_bipartite(),
            oracle::is_bipartite(n, &live),
            "batch {i}: bipartiteness"
        );

        // The certificate preserves cuts up to 2 and finds the true
        // bridges.
        let cert = kc.certificate(&mut ctx);
        assert_eq!(
            cuts::edge_connectivity(n, &cert.edges()).min(2),
            cuts::edge_connectivity(n, &live).min(2),
            "batch {i}: certificate cut"
        );
        assert_eq!(
            cert.bridges().expect("k = 2"),
            cuts::bridges(n, &live),
            "batch {i}: bridges"
        );

        // The connectivity structure's spanning forest and the
        // certificate's first layer induce the same components.
        assert_eq!(
            cert.component_labels(),
            conn.component_labels(),
            "batch {i}: forest components"
        );
    }
}

/// The same pipeline on the barbell workload, whose cut structure is
/// known in closed form.
#[test]
fn pipeline_on_barbell_workload() {
    let c = 6;
    let p = 2;
    let stream = gen::barbell_stream(c, p, 5, true);
    let snaps = stream.replay();
    let n = stream.n;
    let mut ctx = ctx_for(n);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 7);
    let mut kc = DynamicKConn::new(n, 2, 8);

    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        conn.apply_batch(batch, &mut ctx).expect("conn");
        kc.apply_batch(batch, &mut ctx).expect("kconn");
        let live: Vec<Edge> = snap.edges().collect();
        assert_eq!(
            conn.component_count(),
            oracle::component_count(n, live.iter().copied())
        );
    }
    // After the delete phase the path is gone: cliques are separate,
    // no bridges remain anywhere.
    let cert = kc.certificate(&mut ctx);
    assert_eq!(cert.bridges().expect("k = 2"), vec![]);
    assert_eq!(conn.component_count(), 2 + p);
    // Each clique is still (c-1)-edge-connected internally — the
    // certificate can certify 2-edge-connectivity of each side by
    // restricting to one clique's vertices (component labels make
    // the restriction trivial).
    let labels = cert.component_labels();
    assert_eq!(labels[0], 0);
    assert_eq!(labels[c], c as u32);
}

/// Memory discipline across the pipeline: every consumer reports a
/// footprint, and the sum respects the Õ(n) regime at these sizes
/// (no structure secretly stores the whole graph).
#[test]
fn pipeline_memory_is_m_independent() {
    let n = 64;
    let mut ctx = ctx_for(n);
    // Pre-connect everything (touches every vertex, pins the spanning
    // forest at n-1 edges) so lazy materialization and forest size
    // cannot mask an m-dependence.
    let cycle = gen::circulant_stream(n, &[1], 16, 0);
    let run = |target_m: usize, seed: u64, ctx: &mut MpcContext| {
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
        let mut kc = DynamicKConn::new(n, 2, 2);
        for batch in &cycle.batches {
            conn.apply_batch(batch, ctx).expect("conn");
            kc.apply_batch(batch, ctx).expect("kconn");
        }
        let extra = gen::densifying_stream(n, target_m, 16, seed);
        for batch in &extra.batches {
            // densifying_stream may regenerate cycle edges; skip those
            // batches' duplicates by filtering against the live set.
            let fresh: Vec<Edge> = batch
                .insertions()
                .filter(|e| {
                    (e.v() as usize) != (e.u() as usize + 1) % n
                        && (e.u() as usize) != (e.v() as usize + 1) % n
                })
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let b = mpc_stream::graph::update::Batch::inserting(fresh);
            conn.apply_batch(&b, ctx).expect("conn");
            kc.apply_batch(&b, ctx).expect("kconn");
        }
        (conn.words(), kc.words(), conn.live_edge_count())
    };
    let (cw_sparse, kw_sparse, m_sparse) = run(100, 3, &mut ctx);
    let (cw_dense, kw_dense, m_dense) = run(800, 4, &mut ctx);
    assert!(m_dense > 4 * m_sparse, "workload did not densify");
    // Sketch-based state is sized by n and t, not m: identical once
    // every vertex's column is materialized and the forest spans.
    assert_eq!(cw_sparse, cw_dense, "connectivity words grew with m");
    assert_eq!(kw_sparse, kw_dense, "kconn words grew with m");
}
