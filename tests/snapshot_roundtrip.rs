//! Per-kind snapshot round-trip property: for every one of the
//! sixteen maintainer registrations, save → load → save must
//! reproduce the container byte for byte, and the loaded maintainer
//! must answer the entire query vocabulary exactly as the original
//! does. This pins the `Persist` impl of each concrete type against
//! its registered [`MaintainerLoader`] — the contract
//! `Session::checkpoint` / `Session::restore` is built on.

use mpc_stream::graph::gen;
use mpc_stream::prelude::*;
use mpc_stream::snapshot::{Snapshot, SnapshotWriter};
use std::collections::BTreeSet;

const N: usize = 24;

fn cfg() -> MpcConfig {
    MpcConfig::builder(2 * N, 0.5)
        .local_capacity(1 << 16)
        .build()
}

/// One freshly built maintainer of every registered kind, as trait
/// objects — the same roster the equivalence harnesses drive.
fn roster() -> Vec<Box<dyn Maintain>> {
    let mut vd = VertexDynamicConnectivity::with_capacity(N, ConnectivityConfig::default(), 4);
    {
        let mut setup = MpcContext::new(cfg());
        vd.add_vertices(N, &mut setup).expect("slots available");
    }
    vec![
        Box::new(Connectivity::new(N, ConnectivityConfig::default(), 1)),
        Box::new(StreamingConnectivity::new(N, 2)),
        Box::new(RobustConnectivity::new(
            N,
            2,
            4,
            ConnectivityConfig::default(),
            3,
        )),
        Box::new(vd),
        Box::new(ExactMsf::new(N)),
        Box::new(ApproxMsfWeight::new(N, 0.5, 4, 5)),
        Box::new(ApproxMsfForest::new(N, 0.5, 4, 6)),
        Box::new(Bipartiteness::new(N, 7)),
        Box::new(MatchingSizeEstimator::new(
            N,
            2.0,
            StreamKind::InsertionOnly,
            8,
        )),
        Box::new(MatchingSizeEstimator::new(N, 2.0, StreamKind::Dynamic, 9)),
        Box::new(AklyMatching::new(N, 2.0, 10)),
        Box::new(MaximalMatching::new(N)),
        Box::new(DynamicKConn::new(N, 2, 11)),
        Box::new(InsertOnlyKConn::new(N, 2)),
        Box::new(AgmBaseline::new(N, 12)),
        Box::new(FullMemoryBaseline::new(N)),
    ]
}

const ALL_QUERIES: [QueryRequest; 9] = [
    QueryRequest::Connected(0, N as u32 - 1),
    QueryRequest::ComponentOf(3),
    QueryRequest::ComponentCount,
    QueryRequest::SpanningForest,
    QueryRequest::ForestWeight,
    QueryRequest::IsBipartite,
    QueryRequest::MatchingSize,
    QueryRequest::MatchingEdges,
    QueryRequest::MinCutLowerBound,
];

/// Serializes one maintainer into a single-section container.
fn container(m: &dyn Maintain) -> Vec<u8> {
    let mut w = SnapshotWriter::new(0);
    w.begin_section("state");
    m.save_state(&mut w);
    w.end_section();
    w.finish()
}

/// Decodes a single-section container through the registered loader.
fn reload(registry: &MaintainerRegistry, name: &str, bytes: &[u8]) -> Box<dyn Maintain> {
    let snap = Snapshot::from_bytes(bytes).expect("container parses");
    let mut r = snap.section("state").expect("section present");
    let loader = registry
        .loader(name)
        .unwrap_or_else(|| panic!("no loader registered for `{name}`"));
    let m = loader(&mut r).unwrap_or_else(|e| panic!("loader for `{name}` failed: {e}"));
    r.expect_end()
        .unwrap_or_else(|e| panic!("loader for `{name}` left bytes behind: {e}"));
    m
}

/// The roster and the registry must agree on the kind vocabulary:
/// every driven maintainer has a loader, every loader is exercised.
#[test]
fn registry_covers_exactly_the_roster() {
    let names: BTreeSet<&str> = roster().iter().map(|m| m.name()).collect();
    let registered: BTreeSet<&str> = mpc_stream::full_registry().names().into_iter().collect();
    assert_eq!(names, registered);
    assert_eq!(names.len(), 16);
}

/// The property itself, for every kind, at three points in a stream's
/// life: freshly built, mid-stream, and after the full stream.
/// Byte-stability is checked *before* any query runs, so the saved
/// image is the ingest-time state, not a query-perturbed one.
#[test]
fn save_load_save_is_byte_identical_and_answers_match() {
    let registry = mpc_stream::full_registry();
    let stream = gen::random_insert_stream(N, 6, 10, 0x9A11);
    let checkpoints = [0usize, 3, stream.batches.len()];

    for stop in checkpoints {
        let mut ctx = MpcContext::new(cfg());
        for mut original in roster() {
            let name = original.name();
            for batch in &stream.batches[..stop] {
                original
                    .apply_batch(batch, &mut ctx)
                    .expect("stream in regime");
            }

            let first = container(original.as_ref());
            let mut loaded = reload(&registry, name, &first);
            let second = container(loaded.as_ref());
            assert_eq!(
                first, second,
                "`{name}` after {stop} batches: save → load → save changed bytes"
            );
            assert_eq!(loaded.name(), name);
            assert_eq!(loaded.n(), original.n());
            assert_eq!(
                loaded.words(),
                original.words(),
                "`{name}` footprint drifted"
            );
            assert_eq!(loaded.l0_failures(), original.l0_failures());
            loaded.validate().expect("loaded maintainer is coherent");

            // The loaded twin must now be *behaviourally* the
            // original: same support surface, same answer to every
            // query in the vocabulary, in the same order (answering
            // may advance sampler state, so both advance together).
            let mut ctx_a = MpcContext::new(cfg());
            let mut ctx_b = MpcContext::new(cfg());
            for q in &ALL_QUERIES {
                assert_eq!(
                    original.supports(q),
                    loaded.supports(q),
                    "`{name}` support surface changed across reload ({q:?})"
                );
                if !original.supports(q) {
                    continue;
                }
                let a = original.answer(q, &mut ctx_a).expect("original answers");
                let b = loaded.answer(q, &mut ctx_b).expect("loaded answers");
                assert_eq!(a, b, "`{name}` after {stop} batches: {q:?} diverged");
            }
        }
    }
}
