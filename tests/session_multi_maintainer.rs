//! The tentpole claim of the unified surface: **one** `Session`
//! drives heterogeneous maintainers over **one** shared stream on
//! **one** accounted cluster, and every maintainer's answers match
//! its sequential oracle; every failure mode surfaces as the
//! workspace-wide `MpcStreamError` instead of a panic.

use mpc_stream::graph::gen;
use mpc_stream::graph::oracle;
use mpc_stream::prelude::*;

fn cfg(n: usize) -> MpcConfig {
    // 2n covers the bipartite double cover's vertex space.
    MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 16)
        .build()
}

/// A strict 4-word-per-machine cluster nothing fits in.
fn tiny_ctx() -> MpcContext {
    MpcContext::new(
        MpcConfig::builder(16, 0.5)
            .local_capacity(4)
            .machines(2)
            .strict(true)
            .build(),
    )
}

fn big_batch() -> Batch {
    Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 1)))
}

#[test]
fn one_session_drives_connectivity_msf_and_bipartiteness_vs_oracles() {
    let n = 48;
    let stream = gen::random_insert_stream(n, 6, 10, 2024);
    let snaps = stream.replay();

    let mut session = Session::new(cfg(n));
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
    let msf = session.register(ExactMsf::new(n));
    let bip = session.register(Bipartiteness::new(n, 2));
    assert_eq!(session.maintainer_count(), 3);

    for (i, (batch, snap)) in stream.batches.iter().zip(&snaps).enumerate() {
        let reports = session
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("batch {i}: {e}"));
        // Every maintainer reported on every chunk.
        assert!(reports.len() >= 3, "batch {i}: {} reports", reports.len());

        let live: Vec<Edge> = snap.edges().collect();
        // Connectivity vs the union-find oracle.
        let labels = oracle::components(n, live.iter().copied());
        assert_eq!(
            session.get(conn).component_labels(),
            &labels[..],
            "batch {i}: connectivity labels diverged"
        );
        // Exact MSF (unit weights through the unweighted fan-out) vs
        // Kruskal: with unit weights the MSF weight is n − cc.
        let unit: Vec<WeightedEdge> = live
            .iter()
            .map(|&e| WeightedEdge { edge: e, weight: 1 })
            .collect();
        assert_eq!(
            session.get(msf).weight(),
            oracle::msf_weight(n, unit.iter().copied()),
            "batch {i}: MSF weight diverged"
        );
        // Bipartiteness vs the 2-coloring oracle.
        assert_eq!(
            session.get(bip).is_bipartite(),
            oracle::is_bipartite(n, &live),
            "batch {i}: bipartiteness diverged"
        );
    }

    // The shared cluster accounted everything once.
    let stats = session.stats();
    assert_eq!(stats.maintainer_batches, 3 * stats.batches);
    assert!(stats.rounds > 0 && stats.words > 0);
    assert!(session.state_words() > 0);
    session.validate_all().expect("all invariants hold");
}

#[test]
fn weighted_stream_shares_weights_with_msf_and_projects_for_connectivity() {
    let n = 32;
    let max_w = 16;
    let stream = gen::random_weighted_insert_stream(n, 5, 8, max_w, 7);

    let mut session = Session::new(cfg(n));
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 3));
    let msf = session.register(ExactMsf::new(n));

    let mut all: Vec<WeightedEdge> = Vec::new();
    for batch in &stream.batches {
        session.apply_weighted(batch.iter()).expect("valid stream");
        all.extend(batch.insertions());
        assert_eq!(
            session.get(msf).weight(),
            oracle::msf_weight(n, all.iter().copied()),
            "weight-aware maintainer must see the true weights"
        );
        let labels = oracle::components(n, all.iter().map(|we| we.edge));
        assert_eq!(
            session.get(conn).component_labels(),
            &labels[..],
            "weight-oblivious maintainer sees the projection"
        );
    }
}

/// The acceptance gate: a capacity violation surfaces as
/// `Err(MpcStreamError::Capacity(..))` — never a panic — from every
/// maintainer in the workspace, driven through the unified trait.
#[test]
fn capacity_violation_is_err_from_every_maintainer() {
    let n = 16;
    let mut maintainers: Vec<Box<dyn Maintain>> = vec![
        Box::new(Connectivity::new(n, ConnectivityConfig::default(), 1)),
        Box::new(StreamingConnectivity::new(n, 2)),
        Box::new(RobustConnectivity::new(
            n,
            2,
            4,
            ConnectivityConfig::default(),
            3,
        )),
        Box::new(ExactMsf::new(n)),
        Box::new(ApproxMsfWeight::new(n, 0.5, 8, 4)),
        Box::new(ApproxMsfForest::new(n, 0.5, 8, 5)),
        Box::new(Bipartiteness::new(n, 6)),
        Box::new(MatchingSizeEstimator::new(
            n,
            2.0,
            StreamKind::InsertionOnly,
            7,
        )),
        Box::new(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 8)),
        Box::new(AklyMatching::new(n, 2.0, 9)),
        Box::new(MaximalMatching::new(n)),
        Box::new(DynamicKConn::new(n, 2, 10)),
        Box::new(InsertOnlyKConn::new(n, 2)),
    ];
    // Vertex-dynamic needs active slots before edges are legal.
    let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 11);
    {
        let mut setup = MpcContext::new(cfg(n));
        vd.add_vertices(n, &mut setup).expect("slots available");
    }
    maintainers.push(Box::new(vd));
    assert_eq!(maintainers.len(), 14);

    for m in &mut maintainers {
        let mut ctx = tiny_ctx();
        let err = m
            .apply_batch(&big_batch(), &mut ctx)
            .expect_err(&format!("{}: an 8-update batch cannot fit s = 4", m.name()));
        assert!(
            matches!(err, MpcStreamError::Capacity(_)),
            "{}: expected Capacity, got {err:?}",
            m.name()
        );
    }
}

/// Companion gate: an out-of-range endpoint surfaces as
/// `Err(MpcStreamError::InvalidBatch(..))` from every maintainer —
/// never an index panic.
#[test]
fn out_of_range_endpoint_is_invalid_batch_from_every_maintainer() {
    let n = 16;
    let mut maintainers: Vec<Box<dyn Maintain>> = vec![
        Box::new(Connectivity::new(n, ConnectivityConfig::default(), 1)),
        Box::new(StreamingConnectivity::new(n, 2)),
        Box::new(RobustConnectivity::new(
            n,
            2,
            4,
            ConnectivityConfig::default(),
            3,
        )),
        Box::new(ExactMsf::new(n)),
        Box::new(ApproxMsfWeight::new(n, 0.5, 8, 4)),
        Box::new(ApproxMsfForest::new(n, 0.5, 8, 5)),
        Box::new(Bipartiteness::new(n, 6)),
        Box::new(MatchingSizeEstimator::new(
            n,
            2.0,
            StreamKind::InsertionOnly,
            7,
        )),
        Box::new(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 8)),
        Box::new(AklyMatching::new(n, 2.0, 9)),
        Box::new(MaximalMatching::new(n)),
        Box::new(DynamicKConn::new(n, 2, 10)),
        Box::new(InsertOnlyKConn::new(n, 2)),
        Box::new(VertexDynamicConnectivity::with_capacity(
            n,
            ConnectivityConfig::default(),
            11,
        )),
    ];
    let rogue = Batch::inserting([Edge::new(0, 200)]);
    for m in &mut maintainers {
        let mut ctx = MpcContext::new(cfg(n));
        let err = m
            .apply_batch(&rogue, &mut ctx)
            .expect_err(&format!("{}: endpoint 200 outside [0, {n})", m.name()));
        assert!(
            matches!(err, MpcStreamError::InvalidBatch(_)),
            "{}: expected InvalidBatch, got {err:?}",
            m.name()
        );
    }
}

#[test]
fn unsupported_updates_are_errors_not_panics() {
    let n = 16;
    let deleting = Batch::deleting([Edge::new(0, 1)]);
    let cases: Vec<Box<dyn Maintain>> = vec![
        Box::new(ExactMsf::new(n)),
        Box::new(MatchingSizeEstimator::new(
            n,
            2.0,
            StreamKind::InsertionOnly,
            1,
        )),
        Box::new(InsertOnlyKConn::new(n, 2)),
    ];
    for mut m in cases {
        let mut ctx = MpcContext::new(cfg(n));
        let err = m
            .apply_batch(&deleting, &mut ctx)
            .expect_err(&format!("{} is insertion-only", m.name()));
        assert!(
            matches!(err, MpcStreamError::Unsupported(_)),
            "{}: expected Unsupported, got {err:?}",
            m.name()
        );
    }
}

#[test]
fn session_chunks_normalizes_and_rolls_up() {
    let n = 32;
    let mut session = Session::new(cfg(n)).with_max_batch(4);
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 5));
    session.register(MaximalMatching::new(n));

    // 11 updates, one of which cancels in-submission → 10 survive →
    // 3 chunks × 2 maintainers = 6 reports.
    let e_cancel = Edge::new(30, 31);
    let mut updates: Vec<Update> = (0..10u32)
        .map(|i| Update::Insert(Edge::new(i, i + 1)))
        .collect();
    updates.insert(3, Update::Insert(e_cancel));
    updates.push(Update::Delete(e_cancel));
    let reports = session.apply(updates).expect("valid stream");
    assert_eq!(reports.len(), 6);
    assert_eq!(session.stats().batches, 3);
    assert_eq!(session.stats().updates, 10);
    assert_eq!(session.stats().maintainer_batches, 6);
    let c = session.get(conn);
    assert_eq!(c.live_edge_count(), 10);
    assert!(!c.connected(30, 31));

    // Per-maintainer reports carry the registration names.
    let names: Vec<&str> = reports.iter().map(|r| r.maintainer).collect();
    assert!(names.contains(&"connectivity") && names.contains(&"matching-maximal"));
}

#[test]
fn reweight_pair_reaches_weight_aware_maintainers() {
    // Delete(w=5) + Insert(w=9) of the same edge in one submission is
    // a reweight: normalization must forward both, not cancel them.
    let n = 16;
    let mut session = Session::new(cfg(n));
    let aw = session.register(ApproxMsfWeight::new(n, 0.25, 16, 3));
    session
        .apply_weighted([
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(1, 2, 3)),
        ])
        .expect("valid stream");
    session
        .apply_weighted([
            WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
        ])
        .expect("reweight is a legal pair");
    let est = session.get(aw).weight_estimate();
    assert!(
        (12.0..=12.0 * 1.25 + 1e-6).contains(&est),
        "estimate {est} must reflect the reweighted 9 + 3"
    );
}

#[test]
fn duplicate_insert_keeps_set_semantics_through_session() {
    // A doubled insert reaches the maintainer (set-semantic here):
    // the edge must be present, not cancelled away by the session.
    let n = 8;
    let e = Edge::new(0, 1);
    let mut session = Session::new(cfg(n));
    let mm = session.register(MaximalMatching::new(n));
    session
        .apply([Update::Insert(e), Update::Insert(e)])
        .expect("duplicates are set-semantic for the matcher");
    assert_eq!(session.get(mm).edge_count(), 1);
}

#[test]
fn kconn_pair_in_one_session_agrees_on_min_cut() {
    let n = 24;
    let mut session = Session::new(cfg(n));
    let dy = session.register(DynamicKConn::new(n, 2, 21));
    let io = session.register(InsertOnlyKConn::new(n, 2));
    // A cycle: 2-edge-connected.
    let cycle: Vec<Update> = (0..n as u32)
        .map(|i| Update::Insert(Edge::new(i, (i + 1) % n as u32)))
        .collect();
    session.apply(cycle).expect("insert-only stream");
    let io_cut = session.get(io).certificate().min_cut();
    assert_eq!(io_cut, MinCut::AtLeast(2));
    // The dynamic maintainer answers by peeling on the shared ctx.
    let mut peel_ctx = MpcContext::new(cfg(n));
    let dy_cut = session.get(dy).certificate(&mut peel_ctx).min_cut();
    assert_eq!(dy_cut, MinCut::AtLeast(2));
}
