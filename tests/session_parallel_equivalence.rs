//! Serial-equivalence harness for the parallel `Session` executor:
//! the worker count is an *execution* knob, never an *observable* one.
//! Every scenario below runs the same seeded pipeline at 1, 2, 4, and
//! 8 workers and demands bit-identical batch reports, query answers,
//! receipts, and rolled-up `SessionStats` — the accounting contract
//! the executor's fork/replay scheme exists to keep ("replaying each
//! branch's event log on the master reproduces the serial charges
//! exactly").

use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::update::Update;
use mpc_stream::prelude::*;
use std::collections::BTreeSet;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(n: usize) -> MpcConfig {
    MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 16)
        .build()
}

/// Everything a run can observe: per-apply batch reports, per-query
/// fan-out answers with their receipts, and the final rollup.
type Observables = (
    Vec<Vec<BatchReport>>,
    Vec<Vec<(MaintainerId, QueryResponse)>>,
    Vec<Vec<QueryReport>>,
    SessionStats,
);

fn observe(session: &mut Session, batches: &[Batch], queries: &[QueryRequest]) -> Observables {
    let mut reports = Vec::new();
    for batch in batches {
        reports.push(session.apply_batch(batch).expect("stream in regime"));
    }
    let mut answers = Vec::new();
    let mut receipts = Vec::new();
    for q in queries {
        answers.push(session.ask_all(q).expect("fan-out answers"));
        receipts.push(session.query_reports().to_vec());
    }
    session.validate_all().expect("invariants hold");
    (reports, answers, receipts, session.stats().clone())
}

/// All sixteen maintainer kinds on one insert-only stream (the widest
/// vocabulary every kind accepts), asked every query in the plane's
/// vocabulary. One registration function keeps the twins identical.
fn full_roster_run(workers: usize) -> Observables {
    let n = 24usize;
    let mut session = Session::new(cfg(n)).with_workers(workers);
    session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
    session.register(StreamingConnectivity::new(n, 2));
    session.register(RobustConnectivity::new(
        n,
        2,
        4,
        ConnectivityConfig::default(),
        3,
    ));
    let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 4);
    {
        let mut setup = MpcContext::new(cfg(n));
        vd.add_vertices(n, &mut setup).expect("slots available");
    }
    session.register(vd);
    session.register(ExactMsf::new(n));
    session.register(ApproxMsfWeight::new(n, 0.5, 4, 5));
    session.register(ApproxMsfForest::new(n, 0.5, 4, 6));
    session.register(Bipartiteness::new(n, 7));
    session.register(MatchingSizeEstimator::new(
        n,
        2.0,
        StreamKind::InsertionOnly,
        8,
    ));
    session.register(MatchingSizeEstimator::new(n, 2.0, StreamKind::Dynamic, 9));
    session.register(AklyMatching::new(n, 2.0, 10));
    session.register(MaximalMatching::new(n));
    session.register(DynamicKConn::new(n, 2, 11));
    session.register(InsertOnlyKConn::new(n, 2));
    session.register(AgmBaseline::new(n, 12));
    session.register(FullMemoryBaseline::new(n));
    assert_eq!(session.maintainer_count(), 16);
    assert_eq!(session.workers(), workers);

    let stream = gen::random_insert_stream(n, 6, 10, 0x9A11);
    let queries = [
        QueryRequest::Connected(0, n as u32 - 1),
        QueryRequest::ComponentOf(3),
        QueryRequest::ComponentCount,
        QueryRequest::SpanningForest,
        QueryRequest::ForestWeight,
        QueryRequest::IsBipartite,
        QueryRequest::MatchingSize,
        QueryRequest::MatchingEdges,
        QueryRequest::MinCutLowerBound,
    ];
    observe(&mut session, &stream.batches, &queries)
}

#[test]
fn full_roster_is_bit_identical_at_every_worker_count() {
    let serial = full_roster_run(1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            full_roster_run(*workers),
            serial,
            "{workers}-worker execution diverged from serial"
        );
    }
}

/// The dynamic subset under a mixed insert/delete stream: deletions
/// exercise sketch recovery and rematch control flow, the paths where
/// a data race or replay gap would actually change an answer.
fn dynamic_roster_run(workers: usize) -> Observables {
    let n = 32usize;
    let mut session = Session::new(cfg(n)).with_workers(workers);
    session.register(Connectivity::new(n, ConnectivityConfig::default(), 21));
    session.register(AklyMatching::new(n, 2.0, 22));
    session.register(DynamicKConn::new(n, 2, 23));
    session.register(AgmBaseline::new(n, 24));
    session.register(FullMemoryBaseline::new(n));

    let stream = gen::random_mixed_stream(n, 8, 10, 0.65, 0xD11);
    let queries = [
        QueryRequest::Connected(1, n as u32 - 2),
        QueryRequest::ComponentCount,
        QueryRequest::MatchingSize,
        QueryRequest::MinCutLowerBound,
    ];
    observe(&mut session, &stream.batches, &queries)
}

#[test]
fn dynamic_roster_with_deletions_is_bit_identical_at_every_worker_count() {
    let serial = dynamic_roster_run(1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            dynamic_roster_run(*workers),
            serial,
            "{workers}-worker execution diverged from serial"
        );
    }
}

/// The weighted front door (`apply_weighted`) through the same
/// pipeline: the MSF family sees weights, and the pipelined chunker
/// must hand workers the same weighted chunks the serial path built.
type WeightedObservables = (
    Vec<Vec<BatchReport>>,
    Vec<(MaintainerId, QueryResponse)>,
    SessionStats,
);

fn weighted_roster_run(workers: usize) -> WeightedObservables {
    let n = 24usize;
    let mut session = Session::new(cfg(n)).with_workers(workers);
    session.register(ExactMsf::new(n));
    session.register(ApproxMsfWeight::new(n, 0.5, 4, 31));
    session.register(ApproxMsfForest::new(n, 0.5, 4, 32));

    let stream = gen::random_weighted_insert_stream(n, 5, 9, 64, 0x3E1);
    let mut reports = Vec::new();
    for batch in &stream.batches {
        reports.push(
            session
                .apply_weighted(batch.iter())
                .expect("insert-only weighted stream"),
        );
    }
    let answers = session
        .ask_all(&QueryRequest::ForestWeight)
        .expect("weights answered");
    session.validate_all().expect("invariants hold");
    (reports, answers, session.stats().clone())
}

#[test]
fn weighted_roster_is_bit_identical_at_every_worker_count() {
    let serial = weighted_roster_run(1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            weighted_roster_run(*workers),
            serial,
            "{workers}-worker weighted execution diverged from serial"
        );
    }
}

/// Splitmix-style step for the stress schedule — the test owns its
/// randomness so the interleaving reproduces from the literal seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concurrency stress: thousands of randomly interleaved tiny ingests
/// and `ask_all` fan-outs across three maintainers, executed twice —
/// serially and on a 4-worker pool — step by step. Every answer and
/// the final stats must stay locked together (no drift), nothing may
/// panic, and dropping the parallel session must join its pool
/// cleanly (a leaked worker would hang the test binary at exit).
#[test]
fn randomized_interleaving_never_drifts_from_serial() {
    let n = 12usize;
    let build = |workers: usize| {
        let mut s = Session::new(cfg(n)).with_workers(workers);
        s.register(Connectivity::new(n, ConnectivityConfig::default(), 41));
        s.register(AgmBaseline::new(n, 42));
        s.register(FullMemoryBaseline::new(n));
        s
    };
    let mut serial = build(1);
    let mut pooled = build(4);

    let mut rng = 0x57E55u64;
    let mut live: BTreeSet<Edge> = BTreeSet::new();
    let queries = [
        QueryRequest::ComponentCount,
        QueryRequest::Connected(0, n as u32 - 1),
        QueryRequest::ComponentOf(5),
    ];
    let mut asked = 0u32;
    for step in 0..2500u32 {
        let roll = next(&mut rng);
        if roll % 10 < 6 {
            // Ingest a small valid batch: inserts of absent edges,
            // deletions of live ones, all simple-graph legal.
            let mut ops = Vec::new();
            for _ in 0..(1 + next(&mut rng) % 3) {
                let a = (next(&mut rng) % n as u64) as u32;
                let b = (next(&mut rng) % n as u64) as u32;
                if a == b {
                    continue;
                }
                let e = Edge::new(a, b);
                if live.insert(e) {
                    ops.push(Update::Insert(e));
                } else if next(&mut rng).is_multiple_of(2) {
                    live.remove(&e);
                    ops.push(Update::Delete(e));
                }
            }
            let a = serial.apply(ops.iter().copied()).expect("legal batch");
            let b = pooled.apply(ops.iter().copied()).expect("legal batch");
            assert_eq!(a, b, "ingest reports drifted at step {step}");
        } else {
            let q = &queries[(roll % 3) as usize];
            let a = serial.ask_all(q).expect("all three answer");
            let b = pooled.ask_all(q).expect("all three answer");
            assert_eq!(a, b, "answers drifted at step {step}");
            assert_eq!(
                serial.query_reports(),
                pooled.query_reports(),
                "receipts drifted at step {step}"
            );
            asked += 1;
        }
    }
    assert!(asked > 500, "schedule degenerated: only {asked} fan-outs");
    assert_eq!(
        serial.stats(),
        pooled.stats(),
        "cumulative stats drifted over the stress schedule"
    );
    // Clean shutdown: dropping the pooled session joins every worker
    // thread; a stuck lane would deadlock right here, inside the test.
    drop(pooled);
    drop(serial);
}
