//! `mpc-stream` — streaming graph algorithms in the Massively
//! Parallel Computation model.
//!
//! A reproduction of *"Streaming Graph Algorithms in the Massively
//! Parallel Computation Model"* (Czumaj, Mishra, Mukherjee,
//! PODC 2024). This facade crate re-exports the whole workspace; see
//! the README for a tour and `examples/` for runnable programs.
//!
//! # Examples
//!
//! ```
//! use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
//! use mpc_stream::graph::ids::Edge;
//! use mpc_stream::graph::update::Batch;
//! use mpc_stream::mpc::{MpcConfig, MpcContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MpcConfig::builder(32, 0.5).local_capacity(1 << 14).build();
//! let mut ctx = MpcContext::new(cfg);
//! let mut conn = Connectivity::new(32, ConnectivityConfig::default(), 1);
//! conn.apply_batch(&Batch::inserting([Edge::new(0, 1)]), &mut ctx)?;
//! assert!(conn.connected(0, 1));
//! # Ok(())
//! # }
//! ```

pub use mpc_baselines as baselines;
pub use mpc_etf as etf;
pub use mpc_graph as graph;
pub use mpc_hashing as hashing;
pub use mpc_kconn as kconn;
pub use mpc_matching as matching;
pub use mpc_msf as msf;
pub use mpc_sim as mpc;
pub use mpc_sketch as sketch;
pub use mpc_stream_core as core_alg;
