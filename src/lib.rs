//! `mpc-stream` — streaming graph algorithms in the Massively
//! Parallel Computation model.
//!
//! A reproduction of *"Streaming Graph Algorithms in the Massively
//! Parallel Computation Model"* (Czumaj, Mishra, Mukherjee,
//! PODC 2024). This facade crate re-exports the whole workspace; see
//! the README for a tour and `examples/` for runnable programs.
//!
//! # The unified driver
//!
//! The paper's point is that *one* harness maintains connectivity,
//! MSF, bipartiteness, matching, and k-edge-connectivity under the
//! same batch/round/memory discipline — and the API says so: every
//! maintainer implements [`prelude::Maintain`], every failure is a
//! [`prelude::MpcStreamError`], and a [`prelude::Session`] drives any
//! set of maintainers over one accounted cluster. Registration
//! returns a typed [`prelude::Handle`], so reads need no downcasts;
//! the [`prelude::QueryRequest`] plane
//! ([`Session::ask`](core_alg::Session::ask) /
//! [`Session::ask_all`](core_alg::Session::ask_all)) charges every
//! answer against the cluster and attributes it in the
//! [`prelude::SessionStats`] per-maintainer breakdown:
//!
//! ```
//! use mpc_stream::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MpcConfig::builder(64, 0.5).local_capacity(1 << 15).build();
//! let mut session = Session::new(cfg);
//! let conn = session.register(Connectivity::new(64, ConnectivityConfig::default(), 1));
//! let bip = session.register(Bipartiteness::new(64, 2));
//!
//! // One stream, fanned to every maintainer in parallel.
//! let reports = session.apply([
//!     Update::Insert(Edge::new(0, 1)),
//!     Update::Insert(Edge::new(1, 2)),
//!     Update::Insert(Edge::new(0, 2)), // odd cycle
//! ])?;
//! assert_eq!(reports.len(), 2); // one per maintainer
//!
//! // Typed handles: inherent reads with no downcast, no Option…
//! assert!(session.get(conn).connected(0, 2));
//! assert!(!session.get(bip).is_bipartite());
//!
//! // …and charged, receipted queries through the typed query plane.
//! let answer = session.ask(conn, &QueryRequest::Connected(0, 2))?;
//! assert_eq!(answer.as_bool(), Some(true));
//! assert!(session.query_reports()[0].rounds > 0);
//!
//! // ask_all cross-checks every maintainer that supports a query —
//! // here both structures count components, and they must agree.
//! let counts = session.ask_all(&QueryRequest::ComponentCount)?;
//! assert_eq!(
//!     counts,
//!     vec![
//!         (conn.id(), QueryResponse::Count(62)),
//!         (bip.id(), QueryResponse::Count(62)),
//!     ]
//! );
//! println!("{}", session.stats().summary());
//! # Ok(())
//! # }
//! ```
//!
//! The per-structure inherent APIs (e.g.
//! [`Connectivity::apply_batch`](core_alg::Connectivity::apply_batch)
//! with its typed [`ConnectivityError`](core_alg::ConnectivityError))
//! remain available for single-maintainer workloads.

#![forbid(unsafe_code)]

pub use mpc_baselines as baselines;
pub use mpc_etf as etf;
pub use mpc_graph as graph;
pub use mpc_hashing as hashing;
pub use mpc_kconn as kconn;
pub use mpc_matching as matching;
pub use mpc_msf as msf;
pub use mpc_sim as mpc;
pub use mpc_sketch as sketch;
pub use mpc_snapshot as snapshot;
pub use mpc_stream_core as core_alg;

/// Everything needed to drive the unified maintainer surface: the
/// [`Session`](mpc_stream_core::Session) engine with its typed
/// [`Handle`](mpc_stream_core::Handle)s and
/// [`QueryRequest`](mpc_stream_core::QueryRequest) /
/// [`QueryResponse`](mpc_stream_core::QueryResponse) query plane, the
/// [`Maintain`](mpc_stream_core::Maintain) trait, the workspace-wide
/// [`MpcStreamError`](mpc_sim::MpcStreamError), all sixteen
/// maintainers, and the graph / cluster vocabulary types.
pub mod prelude {
    pub use mpc_baselines::{AgmBaseline, FullMemoryBaseline};
    pub use mpc_graph::ids::{Edge, VertexId, WeightedEdge};
    pub use mpc_graph::update::{Batch, Update, WeightedBatch, WeightedUpdate};
    pub use mpc_kconn::{Certificate, DynamicKConn, InsertOnlyKConn, KConnError, MinCut};
    pub use mpc_matching::{
        AklyMatching, CappedGreedyMatching, MatchingSizeEstimator, MaximalMatching, StreamKind,
    };
    pub use mpc_msf::{ApproxMsfForest, ApproxMsfWeight, Bipartiteness, ExactMsf, MsfError};
    pub use mpc_sim::{
        BatchReport, MachineGroup, MaintainerStats, MpcConfig, MpcContext, MpcError,
        MpcStreamError, QueryReport, SessionStats,
    };
    pub use mpc_snapshot::SnapshotError;
    pub use mpc_stream_core::{
        CheckpointReceipt, Connectivity, ConnectivityConfig, ConnectivityError, Handle, Maintain,
        MaintainerId, MaintainerRegistry, QueryRequest, QueryResponse, RobustConnectivity, Session,
        StreamingConnectivity, VertexDynamicConnectivity,
    };
}

/// The complete snapshot-loader roster: every maintainer kind the
/// workspace ships, under its [`Maintain::name`] — the registry to
/// hand [`Session::restore`] when a checkpoint may contain any of the
/// sixteen registrations.
///
/// [`Maintain::name`]: mpc_stream_core::Maintain::name
/// [`Session::restore`]: mpc_stream_core::Session::restore
///
/// # Examples
///
/// ```
/// let reg = mpc_stream::full_registry();
/// assert!(reg.loader("connectivity").is_some());
/// assert!(reg.loader("matching-estimator-dynamic").is_some());
/// assert_eq!(reg.names().len(), 16);
/// ```
pub fn full_registry() -> mpc_stream_core::MaintainerRegistry {
    let mut reg = mpc_stream_core::MaintainerRegistry::core();
    mpc_kconn::register_snapshot_loaders(&mut reg);
    mpc_msf::register_snapshot_loaders(&mut reg);
    mpc_matching::register_snapshot_loaders(&mut reg);
    mpc_baselines::register_snapshot_loaders(&mut reg);
    reg
}
