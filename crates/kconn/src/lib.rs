//! k-edge-connectivity in the streaming MPC model.
//!
//! The paper's conclusion (Section 9) singles out `k`-edge
//! connectivity and minimum cut as semi-streaming-feasible problems
//! whose extension to its streaming-MPC model is an open direction.
//! This crate implements that extension with the classical **sparse
//! certificate** technique the corresponding semi-streaming
//! algorithms use (\[AGM12\] Section 3.2): maintain `k` edge-disjoint
//! forests `F_1, …, F_k` where `F_i` is a maximal spanning forest of
//! `G ∖ (F_1 ∪ … ∪ F_{i-1})`. Their union — at most `k(n-1)` edges —
//! preserves every cut of `G` up to size `k`:
//!
//! > for every vertex set `A`,
//! > `|E_cert(A, V∖A)| ≥ min(|E_G(A, V∖A)|, k)`.
//!
//! Consequently `min(λ(G), k) = min(λ(cert), k)` for the edge
//! connectivity `λ`, the certificate decides `j`-edge-connectivity
//! for every `j ≤ k`, and for `k ≥ 2` its bridges are exactly the
//! bridges of `G`.
//!
//! Two maintainers are provided, mirroring the paper's insertion-only
//! vs dynamic split:
//!
//! * [`InsertOnlyKConn`] — the certificate itself is maintained
//!   explicitly under insertion-only batches in `O(1/φ)` rounds per
//!   batch (each new edge cascades to the first forest in which it
//!   does not close a cycle) with `O(kn)` total words. Queries are
//!   free: the certificate is the maintained state.
//! * [`DynamicKConn`] — under arbitrary (insert + delete) batches the
//!   state is `k` independent banks of AGM vertex sketches, updated
//!   in `O(1)` rounds per batch with `Õ(kn)` total words. A
//!   certificate query *peels* forests out of the sketches: layer `i`
//!   clones bank `i`, linearly subtracts the already-extracted
//!   forests `F_1..F_{i-1}`, and runs the Borůvka cascade — `Θ(k log
//!   n)` MPC rounds per query. The gap between the two query costs is
//!   precisely why the paper leaves constant-round dynamic
//!   `k`-connectivity open.
//!
//! # Examples
//!
//! ```
//! use mpc_kconn::{InsertOnlyKConn, MinCut};
//! use mpc_graph::ids::Edge;
//! use mpc_graph::update::Batch;
//! use mpc_sim::{MpcConfig, MpcContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ctx = MpcContext::new(
//!     MpcConfig::builder(8, 0.5).local_capacity(1 << 14).build(),
//! );
//! let mut kc = InsertOnlyKConn::new(8, 3);
//! // A cycle on 8 vertices is 2- but not 3-edge-connected.
//! kc.apply_batch(
//!     &Batch::inserting((0..8).map(|i| Edge::new(i, (i + 1) % 8))),
//!     &mut ctx,
//! )?;
//! let cert = kc.certificate();
//! assert_eq!(cert.is_k_edge_connected(2), Some(true));
//! assert_eq!(cert.is_k_edge_connected(3), Some(false));
//! assert_eq!(cert.min_cut(), MinCut::Exact(2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod certificate;
pub mod dynamic;
pub mod insert_only;

pub use certificate::{Certificate, MinCut};
pub use dynamic::DynamicKConn;
pub use insert_only::{InsertOnlyKConn, KConnError};

/// Registers this crate's snapshot decoders — `kconn-dynamic` and
/// `kconn-insert-only` — into a
/// [`MaintainerRegistry`](mpc_stream_core::MaintainerRegistry).
pub fn register_snapshot_loaders(reg: &mut mpc_stream_core::MaintainerRegistry) {
    use mpc_snapshot::Persist;
    reg.register("kconn-dynamic", |r| Ok(Box::new(DynamicKConn::load(r)?)));
    reg.register("kconn-insert-only", |r| {
        Ok(Box::new(InsertOnlyKConn::load(r)?))
    });
}
