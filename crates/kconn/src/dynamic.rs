//! Sketch-based `k`-edge-connectivity certificate for dynamic
//! (insert + delete) streams.
//!
//! State: `k` independent banks of AGM vertex sketches (`t = Θ(log
//! n)` copies each), updated linearly in `O(1)` rounds per batch —
//! exactly the paper's update path, multiplied by `k`. Total memory
//! `Õ(k·n)` words.
//!
//! A certificate query **peels** (\[AGM12\] Section 3.2): layer `i`
//! clones bank `i`, linearly *subtracts* the already-extracted
//! forests `F_1 ∪ … ∪ F_{i-1}` (sketch linearity, the paper's Remark
//! 3.2, makes this a plain sequence of `delete_edge` updates), and
//! runs the Borůvka cascade to extract a maximal spanning forest of
//! `G ∖ (F_1 ∪ … ∪ F_{i-1})`. The query costs `Θ(k·log n)` MPC rounds
//! — the price of not maintaining the forests explicitly under
//! deletions, and the concrete gap the paper's Section 9 poses as an
//! open problem.

use crate::certificate::Certificate;
use mpc_graph::ids::Edge;
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::Batch;
use mpc_sim::{MpcContext, MpcStreamError};
use mpc_sketch::vertex::EdgeSample;
use mpc_sketch::SketchBank;
use std::collections::BTreeMap;

/// Dynamic-stream `k`-edge-connectivity via sketch peeling.
///
/// # Examples
///
/// ```
/// use mpc_kconn::{DynamicKConn, MinCut};
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::{Batch, Update};
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut kc = DynamicKConn::new(8, 2, 7);
/// // Build a cycle, then delete one edge: 2-edge-connected → bridge
/// // everywhere.
/// kc.apply_batch(
///     &Batch::inserting((0..8).map(|i| Edge::new(i, (i + 1) % 8))),
///     &mut ctx,
/// )?;
/// assert_eq!(kc.certificate(&mut ctx).min_cut(), MinCut::AtLeast(2));
/// kc.apply_batch(&Batch::deleting([Edge::new(0, 7)]), &mut ctx)?;
/// assert_eq!(kc.certificate(&mut ctx).min_cut(), MinCut::Exact(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicKConn {
    n: usize,
    k: usize,
    banks: Vec<SketchBank>,
    last_query_rounds: u64,
}

impl DynamicKConn {
    /// Creates the maintainer for an empty `n`-vertex graph with
    /// resolution `k ≥ 1`, with `Θ(log n)` sketch copies per bank.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1) as usize;
        Self::with_copies(n, k, log_n + 6, seed)
    }

    /// Creates the maintainer with an explicit per-bank copy count
    /// (for ablations; `copies` trades failure probability for
    /// memory).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `copies == 0`.
    pub fn with_copies(n: usize, k: usize, copies: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        DynamicKConn {
            n,
            k,
            banks: (0..k)
                .map(|i| SketchBank::new(n, copies, seed.wrapping_add((i as u64) << 32)))
                .collect(),
            last_query_rounds: 0,
        }
    }

    /// Bootstraps the sketch banks from an arbitrary pre-existing
    /// simple graph (the paper's "pre-computation phase" remark,
    /// Section 1.1): one routing round loads every edge into its
    /// endpoints' shards, which ingest locally.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn from_graph(
        n: usize,
        k: usize,
        seed: u64,
        edges: impl IntoIterator<Item = Edge>,
        ctx: &mut MpcContext,
    ) -> Self {
        let mut kc = DynamicKConn::new(n, k, seed);
        ctx.exchange(1);
        for e in edges {
            assert!((e.v() as usize) < n, "edge {e:?} outside [0, {n})");
            for bank in &mut kc.banks {
                bank.insert_edge(e);
            }
        }
        kc
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The certificate resolution.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sketch copies per bank.
    pub fn copies(&self) -> usize {
        self.banks[0].copies()
    }

    /// Memory footprint in words (`Õ(k·n)`: all `k` sketch banks).
    pub fn words(&self) -> u64 {
        self.banks.iter().map(SketchBank::words).sum()
    }

    /// MPC rounds the most recent [`DynamicKConn::certificate`] call
    /// consumed (`Θ(k·log n)`).
    pub fn last_query_rounds(&self) -> u64 {
        self.last_query_rounds
    }

    /// Updates all `k` banks — `O(1)` rounds per batch, identical to
    /// the paper's sketch-update path. Deletions are the caller's
    /// contract (only live edges), as everywhere in the model.
    ///
    /// # Errors
    ///
    /// * [`MpcStreamError::InvalidBatch`] on an endpoint outside
    ///   `[0, n)` (state unchanged).
    /// * [`MpcStreamError::Capacity`] when the batch cannot fit one
    ///   machine.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        // One routing of the batch to the vertex shards; each shard
        // updates its columns in all k banks locally.
        mpc_stream_core::route_batch(batch, self.n, ctx)?;
        for u in batch.iter() {
            for bank in &mut self.banks {
                if u.is_insert() {
                    bank.insert_edge(u.edge());
                } else {
                    bank.delete_edge(u.edge());
                }
            }
        }
        Ok(())
    }

    /// Extracts a `k`-edge-connectivity certificate of the current
    /// graph by sketch peeling — `Θ(k·log n)` MPC rounds.
    ///
    /// Success is with high probability (each Borůvka level consumes
    /// a fresh sketch copy); [`Certificate::validate`] can be used to
    /// detect the rare failure.
    pub fn certificate(&self, ctx: &mut MpcContext) -> Certificate {
        let mut layers: Vec<Vec<Edge>> = Vec::with_capacity(self.k);
        let mut peeled: Vec<Edge> = Vec::new();
        for bank in &self.banks {
            // Subtract the already-extracted forests: route the O(k·n)
            // peeled edges to the shards, subtract locally.
            let mut residual = bank.clone();
            ctx.sort(2 * peeled.len() as u64 + 1);
            for &e in &peeled {
                residual.delete_edge(e);
            }
            let forest = boruvka_forest(&residual, self.n, ctx);
            peeled.extend(forest.iter().copied());
            layers.push(forest);
        }
        let mut cert = Certificate::from_layers(self.n, layers);
        // In the rare event a sampler stalled early, re-sort the
        // layer edges so the laminar maximality invariant holds (the
        // cut guarantee only needs edge-disjoint maximal forests).
        if cert.validate().is_err() {
            cert = relaminate(self.n, self.k, cert);
        }
        cert
    }

    /// Like [`DynamicKConn::certificate`] but records the consumed
    /// rounds in [`DynamicKConn::last_query_rounds`].
    pub fn certificate_mut(&mut self, ctx: &mut MpcContext) -> Certificate {
        let before = ctx.rounds();
        let cert = self.certificate(ctx);
        self.last_query_rounds = ctx.rounds() - before;
        cert
    }
}

impl mpc_stream_core::Maintain for DynamicKConn {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "kconn-dynamic"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        DynamicKConn::words(self)
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        DynamicKConn::apply_batch(self, batch, ctx)
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(query, QueryRequest::MinCutLowerBound)
    }

    /// The recompute-on-read side of the open problem: a cut query
    /// peels a fresh certificate at its genuine `Θ(k log n)` round
    /// cost (the charge the insert-only cascade's maintained
    /// certificate avoids).
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::MinCutLowerBound => {
                let cert = self.certificate_mut(ctx);
                let (lower, exact) = match cert.min_cut() {
                    crate::MinCut::Exact(v) => (v, true),
                    crate::MinCut::AtLeast(v) => (v, false),
                };
                Ok(QueryResponse::MinCut { lower, exact })
            }
            _ => Err(mpc_stream_core::unsupported_query("kconn-dynamic", query)),
        }
    }
}

/// Extracts a maximal spanning forest from a sketch bank with the
/// Borůvka cascade: one sketch copy per level, one converge-cast +
/// sort + broadcast per level.
fn boruvka_forest(bank: &SketchBank, n: usize, ctx: &mut MpcContext) -> Vec<Edge> {
    let mut uf = UnionFind::new(n);
    let mut forest = Vec::new();
    let sketch_words = bank.words_per_vertex() / bank.copies().max(1) as u64;
    let mut scratch = bank.new_scratch();
    for level in 0..bank.copies() {
        if uf.component_count() == 1 {
            break;
        }
        ctx.converge_cast(n as u64, sketch_words);
        // BTreeMap: deterministic iteration keeps the whole peel
        // reproducible from the seeds (DESIGN.md determinism rule).
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for v in 0..n as u32 {
            groups.entry(uf.find(v)).or_default().push(v);
        }
        let mut found: Vec<Edge> = Vec::new();
        let mut any_failed = false;
        for (_, members) in groups {
            scratch.reset(level);
            // A group with no materialized member has the zero
            // sketch: an empty cut — nothing found, nothing failed.
            // Host-parallel column merge (bit-identical; see
            // SketchArena::merge_into_stealing).
            if bank.merge_copy_into_stealing(&members, &mut scratch, ctx.pool()) > 0 {
                match bank.sample_merged(&scratch) {
                    EdgeSample::Edge(e) => found.push(e),
                    EdgeSample::Empty => {}
                    EdgeSample::Fail => any_failed = true,
                }
            }
        }
        ctx.sort(2 * found.len() as u64 + 1);
        ctx.broadcast(2);
        let progressed = !found.is_empty();
        for e in found {
            if uf.union(e.u(), e.v()) {
                forest.push(e);
            }
        }
        // Terminate only on certainty: no component produced an edge
        // and none *failed* — every remaining cut is provably empty.
        // A Fail is a recoverable sampler failure: spend the next
        // (independent) copy on it, as the paper's Section 6.3 copy
        // budget intends.
        if !progressed && !any_failed {
            break;
        }
    }
    forest
}

/// Repairs a certificate whose layers lost laminar maximality to a
/// sampler stall: redistributes the same edge set through the
/// insert-only cascade (coordinator-local; the certificate has
/// `O(k·n)` edges).
fn relaminate(n: usize, k: usize, cert: Certificate) -> Certificate {
    let mut ufs: Vec<UnionFind> = (0..k).map(|_| UnionFind::new(n)).collect();
    let mut layers: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for e in cert.edges() {
        for i in 0..k {
            if ufs[i].union(e.u(), e.v()) {
                layers[i].push(e);
                break;
            }
        }
    }
    Certificate::from_layers(n, layers)
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for DynamicKConn {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_usize(self.k);
        self.banks.save(w);
        w.put_u64(self.last_query_rounds);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let k = r.take_usize()?;
        let banks = Vec::<SketchBank>::load(r)?;
        let last_query_rounds = r.take_u64()?;
        if k == 0 || banks.len() != k {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "dynamic k-connectivity holds {} banks for k = {k}",
                banks.len()
            )));
        }
        Ok(DynamicKConn {
            n,
            k,
            banks,
            last_query_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::cuts;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(64, 0.5).local_capacity(1 << 15).build())
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn empty_graph_yields_empty_certificate() {
        let mut c = ctx();
        let kc = DynamicKConn::new(8, 2, 1);
        let cert = kc.certificate(&mut c);
        assert_eq!(cert.edge_count(), 0);
        assert_eq!(cert.k(), 2);
        assert_eq!(cert.is_k_edge_connected(1), Some(false));
    }

    #[test]
    fn cycle_certificate_is_exact() {
        let n = 12u32;
        let mut c = ctx();
        let mut kc = DynamicKConn::new(n as usize, 3, 21);
        kc.apply_batch(&Batch::inserting((0..n).map(|i| e(i, (i + 1) % n))), &mut c)
            .expect("valid stream");
        let cert = kc.certificate(&mut c);
        assert_eq!(cert.validate(), Ok(()));
        assert_eq!(cert.min_cut(), crate::MinCut::Exact(2));
    }

    #[test]
    fn deletion_is_reflected_in_the_next_query() {
        let n = 10u32;
        let mut c = ctx();
        let mut kc = DynamicKConn::new(n as usize, 2, 5);
        kc.apply_batch(&Batch::inserting((0..n).map(|i| e(i, (i + 1) % n))), &mut c)
            .expect("valid stream");
        assert_eq!(kc.certificate(&mut c).is_k_edge_connected(2), Some(true));
        kc.apply_batch(&Batch::deleting([e(3, 4)]), &mut c)
            .expect("valid stream");
        let cert = kc.certificate(&mut c);
        assert_eq!(cert.is_k_edge_connected(2), Some(false));
        assert_eq!(cert.is_k_edge_connected(1), Some(true));
        assert_eq!(
            cert.bridges(),
            Some(cuts::bridges(
                n as usize,
                &(0..n)
                    .map(|i| e(i, (i + 1) % n))
                    .filter(|ed| *ed != e(3, 4))
                    .collect::<Vec<_>>(),
            ))
        );
    }

    #[test]
    fn peeled_certificate_matches_oracle_on_random_dynamic_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(777);
        for trial in 0..10 {
            let n = rng.gen_range(6..14usize);
            let k = rng.gen_range(1..4usize);
            let mut c = ctx();
            let mut kc = DynamicKConn::new(n, k, trial as u64 * 31 + 1);
            let mut live: Vec<Edge> = Vec::new();
            // Three phases: insert, mixed, delete.
            for phase in 0..3 {
                let mut batch = Batch::new();
                for _ in 0..6 {
                    let del = phase == 2 || (phase == 1 && rng.gen_bool(0.4));
                    if del && !live.is_empty() {
                        let i = rng.gen_range(0..live.len());
                        let ed = live.swap_remove(i);
                        batch.push(mpc_graph::update::Update::Delete(ed));
                    } else {
                        let a = rng.gen_range(0..n as u32);
                        let b = rng.gen_range(0..n as u32);
                        if a == b {
                            continue;
                        }
                        let ed = e(a, b);
                        if live.contains(&ed) {
                            continue;
                        }
                        live.push(ed);
                        batch.push(mpc_graph::update::Update::Insert(ed));
                    }
                }
                kc.apply_batch(&batch, &mut c).expect("valid stream");
                let cert = kc.certificate(&mut c);
                let lambda_g = cuts::edge_connectivity(n, &live);
                let lambda_c = cuts::edge_connectivity(n, &cert.edges());
                assert_eq!(
                    lambda_g.min(k as u64),
                    lambda_c.min(k as u64),
                    "trial {trial} phase {phase}: n={n} k={k}"
                );
                // Certificate edges must be live edges.
                for ce in cert.edges() {
                    assert!(live.contains(&ce), "trial {trial}: ghost edge {ce:?}");
                }
            }
        }
    }

    #[test]
    fn query_rounds_grow_with_k() {
        let n = 32u32;
        let mut c = ctx();
        let batch = Batch::inserting((0..n - 1).map(|i| e(i, i + 1)));
        let mut kc1 = DynamicKConn::new(n as usize, 1, 3);
        kc1.apply_batch(&batch, &mut c).expect("valid stream");
        let _ = kc1.certificate_mut(&mut c);
        let r1 = kc1.last_query_rounds();
        let mut kc3 = DynamicKConn::new(n as usize, 3, 3);
        kc3.apply_batch(&batch, &mut c).expect("valid stream");
        let _ = kc3.certificate_mut(&mut c);
        let r3 = kc3.last_query_rounds();
        assert!(r3 > r1, "k=3 query ({r3}) should cost more than k=1 ({r1})");
        assert!(r1 > 0);
    }

    #[test]
    fn words_scale_with_k() {
        let mut c = ctx();
        let batch = Batch::inserting([e(0, 1), e(1, 2)]);
        let mut kc1 = DynamicKConn::new(64, 1, 3);
        kc1.apply_batch(&batch, &mut c).expect("valid stream");
        let mut kc4 = DynamicKConn::new(64, 4, 3);
        kc4.apply_batch(&batch, &mut c).expect("valid stream");
        assert_eq!(kc4.words(), 4 * kc1.words());
        assert_eq!(kc4.copies(), kc1.copies());
        assert_eq!(kc4.k(), 4);
        assert_eq!(kc4.vertex_count(), 64);
    }

    #[test]
    fn with_copies_controls_memory() {
        let mut a = DynamicKConn::with_copies(32, 2, 2, 1);
        let mut b = DynamicKConn::with_copies(32, 2, 8, 1);
        let mut c = ctx();
        let batch = Batch::inserting([e(0, 1)]);
        a.apply_batch(&batch, &mut c).expect("valid stream");
        b.apply_batch(&batch, &mut c).expect("valid stream");
        assert!(b.words() > a.words());
        assert_eq!(a.copies(), 2);
    }

    #[test]
    fn from_graph_bootstrap_then_dynamic_updates() {
        let n = 16u32;
        let mut c = ctx();
        let cycle: Vec<Edge> = (0..n).map(|i| e(i, (i + 1) % n)).collect();
        let mut kc = DynamicKConn::from_graph(n as usize, 2, 8, cycle.iter().copied(), &mut c);
        assert_eq!(kc.certificate(&mut c).is_k_edge_connected(2), Some(true));
        // Continue dynamically from the bootstrapped state.
        kc.apply_batch(&Batch::deleting([e(0, 1)]), &mut c)
            .expect("valid stream");
        assert_eq!(kc.certificate(&mut c).is_k_edge_connected(2), Some(false));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_graph_panics_on_out_of_range() {
        let mut c = ctx();
        let _ = DynamicKConn::from_graph(4, 1, 1, [e(0, 9)], &mut c);
    }

    #[test]
    fn relaminate_restores_invariants() {
        // A deliberately broken layering: F_2 crosses F_1 components.
        let broken = Certificate::from_layers(4, vec![vec![e(0, 1)], vec![e(2, 3), e(1, 2)]]);
        assert!(broken.validate().is_err());
        let fixed = relaminate(4, 2, broken);
        assert_eq!(fixed.validate(), Ok(()));
        assert_eq!(fixed.edge_count(), 3);
    }
}
