//! Explicitly maintained `k`-edge-connectivity certificate for
//! insertion-only streams.
//!
//! Each inserted edge **cascades** through the forest layers: it is
//! absorbed by the first layer `F_i` in which its endpoints are in
//! different components, and discarded if every layer already
//! connects them (such an edge crosses no cut of size ≤ `k` that the
//! certificate does not already cover — the classical sparse-
//! certificate argument, see the crate docs).
//!
//! MPC cost per batch of `b ≤ Õ(n^φ)` updates: the batch is sorted to
//! the coordinator (`O(1/φ)` rounds), the cascade runs coordinator-
//! local against the layer component labels (each layer's labels are
//! `n` words, vertex-sharded; the ≤ `2b` touched labels are gathered
//! — legal since `b` fits one machine, the paper's Claim 6.1
//! argument), and the ≤ `b` accepted edges are routed to their
//! layers' shards — `O(1/φ)` rounds and `O(k·b)` communication in
//! total. Total memory is `O(k·n)` words.

use crate::certificate::Certificate;
use mpc_graph::ids::Edge;
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::Batch;
use mpc_sim::{MpcContext, MpcError};

/// Errors from [`InsertOnlyKConn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KConnError {
    /// A deletion appeared in an insertion-only stream.
    DeletionInInsertOnlyStream(Edge),
    /// An inserted edge was already live (the model requires simple
    /// graphs — paper Section 1.2).
    DuplicateInsert(Edge),
    /// An edge endpoint is out of range.
    VertexOutOfRange(Edge, usize),
    /// The MPC simulator rejected the batch (e.g. it does not fit in
    /// one machine's local memory).
    Mpc(MpcError),
}

impl std::fmt::Display for KConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KConnError::DeletionInInsertOnlyStream(e) => {
                write!(f, "deletion of {e:?} in an insertion-only stream")
            }
            KConnError::DuplicateInsert(e) => {
                write!(f, "insertion of already-live edge {e:?}")
            }
            KConnError::VertexOutOfRange(e, n) => {
                write!(f, "edge {e:?} has an endpoint outside [0, {n})")
            }
            KConnError::Mpc(err) => write!(f, "mpc: {err}"),
        }
    }
}

impl std::error::Error for KConnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KConnError::Mpc(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MpcError> for KConnError {
    fn from(err: MpcError) -> Self {
        KConnError::Mpc(err)
    }
}

impl From<KConnError> for mpc_sim::MpcStreamError {
    fn from(e: KConnError) -> Self {
        match e {
            KConnError::Mpc(inner) => mpc_sim::MpcStreamError::Capacity(inner),
            KConnError::DeletionInInsertOnlyStream(edge) => mpc_sim::MpcStreamError::Unsupported(
                format!("deletion of {edge:?} in an insertion-only stream"),
            ),
            KConnError::DuplicateInsert(_) | KConnError::VertexOutOfRange(_, _) => {
                mpc_sim::MpcStreamError::InvalidBatch(e.to_string())
            }
        }
    }
}

/// Insertion-only batch-dynamic `k`-edge-connectivity certificate.
///
/// # Examples
///
/// ```
/// use mpc_kconn::InsertOnlyKConn;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(6, 0.5).local_capacity(1 << 12).build(),
/// );
/// let mut kc = InsertOnlyKConn::new(6, 2);
/// kc.apply_batch(&Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]), &mut ctx)?;
/// // A path is 1- but not 2-edge-connected (once its vertices are
/// // linked at all; isolated vertices keep connectivity at 0).
/// assert_eq!(kc.certificate().min_cut(), mpc_kconn::MinCut::Exact(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InsertOnlyKConn {
    n: usize,
    k: usize,
    /// One union-find per layer, kept incrementally (insertion-only).
    layer_uf: Vec<UnionFind>,
    /// The forest edges per layer.
    layers: Vec<Vec<Edge>>,
    /// Live edges, to reject duplicate insertions.
    live: std::collections::BTreeSet<Edge>,
    /// Edges discarded by the cascade (count only; they are *not*
    /// stored — that is the certificate's point).
    discarded: u64,
}

impl InsertOnlyKConn {
    /// Creates the empty certificate maintainer for an `n`-vertex
    /// graph with resolution `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        InsertOnlyKConn {
            n,
            k,
            layer_uf: (0..k).map(|_| UnionFind::new(n)).collect(),
            layers: vec![Vec::new(); k],
            live: std::collections::BTreeSet::new(),
            discarded: 0,
        }
    }

    /// Bootstraps the certificate from an arbitrary pre-existing
    /// simple graph (the paper's "pre-computation phase" remark,
    /// Section 1.1): the edges stream through the cascade in
    /// machine-sized chunks, costing `O((m/s)·(1/φ))` rounds once,
    /// after which updates proceed batch-dynamically.
    ///
    /// # Errors
    ///
    /// Same contract as [`InsertOnlyKConn::apply_batch`] (duplicate or
    /// out-of-range edges are rejected).
    pub fn from_graph(
        n: usize,
        k: usize,
        edges: impl IntoIterator<Item = Edge>,
        ctx: &mut MpcContext,
    ) -> Result<Self, KConnError> {
        let mut kc = InsertOnlyKConn::new(n, k);
        let chunk = (ctx.config().local_capacity() / 4).max(1) as usize;
        let all: Vec<Edge> = edges.into_iter().collect();
        for ch in all.chunks(chunk) {
            kc.apply_batch(&Batch::inserting(ch.iter().copied()), ctx)?;
        }
        Ok(kc)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The certificate resolution.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total certificate edges currently stored.
    pub fn edge_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Edges the cascade discarded so far (inserted but not stored).
    pub fn discarded_count(&self) -> u64 {
        self.discarded
    }

    /// Memory footprint in words: `k` component-label arrays plus the
    /// stored forests plus the live-edge membership (the latter is
    /// `O(m)` in this simple implementation — see
    /// [`InsertOnlyKConn::words_model`] for the model-relevant
    /// number).
    pub fn words(&self) -> u64 {
        self.words_model() + 2 * self.live.len() as u64
    }

    /// Memory footprint in words of the *model-relevant* state: the
    /// `k` label arrays and the certificate edges — `O(k·n)`. The
    /// duplicate-insert guard (`live`) exists only to validate the
    /// simple-graph assumption and is excluded, matching the paper's
    /// convention that input validation is the stream's contract.
    pub fn words_model(&self) -> u64 {
        (self.k * self.n) as u64 + 2 * self.edge_count() as u64
    }

    /// The maintained certificate (clones the layers).
    pub fn certificate(&self) -> Certificate {
        Certificate::from_layers(self.n, self.layers.clone())
    }

    /// The first layer `F_1` — a maximal spanning forest of the
    /// current graph (so `k = 1` reproduces exactly the paper's
    /// insertion-only spanning-forest maintenance).
    pub fn spanning_forest(&self) -> &[Edge] {
        &self.layers[0]
    }

    /// Processes a batch of edge insertions in `O(1/φ)` rounds.
    ///
    /// # Errors
    ///
    /// Rejects deletions, duplicate or out-of-range insertions, and
    /// batches the simulator cannot gather to one machine. On error
    /// the state is unchanged (validation happens before mutation).
    pub fn apply_batch(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), KConnError> {
        // Validate before mutating.
        let mut fresh = std::collections::BTreeSet::new();
        for u in batch.iter() {
            if !u.is_insert() {
                return Err(KConnError::DeletionInInsertOnlyStream(u.edge()));
            }
            let e = u.edge();
            if e.u() as usize >= self.n || e.v() as usize >= self.n {
                return Err(KConnError::VertexOutOfRange(e, self.n));
            }
            if self.live.contains(&e) || !fresh.insert(e) {
                return Err(KConnError::DuplicateInsert(e));
            }
        }
        let b = batch.len() as u64;
        // Route the update batch to the coordinator (sort-based,
        // O(1/φ) rounds) and gather it — the hard `s`-word gate.
        ctx.sort(2 * b + 1);
        ctx.gather(2 * b)?;
        // Gather the ≤ 2b touched component labels per layer.
        ctx.exchange(2 * b * self.k as u64);
        // Cascade at the coordinator.
        let mut accepted: u64 = 0;
        for u in batch.iter() {
            let e = u.edge();
            self.live.insert(e);
            let mut placed = false;
            for i in 0..self.k {
                if self.layer_uf[i].union(e.u(), e.v()) {
                    self.layers[i].push(e);
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.discarded += 1;
            } else {
                accepted += 1;
            }
        }
        // Route accepted edges to their layer shards and refresh the
        // affected component labels.
        ctx.sort(2 * accepted + 1);
        ctx.broadcast(2);
        Ok(())
    }
}

impl mpc_stream_core::Maintain for InsertOnlyKConn {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "kconn-insert-only"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        InsertOnlyKConn::words(self)
    }

    fn validate(&self) -> Result<(), mpc_sim::MpcStreamError> {
        self.certificate()
            .validate()
            .map_err(mpc_sim::MpcStreamError::Internal)
    }

    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        InsertOnlyKConn::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::MinCutLowerBound | QueryRequest::SpanningForest
        )
    }

    /// The certificate is maintained by the cascade, so cut answers
    /// cost only gathering the `O(k·n)`-edge certificate to read off
    /// the bound — constant rounds, against the dynamic peeler's
    /// `Θ(k log n)` (the measured shape of the Section 9 open
    /// problem).
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::MinCutLowerBound => {
                let cert = self.certificate();
                ctx.sort(2 * cert.edge_count() as u64 + 1);
                ctx.broadcast(1);
                let (lower, exact) = match cert.min_cut() {
                    crate::MinCut::Exact(v) => (v, true),
                    crate::MinCut::AtLeast(v) => (v, false),
                };
                Ok(QueryResponse::MinCut { lower, exact })
            }
            QueryRequest::SpanningForest => {
                let forest = self.spanning_forest().to_vec();
                ctx.sort(2 * forest.len() as u64 + 1);
                Ok(QueryResponse::Edges(forest))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                "kconn-insert-only",
                query,
            )),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for InsertOnlyKConn {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_usize(self.k);
        self.layer_uf.save(w);
        self.layers.save(w);
        self.live.save(w);
        w.put_u64(self.discarded);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let k = r.take_usize()?;
        let layer_uf = Vec::<UnionFind>::load(r)?;
        let layers = Vec::<Vec<Edge>>::load(r)?;
        let live = std::collections::BTreeSet::<Edge>::load(r)?;
        let discarded = r.take_u64()?;
        if k == 0 || layer_uf.len() != k || layers.len() != k {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "insert-only k-connectivity holds {}/{} layers for k = {k}",
                layer_uf.len(),
                layers.len()
            )));
        }
        Ok(InsertOnlyKConn {
            n,
            k,
            layer_uf,
            layers,
            live,
            discarded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::cuts;
    use mpc_graph::update::Update;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(32, 0.5).local_capacity(1 << 14).build())
    }

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn cascade_places_edges_in_first_open_layer() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(3, 2);
        kc.apply_batch(&Batch::inserting([e(0, 1), e(1, 2), e(0, 2)]), &mut c)
            .unwrap();
        let cert = kc.certificate();
        assert_eq!(cert.layers()[0], vec![e(0, 1), e(1, 2)]);
        assert_eq!(cert.layers()[1], vec![e(0, 2)]);
        assert_eq!(kc.discarded_count(), 0);
        assert_eq!(cert.validate(), Ok(()));
    }

    #[test]
    fn saturated_layers_discard() {
        // K4 has 6 edges; with k = 1 only a spanning tree (3) stays.
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(4, 1);
        let mut all = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                all.push(e(a, b));
            }
        }
        kc.apply_batch(&Batch::inserting(all), &mut c).unwrap();
        assert_eq!(kc.edge_count(), 3);
        assert_eq!(kc.discarded_count(), 3);
    }

    #[test]
    fn certificate_decides_connectivity_of_cycle() {
        let n = 10u32;
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(n as usize, 3);
        kc.apply_batch(&Batch::inserting((0..n).map(|i| e(i, (i + 1) % n))), &mut c)
            .unwrap();
        let cert = kc.certificate();
        assert_eq!(cert.is_k_edge_connected(1), Some(true));
        assert_eq!(cert.is_k_edge_connected(2), Some(true));
        assert_eq!(cert.is_k_edge_connected(3), Some(false));
        assert_eq!(cert.min_cut(), crate::MinCut::Exact(2));
    }

    #[test]
    fn certificate_cut_matches_oracle_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..25 {
            let n = rng.gen_range(4..16usize);
            let k = rng.gen_range(1..5usize);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.45) {
                        edges.push(e(a, b));
                    }
                }
            }
            let mut c = ctx();
            let mut kc = InsertOnlyKConn::new(n, k);
            // Feed in a few batches to exercise incrementality.
            for chunk in edges.chunks(3) {
                kc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut c)
                    .unwrap();
            }
            let cert = kc.certificate();
            assert_eq!(cert.validate(), Ok(()), "trial {trial}");
            let lambda_g = cuts::edge_connectivity(n, &edges);
            let lambda_c = cuts::edge_connectivity(n, &cert.edges());
            assert_eq!(
                lambda_g.min(k as u64),
                lambda_c.min(k as u64),
                "trial {trial}: n={n} k={k} λ_G={lambda_g} λ_cert={lambda_c}"
            );
            // Bridges agree whenever the certificate can answer.
            if k >= 2 {
                assert_eq!(
                    cert.bridges().unwrap(),
                    cuts::bridges(n, &edges),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn deletion_is_rejected_without_state_change() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(4, 2);
        kc.apply_batch(&Batch::inserting([e(0, 1)]), &mut c)
            .unwrap();
        let err = kc
            .apply_batch(
                &Batch::from_updates(vec![Update::Insert(e(1, 2)), Update::Delete(e(0, 1))]),
                &mut c,
            )
            .unwrap_err();
        assert_eq!(err, KConnError::DeletionInInsertOnlyStream(e(0, 1)));
        // The valid prefix of the failed batch was not applied.
        assert_eq!(kc.edge_count(), 1);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(4, 2);
        kc.apply_batch(&Batch::inserting([e(0, 1)]), &mut c)
            .unwrap();
        assert_eq!(
            kc.apply_batch(&Batch::inserting([e(0, 1)]), &mut c),
            Err(KConnError::DuplicateInsert(e(0, 1)))
        );
        // Duplicate within one batch is also caught.
        assert_eq!(
            kc.apply_batch(&Batch::inserting([e(1, 2), e(1, 2)]), &mut c),
            Err(KConnError::DuplicateInsert(e(1, 2)))
        );
    }

    #[test]
    fn out_of_range_vertex_is_rejected() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(4, 1);
        assert_eq!(
            kc.apply_batch(&Batch::inserting([e(0, 7)]), &mut c),
            Err(KConnError::VertexOutOfRange(e(0, 7), 4))
        );
    }

    #[test]
    fn oversized_batch_hits_the_memory_gate() {
        // Tiny local capacity: the gather must fail.
        let mut c = MpcContext::new(MpcConfig::builder(64, 0.3).local_capacity(8).build());
        let mut kc = InsertOnlyKConn::new(64, 2);
        let batch = Batch::inserting((0..32u32).map(|i| e(i, i + 32)));
        let err = kc.apply_batch(&batch, &mut c).unwrap_err();
        assert!(matches!(err, KConnError::Mpc(_)));
        assert!(err.to_string().contains("mpc"));
    }

    #[test]
    fn spanning_forest_is_first_layer() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(4, 2);
        kc.apply_batch(&Batch::inserting([e(0, 1), e(1, 2), e(0, 2)]), &mut c)
            .unwrap();
        assert_eq!(kc.spanning_forest(), &[e(0, 1), e(1, 2)]);
        use mpc_graph::oracle;
        let labels = oracle::components(4, kc.spanning_forest().iter().copied());
        assert_eq!(labels, vec![0, 0, 0, 3]);
    }

    #[test]
    fn words_scale_with_k_times_n() {
        let mut c = ctx();
        let mut kc = InsertOnlyKConn::new(100, 4);
        kc.apply_batch(&Batch::inserting([e(0, 1)]), &mut c)
            .unwrap();
        assert_eq!(kc.words_model(), 400 + 2);
        assert!(kc.words() >= kc.words_model());
    }

    #[test]
    fn from_graph_bootstrap_equals_incremental() {
        let n = 24;
        let edges: Vec<Edge> = (0..n as u32)
            .flat_map(|i| [e(i, (i + 1) % n as u32), e(i, (i + 3) % n as u32)])
            .collect();
        let mut dedup: Vec<Edge> = Vec::new();
        for ed in edges {
            if !dedup.contains(&ed) {
                dedup.push(ed);
            }
        }
        let mut c = ctx();
        let boot =
            InsertOnlyKConn::from_graph(n, 2, dedup.iter().copied(), &mut c).expect("simple graph");
        let mut inc = InsertOnlyKConn::new(n, 2);
        for ch in dedup.chunks(4) {
            inc.apply_batch(&Batch::inserting(ch.iter().copied()), &mut c)
                .unwrap();
        }
        // Chunking differs, so the layerings may differ — but both
        // certificates preserve the same truncated cut.
        let b = boot.certificate();
        let i = inc.certificate();
        assert_eq!(b.validate(), Ok(()));
        assert_eq!(i.validate(), Ok(()));
        assert_eq!(
            cuts::edge_connectivity(n, &b.edges()).min(2),
            cuts::edge_connectivity(n, &i.edges()).min(2)
        );
    }

    #[test]
    fn from_graph_rejects_invalid_input() {
        let mut c = ctx();
        assert!(InsertOnlyKConn::from_graph(4, 1, [e(0, 9)], &mut c).is_err());
        assert!(InsertOnlyKConn::from_graph(4, 1, [e(0, 1), e(0, 1)], &mut c).is_err());
    }

    #[test]
    fn errors_display_and_source() {
        use std::error::Error;
        let d = KConnError::DeletionInInsertOnlyStream(e(0, 1));
        assert!(d.to_string().contains("deletion"));
        assert!(d.source().is_none());
        let dup = KConnError::DuplicateInsert(e(2, 3));
        assert!(dup.to_string().contains("already-live"));
        let oor = KConnError::VertexOutOfRange(e(0, 9), 4);
        assert!(oor.to_string().contains("outside"));
    }
}
