//! The sparse `k`-edge-connectivity certificate and its query
//! surface.
//!
//! A [`Certificate`] is the layered forest decomposition
//! `F_1, …, F_k` described in the crate docs. It is produced by
//! [`crate::InsertOnlyKConn`] (maintained explicitly) and
//! [`crate::DynamicKConn`] (peeled from sketches at query time), and
//! answers cut questions **up to size `k`** exactly.

use mpc_graph::cuts;
use mpc_graph::ids::Edge;
use mpc_graph::oracle::UnionFind;

/// The answer of [`Certificate::min_cut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinCut {
    /// The global minimum cut of the underlying graph is exactly this
    /// value (it is below the certificate's resolution `k`).
    Exact(u64),
    /// Every cut of the underlying graph has at least `k` edges; the
    /// certificate cannot resolve the cut value further.
    AtLeast(u64),
}

impl std::fmt::Display for MinCut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinCut::Exact(v) => write!(f, "min cut = {v}"),
            MinCut::AtLeast(k) => write!(f, "min cut >= {k}"),
        }
    }
}

/// A `k`-edge-connectivity certificate of an `n`-vertex graph: `k`
/// edge-disjoint forests whose union preserves all cuts up to size
/// `k`.
///
/// # Examples
///
/// ```
/// use mpc_kconn::Certificate;
/// use mpc_graph::ids::Edge;
///
/// // Hand-built certificate of a triangle with k = 2.
/// let cert = Certificate::from_layers(
///     3,
///     vec![
///         vec![Edge::new(0, 1), Edge::new(1, 2)], // F_1: spanning tree
///         vec![Edge::new(0, 2)],                  // F_2: the leftover
///     ],
/// );
/// assert_eq!(cert.edge_count(), 3);
/// assert_eq!(cert.is_k_edge_connected(2), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    n: usize,
    layers: Vec<Vec<Edge>>,
}

impl Certificate {
    /// Wraps explicit forest layers. `layers.len()` becomes `k`.
    ///
    /// The layers are *trusted*; use [`Certificate::validate`] to
    /// check the structural invariants in tests.
    pub fn from_layers(n: usize, layers: Vec<Vec<Edge>>) -> Self {
        Certificate { n, layers }
    }

    /// Number of vertices of the underlying graph.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The certificate's resolution: cuts of size `< k` are preserved
    /// exactly.
    pub fn k(&self) -> usize {
        self.layers.len()
    }

    /// The forest layers `F_1, …, F_k`.
    pub fn layers(&self) -> &[Vec<Edge>] {
        &self.layers
    }

    /// All certificate edges (the union of the layers). The layers
    /// are edge-disjoint, so no deduplication is performed.
    pub fn edges(&self) -> Vec<Edge> {
        self.layers.iter().flatten().copied().collect()
    }

    /// Number of certificate edges; at most `k (n-1)`.
    pub fn edge_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Memory footprint in words (two words per edge).
    pub fn words(&self) -> u64 {
        2 * self.edge_count() as u64
    }

    /// Whether the underlying graph is `j`-edge-connected.
    ///
    /// Returns `None` when `j > k`: the certificate only preserves
    /// cuts up to size `k`, so the question is outside its
    /// resolution.
    pub fn is_k_edge_connected(&self, j: u64) -> Option<bool> {
        if j == 0 {
            return Some(true);
        }
        if j > self.k() as u64 {
            return None;
        }
        Some(cuts::edge_connectivity(self.n, &self.edges()) >= j)
    }

    /// The global minimum cut of the underlying graph, exactly if it
    /// is below `k` and as the lower bound `AtLeast(k)` otherwise.
    pub fn min_cut(&self) -> MinCut {
        let lambda = cuts::edge_connectivity(self.n, &self.edges());
        if lambda < self.k() as u64 {
            MinCut::Exact(lambda)
        } else {
            MinCut::AtLeast(self.k() as u64)
        }
    }

    /// The size of the cut `(A, V∖A)` in the underlying graph,
    /// exactly if it is below `k` and as `AtLeast(k)` otherwise.
    ///
    /// This works for *arbitrary* vertex sets `A` because the
    /// certificate preserves every cut up to size `k`:
    /// `|E_cert(A)| ≥ min(|E_G(A)|, k)` while `E_cert ⊆ E_G`, so the
    /// truncated values coincide. Vertices outside `[0, n)` are
    /// ignored.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpc_kconn::{Certificate, MinCut};
    /// use mpc_graph::ids::Edge;
    ///
    /// let cert = Certificate::from_layers(
    ///     4,
    ///     vec![vec![Edge::new(0, 1), Edge::new(2, 3)], vec![]],
    /// );
    /// assert_eq!(cert.cut_between(&[0, 1]), MinCut::Exact(0));
    /// assert_eq!(cert.cut_between(&[0]), MinCut::Exact(1));
    /// ```
    pub fn cut_between(&self, a: &[u32]) -> MinCut {
        let mut in_a = vec![false; self.n];
        for &v in a {
            if (v as usize) < self.n {
                in_a[v as usize] = true;
            }
        }
        let crossing = self
            .layers
            .iter()
            .flatten()
            .filter(|e| in_a[e.u() as usize] != in_a[e.v() as usize])
            .count() as u64;
        if crossing < self.k() as u64 {
            MinCut::Exact(crossing)
        } else {
            MinCut::AtLeast(self.k() as u64)
        }
    }

    /// The bridges of the underlying graph.
    ///
    /// Returns `None` when `k < 2`: a 1-layer certificate is just a
    /// spanning forest, in which *every* edge looks like a bridge.
    /// For `k ≥ 2` the certificate preserves all cuts of size ≤ 2, so
    /// its bridges coincide with the graph's.
    pub fn bridges(&self) -> Option<Vec<Edge>> {
        if self.k() < 2 {
            return None;
        }
        Some(cuts::bridges(self.n, &self.edges()))
    }

    /// Component labels induced by layer `F_1` (a maximal spanning
    /// forest of the underlying graph): smallest vertex id per
    /// component.
    pub fn component_labels(&self) -> Vec<u32> {
        let mut uf = UnionFind::new(self.n);
        if let Some(first) = self.layers.first() {
            for e in first {
                uf.union(e.u(), e.v());
            }
        }
        let mut min_of = vec![u32::MAX; self.n];
        for v in 0..self.n as u32 {
            let r = uf.find(v) as usize;
            min_of[r] = min_of[r].min(v);
        }
        (0..self.n as u32)
            .map(|v| min_of[uf.find(v) as usize])
            .collect()
    }

    /// Checks the structural invariants: every layer is a forest, the
    /// layers are pairwise edge-disjoint, and each layer connects no
    /// pair that the previous layer left connected-but-unlinked
    /// incorrectly (i.e. layer `i+1` never contains an edge both of
    /// whose endpoints are in *different* components of layer `i` —
    /// such an edge should have been absorbed by layer `i`).
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut uf = UnionFind::new(self.n);
            for e in layer {
                if !seen.insert(*e) {
                    return Err(format!("edge {e:?} appears in two layers (second: F_{i})"));
                }
                if !uf.union(e.u(), e.v()) {
                    return Err(format!("layer F_{i} is not a forest: {e:?} closes a cycle"));
                }
            }
        }
        // Maximality chain: an edge in layer i+1 must close a cycle in
        // layer i (otherwise layer i was not maximal when it arrived;
        // for the insert-only cascade this holds for the *final*
        // forests too, because layer membership only grows).
        for i in 0..self.layers.len().saturating_sub(1) {
            let mut uf = UnionFind::new(self.n);
            for e in &self.layers[i] {
                uf.union(e.u(), e.v());
            }
            for e in &self.layers[i + 1] {
                if !uf.connected(e.u(), e.v()) {
                    return Err(format!(
                        "edge {e:?} in F_{} crosses components of F_{i}",
                        i + 1
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    fn triangle_cert() -> Certificate {
        Certificate::from_layers(3, vec![vec![e(0, 1), e(1, 2)], vec![e(0, 2)]])
    }

    #[test]
    fn accessors_report_shape() {
        let c = triangle_cert();
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.k(), 2);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.words(), 6);
        assert_eq!(c.layers().len(), 2);
        assert_eq!(c.edges().len(), 3);
    }

    #[test]
    fn zero_connectivity_is_always_true() {
        let empty = Certificate::from_layers(4, vec![vec![], vec![]]);
        assert_eq!(empty.is_k_edge_connected(0), Some(true));
        assert_eq!(empty.is_k_edge_connected(1), Some(false));
    }

    #[test]
    fn questions_beyond_resolution_are_refused() {
        let c = triangle_cert();
        assert_eq!(c.is_k_edge_connected(3), None);
        assert_eq!(c.is_k_edge_connected(2), Some(true));
    }

    #[test]
    fn min_cut_exact_below_k() {
        // A path certificate with k = 2: min cut 1 < k, exact.
        let c = Certificate::from_layers(3, vec![vec![e(0, 1), e(1, 2)], vec![]]);
        assert_eq!(c.min_cut(), MinCut::Exact(1));
    }

    #[test]
    fn min_cut_saturates_at_k() {
        let c = triangle_cert();
        assert_eq!(c.min_cut(), MinCut::AtLeast(2));
        assert_eq!(format!("{}", c.min_cut()), "min cut >= 2");
        assert_eq!(format!("{}", MinCut::Exact(1)), "min cut = 1");
    }

    #[test]
    fn bridges_require_k_at_least_two() {
        let k1 = Certificate::from_layers(3, vec![vec![e(0, 1), e(1, 2)]]);
        assert_eq!(k1.bridges(), None);
        let c = triangle_cert();
        assert_eq!(c.bridges(), Some(vec![]));
    }

    #[test]
    fn component_labels_come_from_first_layer() {
        let c = Certificate::from_layers(4, vec![vec![e(0, 1)], vec![]]);
        assert_eq!(c.component_labels(), vec![0, 0, 2, 3]);
        let empty = Certificate::from_layers(2, vec![]);
        assert_eq!(empty.component_labels(), vec![0, 1]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(triangle_cert().validate(), Ok(()));
    }

    #[test]
    fn cut_between_truncates_at_k() {
        let c = triangle_cert(); // triangle, k = 2
                                 // {0} has 2 cut edges = k: saturated.
        assert_eq!(c.cut_between(&[0]), MinCut::AtLeast(2));
        // {0,1,2} = V: empty cut.
        assert_eq!(c.cut_between(&[0, 1, 2]), MinCut::Exact(0));
        assert_eq!(c.cut_between(&[]), MinCut::Exact(0));
        // Out-of-range members are ignored.
        assert_eq!(c.cut_between(&[9]), MinCut::Exact(0));
    }

    #[test]
    fn cut_between_matches_oracle_on_random_graphs() {
        use crate::InsertOnlyKConn;
        use mpc_graph::update::Batch;
        use mpc_sim::{MpcConfig, MpcContext};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        let n = 12usize;
        let k = 3usize;
        for trial in 0..20 {
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.4) {
                        edges.push(e(a, b));
                    }
                }
            }
            let mut ctx =
                MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 14).build());
            let mut kc = InsertOnlyKConn::new(n, k);
            for ch in edges.chunks(4) {
                kc.apply_batch(&Batch::inserting(ch.iter().copied()), &mut ctx)
                    .unwrap();
            }
            let cert = kc.certificate();
            // Random vertex subsets: truncated cut must match G's.
            for _ in 0..10 {
                let a: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                let truth = edges
                    .iter()
                    .filter(|ed| a.contains(&ed.u()) != a.contains(&ed.v()))
                    .count() as u64;
                let expect = if truth < k as u64 {
                    MinCut::Exact(truth)
                } else {
                    MinCut::AtLeast(k as u64)
                };
                assert_eq!(cert.cut_between(&a), expect, "trial {trial} A={a:?}");
            }
        }
    }

    #[test]
    fn validate_rejects_cycle_in_layer() {
        let bad = Certificate::from_layers(3, vec![vec![e(0, 1), e(1, 2), e(0, 2)]]);
        assert!(bad.validate().unwrap_err().contains("not a forest"));
    }

    #[test]
    fn validate_rejects_duplicate_across_layers() {
        let bad = Certificate::from_layers(3, vec![vec![e(0, 1)], vec![e(0, 1)]]);
        assert!(bad.validate().unwrap_err().contains("two layers"));
    }

    #[test]
    fn validate_rejects_cross_component_edge_in_later_layer() {
        // F_1 leaves {2} isolated, yet F_2 links it: F_1 was not
        // maximal.
        let bad = Certificate::from_layers(3, vec![vec![e(0, 1)], vec![e(1, 2)]]);
        assert!(bad.validate().unwrap_err().contains("crosses components"));
    }
}
