//! Experiment runner: regenerates the theorem-level evaluation of the
//! paper (experiments E1–E16, DESIGN.md §5).
//!
//! ```sh
//! cargo run --release -p mpc-bench --bin experiments -- all
//! cargo run --release -p mpc-bench --bin experiments -- e1 e4 e10
//! ```

use mpc_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("# mpc-stream experiment run\n");
    let t0 = Instant::now();
    for id in ids {
        let start = Instant::now();
        let tables = experiments::run(id);
        for table in &tables {
            table.print();
        }
        println!(
            "({id} completed in {:.1}s)\n",
            start.elapsed().as_secs_f64()
        );
    }
    println!("total: {:.1}s", t0.elapsed().as_secs_f64());
}
