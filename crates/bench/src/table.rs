//! Minimal aligned-table printing for experiment output.

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (experiment id + what it shows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("## {}\n\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float to 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // rounds toward nearest
    }
}
