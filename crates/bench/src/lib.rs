//! Experiment harness for the `mpc-stream` reproduction.
//!
//! The paper is a theory paper with no measured tables or figures, so
//! the "evaluation" this crate regenerates is the set of theorem
//! statements (see DESIGN.md §5 for the experiment index). Every
//! function in [`experiments`] reproduces one experiment E1–E16 and
//! returns printable [`table::Table`]s; the `experiments` binary runs
//! them and prints the rows recorded in `EXPERIMENTS.md`:
//!
//! ```sh
//! cargo run --release -p mpc-bench --bin experiments -- all
//! cargo run --release -p mpc-bench --bin experiments -- e1 e4
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

use mpc_sim::{MpcConfig, MpcContext};

/// The experiment cluster configuration: `s = 16·n^φ` words (the
/// constant standing in for the `Õ(·)` polylog slack on local
/// memory — the paper allows batches of `Õ(n^φ)` and each edge costs
/// a few words in the coordinator gathers).
pub fn experiment_context(n: usize, phi: f64) -> MpcContext {
    let s = (16.0 * (n as f64).powf(phi)).ceil() as u64;
    MpcContext::new(MpcConfig::builder(n, phi).local_capacity(s).build())
}

/// Largest batch size the model admits at this configuration
/// (coordinator gathers cost 4 words per update).
pub fn max_batch(ctx: &MpcContext) -> usize {
    (ctx.config().local_capacity() / 4) as usize
}
