//! Experiment E17: the Session-level workload table (the ROADMAP
//! PR-3 follow-up, enabled by the PR-5 typed query plane).
//!
//! One [`Session`] drives five heterogeneous maintainers —
//! connectivity, exact MSF, the matching-size estimator, and both
//! baselines — over one shared insert stream on one accounted
//! cluster, then cross-checks them with `ask_all`. The table reports
//! each maintainer's slice of the new per-maintainer stats breakdown:
//! ingest rounds/words, query rounds/words, and standing state, next
//! to its machine group. The shape to look for is the paper's
//! Section 2.1 asymmetry, measured in one run: the maintained
//! structures answer in `O(1)` rounds while both baselines pay
//! `Θ(log n)` recompute rounds per query, and the full-memory
//! baseline's state grows with `m` while the sketches stay `Õ(n)`.

use crate::table::Table;
use mpc_baselines::{AgmBaseline, FullMemoryBaseline};
use mpc_graph::gen;
use mpc_graph::oracle;
use mpc_matching::{MatchingSizeEstimator, StreamKind};
use mpc_msf::ExactMsf;
use mpc_sim::MpcConfig;
use mpc_stream_core::{Connectivity, ConnectivityConfig, QueryRequest, Session};

/// E17 — one session, five maintainers, one charged query plane.
///
/// Shape expectations: all connectivity-capable maintainers agree
/// with the union-find oracle through `ask_all`; maintained answers
/// cost `O(1)` rounds vs the baselines' `Θ(log n)`; the breakdown's
/// state column shows `Õ(n)` sketches vs the `Θ(n+m)` edge store.
pub fn e17_session_workload() -> Vec<Table> {
    let mut t = Table::new(
        "E17 (Session workload): per-maintainer ingest/query/state breakdown, one ask_all cross-check",
        &[
            "n",
            "maintainer",
            "group",
            "batches",
            "ingest rounds",
            "ingest words",
            "queries",
            "query rounds",
            "query words",
            "state words",
            "verdict",
        ],
    );
    for &n in &[64usize, 128] {
        let s = (16.0 * (n as f64).sqrt()).ceil() as u64;
        // Five maintainers share the cluster: provision five groups,
        // each the size a single-maintainer default would get.
        let base = MpcConfig::builder(n, 0.5).local_capacity(s).build();
        let cfg = MpcConfig::builder(n, 0.5)
            .local_capacity(s)
            .machines(5 * base.machines())
            .build();
        let mut session = Session::new(cfg);
        let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 0xE17));
        let msf = session.register(ExactMsf::new(n));
        let est = session.register(MatchingSizeEstimator::new(
            n,
            2.0,
            StreamKind::InsertionOnly,
            0xE17,
        ));
        let agm = session.register(AgmBaseline::new(n, 0xE17));
        let full = session.register(FullMemoryBaseline::new(n));

        // One shared insert-only stream (the exact MSF and the
        // insertion-only estimator both accept it).
        let stream = gen::random_insert_stream(n, 6, 12, 0xE17 + n as u64);
        let mut live = Vec::new();
        for batch in &stream.batches {
            session.apply_batch(batch).expect("insert-only stream");
            live.extend(batch.insertions());
        }

        // The cross-check: one fan-out per question, answers compared
        // against the sequential oracles.
        let labels = oracle::components(n, live.iter().copied());
        let cc = mpc_stream_core::canonical_component_count(&labels);
        let counts = session
            .ask_all(&QueryRequest::ComponentCount)
            .expect("fan-out");
        let cc_ids = [conn.id(), msf.id(), agm.id(), full.id()];
        let cc_ok = counts.len() == cc_ids.len()
            && counts
                .iter()
                .zip(&cc_ids)
                .all(|((id, a), want)| id == want && a.as_count() == Some(cc));
        let weights = session
            .ask_all(&QueryRequest::ForestWeight)
            .expect("fan-out");
        // Unit weights through the unweighted fan-out: MSF weight is
        // n − cc.
        let w_ok = weights.len() == 1
            && weights[0].0 == msf.id()
            && weights[0].1.as_weight() == Some((n as u64 - cc) as f64);
        let sizes = session
            .ask_all(&QueryRequest::MatchingSize)
            .expect("fan-out");
        let opt = oracle::maximum_matching_size(n, &live) as u64;
        // O(α) estimator at α = 2 on a sampled subgraph: the same
        // generous two-sided window as E9 (an estimate of 0 on a
        // matchable graph is a divergence, not a pass).
        let est_ok = sizes.len() == 1
            && sizes[0].0 == est.id()
            && sizes[0]
                .1
                .as_count()
                .is_some_and(|e| 16 * e >= opt && e <= 8 * opt.max(1));

        for (id, m) in session.stats().per_maintainer.iter().enumerate() {
            let verdict = match m.name {
                "connectivity" | "agm-baseline" | "fullmem-baseline" => {
                    if cc_ok {
                        "cc oracle-exact"
                    } else {
                        "DIVERGED"
                    }
                }
                "msf-exact" => {
                    if cc_ok && w_ok {
                        "cc+weight exact"
                    } else {
                        "DIVERGED"
                    }
                }
                _ => {
                    if est_ok {
                        "within O(α)"
                    } else {
                        "DIVERGED"
                    }
                }
            };
            t.row(vec![
                n.to_string(),
                m.name.to_string(),
                session.machine_group(id).expect("registered").to_string(),
                m.batches.to_string(),
                m.rounds.to_string(),
                m.words.to_string(),
                m.queries.to_string(),
                m.query_rounds.to_string(),
                m.query_words.to_string(),
                m.state_words.to_string(),
                verdict.into(),
            ]);
        }
    }
    vec![t]
}
