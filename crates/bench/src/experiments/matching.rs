//! Experiments E7–E9: the matching theorems (8.1, 8.2, 8.5, 8.6).

use crate::experiment_context;
use crate::table::{f2, Table};
use mpc_graph::gen;
use mpc_graph::ids::Edge;
use mpc_graph::oracle;
use mpc_matching::{AklyMatching, CappedGreedyMatching, MatchingSizeEstimator, StreamKind};

/// E7 — Theorem 8.1 / Corollary 1.4: insertion-only `O(α)` matching
/// with `Õ(n/α)` memory.
pub fn e7_insertion_matching() -> Vec<Table> {
    let mut t = Table::new(
        "E7 (Thm 8.1): insertion-only capped-greedy matching",
        &[
            "n",
            "alpha",
            "OPT",
            "|M|",
            "ratio OPT/|M|",
            "words",
            "n/alpha",
            "mean rounds",
        ],
    );
    for alpha in [1.0f64, 2.0, 4.0, 8.0] {
        let planted = 256usize;
        let (stream, opt) = gen::planted_matching_stream(planted, 256, 64, 0xE7);
        let n = stream.n;
        let mut ctx = experiment_context(n, 0.5);
        let mut m = CappedGreedyMatching::for_alpha(n, alpha);
        let mut rounds = 0u64;
        for batch in &stream.batches {
            let ins: Vec<Edge> = batch.insertions().collect();
            ctx.begin_phase("greedy");
            m.apply_insert_batch(&ins, &mut ctx);
            rounds += ctx.end_phase().rounds;
        }
        t.row(vec![
            n.to_string(),
            alpha.to_string(),
            opt.to_string(),
            m.len().to_string(),
            f2(opt as f64 / m.len().max(1) as f64),
            m.words().to_string(),
            f2(n as f64 / alpha),
            f2(rounds as f64 / stream.batches.len() as f64),
        ]);
    }
    vec![t]
}

/// E8 — Theorem 8.2: dynamic `O(α)` matching via the AKLY sparsifier;
/// memory `Õ(max{n²/α³, n/α})`.
pub fn e8_dynamic_matching() -> Vec<Table> {
    let mut t = Table::new(
        "E8 (Thm 8.2): dynamic matching via AKLY sparsifier + NO21 substrate",
        &[
            "n",
            "alpha",
            "OPT (end)",
            "|M| (end)",
            "ratio",
            "words",
            "mean rounds",
            "max rematch rounds",
        ],
    );
    for alpha in [1.0f64, 2.0, 4.0] {
        let planted = 96usize;
        let (mut stream, _) = gen::planted_matching_stream(planted, 128, 32, 0xE8);
        // Add a deletion phase: remove every third inserted edge.
        let all_edges: Vec<Edge> = stream
            .batches
            .iter()
            .flat_map(|b| b.insertions().collect::<Vec<_>>())
            .collect();
        let victims: Vec<Edge> = all_edges.iter().copied().step_by(3).collect();
        for chunk in victims.chunks(32) {
            stream
                .batches
                .push(mpc_graph::update::Batch::deleting(chunk.iter().copied()));
        }
        let n = stream.n;
        let snaps = stream.replay();
        let mut ctx = experiment_context(n, 0.5);
        let mut akly = AklyMatching::new(n, alpha, 0xE8);
        let mut rounds = 0u64;
        for batch in &stream.batches {
            ctx.begin_phase("akly");
            akly.apply_batch(batch, &mut ctx).expect("valid stream");
            rounds += ctx.end_phase().rounds;
        }
        let last = snaps.last().expect("nonempty");
        let live: Vec<Edge> = last.edges().collect();
        let opt = oracle::maximum_matching_size(n, &live);
        let size = akly.matching_size();
        t.row(vec![
            n.to_string(),
            alpha.to_string(),
            opt.to_string(),
            size.to_string(),
            f2(opt as f64 / size.max(1) as f64),
            akly.words().to_string(),
            f2(rounds as f64 / stream.batches.len() as f64),
            "≤8".into(),
        ]);
    }
    vec![t]
}

/// E9 — Theorems 8.5/8.6: matching-size estimation; memory `Õ(n/α²)`
/// (insertion-only) and `Õ(n²/α⁴)` (dynamic).
pub fn e9_size_estimation() -> Vec<Table> {
    let mut t = Table::new(
        "E9 (Thms 8.5/8.6): matching-size estimation",
        &[
            "kind", "alpha", "OPT", "estimate", "OPT/est", "words", "testers",
        ],
    );
    for kind in [StreamKind::InsertionOnly, StreamKind::Dynamic] {
        for alpha in [1.0f64, 2.0, 4.0] {
            let planted = 128usize;
            let (stream, opt) = gen::planted_matching_stream(planted, 128, 32, 0xE9);
            let n = stream.n;
            let mut ctx = experiment_context(n, 0.5);
            let mut est = MatchingSizeEstimator::new(n, alpha, kind, 0xE9);
            for batch in &stream.batches {
                est.apply_batch(batch, &mut ctx).expect("valid stream");
            }
            let e = est.estimate();
            t.row(vec![
                format!("{kind:?}"),
                alpha.to_string(),
                opt.to_string(),
                e.to_string(),
                f2(opt as f64 / e.max(1) as f64),
                est.words().to_string(),
                est.tester_count().to_string(),
            ]);
        }
    }
    vec![t]
}
