//! Experiment E19: the checkpoint/recovery soak (the PR-8 tentpole).
//!
//! One long insert stream over a memory-light four-maintainer roster
//! (the full-memory baseline, maximal matching, insert-only
//! 2-connectivity, and exact MSF — the kinds whose state stays
//! near-linear in `n`, so the soak scales to `n = 10⁵` on a small
//! host), run twice:
//!
//! * **uninterrupted** — the reference run;
//! * **durable** — checkpointing every `C` batches, then *killed* at
//!   the midpoint (the `Session` is dropped on the floor), restored
//!   from the latest snapshot on disk, and driven to the end.
//!
//! Three things matter and all are in the table:
//!
//! * **Equivalence at scale** — the recovered run's final
//!   `SessionStats` and its answers to the component-count /
//!   matching-size / min-cut queries must be bit-identical to the
//!   uninterrupted run's (`DIVERGED` means the durability contract
//!   broke somewhere the unit suites' small graphs never reached).
//! * **Checkpoint overhead** — total wall time spent inside
//!   `Session::checkpoint` as a fraction of the uninterrupted ingest
//!   wall time, plus the snapshot size on disk.
//! * **Restore vs rebuild** — wall time of `Session::restore` against
//!   replaying the same prefix of the stream from scratch; the whole
//!   point of durability is that this ratio grows with the prefix.
//!
//! By default the soak runs a lite shape (`n = 10⁴`) sized for CI
//! smoke; set `MPC_SOAK_SCALE=full` for the committed
//! `BENCH_PR8_SNAPSHOT_SOAK.json` shape (`n = 10⁵`).

use crate::table::Table;
use mpc_baselines::FullMemoryBaseline;
use mpc_graph::gen;
use mpc_kconn::InsertOnlyKConn;
use mpc_matching::MaximalMatching;
use mpc_msf::ExactMsf;
use mpc_sim::MpcConfig;
use mpc_stream_core::{MaintainerRegistry, QueryRequest, Session};
use std::time::Instant;

fn cfg(n: usize) -> MpcConfig {
    MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 16)
        .build()
}

fn roster(n: usize) -> Session {
    let mut session = Session::new(cfg(n));
    session.register(FullMemoryBaseline::new(n));
    session.register(MaximalMatching::new(n));
    session.register(InsertOnlyKConn::new(n, 2));
    session.register(ExactMsf::new(n));
    session
}

fn registry() -> MaintainerRegistry {
    let mut reg = MaintainerRegistry::core();
    mpc_kconn::register_snapshot_loaders(&mut reg);
    mpc_msf::register_snapshot_loaders(&mut reg);
    mpc_matching::register_snapshot_loaders(&mut reg);
    mpc_baselines::register_snapshot_loaders(&mut reg);
    reg
}

const SOAK_QUERIES: [QueryRequest; 3] = [
    QueryRequest::ComponentCount,
    QueryRequest::MatchingSize,
    QueryRequest::MinCutLowerBound,
];

/// E19 — the durability soak: throughput with periodic checkpoints, a
/// mid-run kill/restore, and the restore-vs-rebuild ratio.
///
/// Shape expectations: `recovered` is `bit-identical` at every scale
/// (the durability contract); checkpoint overhead stays in single-
/// digit percent; the restore-vs-rebuild speedup grows with `n`
/// because restore cost scales with *state* while rebuild cost scales
/// with *stream prefix*.
pub fn e19_snapshot_soak() -> Vec<Table> {
    let full = std::env::var("MPC_SOAK_SCALE").is_ok_and(|v| v == "full");
    // (n, batches, batch size, checkpoint cadence in batches).
    let shapes: &[(usize, usize, usize, usize)] = if full {
        &[(10_000, 400, 48, 50), (100_000, 2_000, 64, 250)]
    } else {
        &[(10_000, 150, 32, 25)]
    };
    let mut t = Table::new(
        "E19 (snapshot soak): checkpoint cadence, mid-run kill/restore, restore vs rebuild",
        &[
            "n",
            "updates",
            "ingest ms",
            "updates/ms",
            "ckpts",
            "snap MB",
            "ckpt ms",
            "overhead",
            "restore ms",
            "rebuild ms",
            "speedup",
            "recovered",
        ],
    );
    for &(n, batches, width, cadence) in shapes {
        let stream = gen::random_insert_stream(n, batches, width, 0xE19 + n as u64);
        let path = std::env::temp_dir().join(format!("mpc-e19-{}-{n}.snap", std::process::id()));

        // Uninterrupted reference run.
        let mut reference = roster(n);
        let start = Instant::now();
        for batch in &stream.batches {
            reference.apply_batch(batch).expect("insert-only stream");
        }
        let ingest_wall = start.elapsed();
        let ref_answers: Vec<_> = SOAK_QUERIES
            .iter()
            .map(|q| reference.ask_all(q).expect("answered"))
            .collect();

        // Durable run: checkpoint every `cadence` batches; at the
        // midpoint the session is dropped — the "crash" — and the rest
        // of the stream is driven by the session restored from disk.
        let kill_at = batches / 2;
        let mut durable = roster(n);
        let mut checkpoints = 0u32;
        let mut ckpt_wall = std::time::Duration::ZERO;
        for batch in &stream.batches[..kill_at] {
            durable.apply_batch(batch).expect("insert-only stream");
            if durable.stream_epoch().is_multiple_of(cadence as u64) {
                let t0 = Instant::now();
                durable.checkpoint(&path).expect("checkpoint");
                ckpt_wall += t0.elapsed();
                checkpoints += 1;
            }
        }
        // Ensure a checkpoint exists exactly at the kill point, so the
        // recovered run replays nothing (pure restore, no catch-up).
        let t0 = Instant::now();
        let snap_bytes = durable.checkpoint(&path).expect("checkpoint").bytes;
        ckpt_wall += t0.elapsed();
        checkpoints += 1;
        drop(durable);

        let t0 = Instant::now();
        let mut recovered = Session::restore(&path, &registry()).expect("restore");
        let restore_wall = t0.elapsed();
        std::fs::remove_file(&path).expect("scratch snapshot removable");
        for batch in &stream.batches[kill_at..] {
            recovered.apply_batch(batch).expect("insert-only stream");
        }
        let rec_answers: Vec<_> = SOAK_QUERIES
            .iter()
            .map(|q| recovered.ask_all(q).expect("answered"))
            .collect();

        // Rebuild cost for the same prefix: replay from scratch.
        let t0 = Instant::now();
        let mut rebuilt = roster(n);
        for batch in &stream.batches[..kill_at] {
            rebuilt.apply_batch(batch).expect("insert-only stream");
        }
        let rebuild_wall = t0.elapsed();
        drop(rebuilt);

        let identical = recovered.stats() == reference.stats()
            && rec_answers == ref_answers
            && recovered.stream_epoch() == reference.stream_epoch();
        let updates = reference.stats().updates;
        let ingest_ms = ingest_wall.as_secs_f64() * 1e3;
        t.row(vec![
            n.to_string(),
            updates.to_string(),
            format!("{ingest_ms:.0}"),
            format!("{:.0}", updates as f64 / ingest_ms),
            checkpoints.to_string(),
            format!("{:.2}", snap_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.0}", ckpt_wall.as_secs_f64() * 1e3),
            format!(
                "{:.1}%",
                100.0 * ckpt_wall.as_secs_f64() / ingest_wall.as_secs_f64()
            ),
            format!("{:.1}", restore_wall.as_secs_f64() * 1e3),
            format!("{:.0}", rebuild_wall.as_secs_f64() * 1e3),
            format!(
                "{:.1}x",
                rebuild_wall.as_secs_f64() / restore_wall.as_secs_f64().max(1e-9)
            ),
            if identical {
                "bit-identical".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    vec![t]
}
