//! Experiments E1–E3 and E12: the connectivity theorems.

use crate::table::{f2, Table};
use crate::{experiment_context, max_batch};
use mpc_baselines::{AgmBaseline, FullMemoryBaseline};
use mpc_graph::gen::{self, BatchStream};
use mpc_graph::oracle;
use mpc_stream_core::{Connectivity, ConnectivityConfig};

/// Applies a stream, returning (mean rounds/batch, max rounds/batch,
/// mismatching batches against the oracle, ℓ0-sampler failures).
fn drive(
    conn: &mut Connectivity,
    ctx: &mut mpc_sim::MpcContext,
    stream: &BatchStream,
) -> (f64, u64, usize, u64) {
    let snaps = stream.replay();
    let mut total_rounds = 0u64;
    let mut max_rounds = 0u64;
    let mut mismatches = 0usize;
    for (batch, snap) in stream.batches.iter().zip(&snaps) {
        ctx.begin_phase("batch");
        conn.apply_batch(batch, ctx).expect("batch within model");
        let r = ctx.end_phase();
        total_rounds += r.rounds;
        max_rounds = max_rounds.max(r.rounds);
        let expect = oracle::components(stream.n, snap.edges());
        if conn.component_labels() != &expect[..] {
            mismatches += 1;
        }
    }
    (
        total_rounds as f64 / stream.batches.len() as f64,
        max_rounds,
        mismatches,
        conn.sampler_failure_count(),
    )
}

/// E1 — Theorem 1.1/6.7: rounds per batch are `O(1/φ)`, flat in
/// batch size, graph size, and workload shape.
pub fn e1_rounds_per_batch() -> Vec<Table> {
    let mut t = Table::new(
        "E1 (Thm 1.1/6.7): rounds per update batch — flat in n and batch size, ~1/φ",
        &[
            "workload",
            "n",
            "phi",
            "batch",
            "batches",
            "mean rounds",
            "max rounds",
            "oracle",
            "l0 fails",
        ],
    );
    let mut push = |workload: &str, n: usize, phi: f64, batch: usize, stream: &BatchStream| {
        let mut ctx = experiment_context(n, phi);
        assert!(batch <= max_batch(&ctx), "batch exceeds model limit");
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 0xE1);
        let (mean, max, miss, fails) = drive(&mut conn, &mut ctx, stream);
        t.row(vec![
            workload.into(),
            n.to_string(),
            phi.to_string(),
            batch.to_string(),
            stream.batches.len().to_string(),
            f2(mean),
            max.to_string(),
            if miss == 0 {
                "match".into()
            } else {
                format!("{miss} diverged")
            },
            fails.to_string(),
        ]);
    };
    // Batch-size sweep at fixed n, φ.
    for batch in [4usize, 16, 64] {
        let n = 1024;
        let stream = gen::random_mixed_stream(n, 10, batch, 0.65, 11);
        push("random-mixed", n, 0.5, batch, &stream);
    }
    // Graph-size sweep at fixed φ, batch.
    for n in [256usize, 1024, 4096] {
        let stream = gen::random_mixed_stream(n, 10, 16, 0.65, 12);
        push("random-mixed", n, 0.5, 16, &stream);
    }
    // φ sweep at fixed n, batch.
    for phi in [0.3f64, 0.5, 0.7] {
        let n = 1024;
        let stream = gen::random_mixed_stream(n, 10, 8, 0.65, 13);
        push("random-mixed", n, phi, 8, &stream);
    }
    // Workload shapes.
    let n = 1024;
    push("path+delete", n, 0.5, 32, &gen::path_stream(n, 32, true));
    push("star+delete", n, 0.5, 32, &gen::star_stream(n, 32, true));
    let ms = gen::merge_split_stream(16, 8, 4, 32, 14);
    push("merge-split", ms.n, 0.5, 16, &ms);
    vec![t]
}

/// E2 — Theorem 1.1: total memory stays `O(n log³ n)`, independent of
/// the number of live edges `m`.
pub fn e2_memory_vs_m() -> Vec<Table> {
    let n = 2048usize;
    let phi = 0.5;
    let log_n = 11u64;
    let bound = n as u64 * log_n * log_n * log_n;
    let mut t = Table::new(
        format!("E2 (Thm 1.1): total memory vs m at n = {n} (bound n·log³n = {bound} words)"),
        &[
            "m (live edges)",
            "ours (words)",
            "ours/bound",
            "Θ(n+m) baseline (words)",
            "baseline slope",
        ],
    );
    let target_m = 200_000usize;
    let stream = gen::densifying_stream(n, target_m, 128, 0xE2);
    let mut ctx = experiment_context(n, phi);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 0xE2);
    let mut full = FullMemoryBaseline::new(n);
    let checkpoints = [2_000usize, 20_000, 60_000, 120_000, 200_000];
    let mut next_cp = 0;
    for batch in &stream.batches {
        conn.apply_batch(batch, &mut ctx).expect("within model");
        full.apply_batch(batch, &mut ctx);
        while next_cp < checkpoints.len() && conn.live_edge_count() >= checkpoints[next_cp] {
            let m = conn.live_edge_count();
            t.row(vec![
                m.to_string(),
                conn.words().to_string(),
                f2(conn.words() as f64 / bound as f64),
                full.words().to_string(),
                f2(full.words() as f64 / m as f64),
            ]);
            next_cp += 1;
        }
    }
    vec![t]
}

/// E2x — the extended-scale version of E2: at `n = 4096` the maximum
/// edge count (~8.4M) exceeds the sketch footprint, so the sweep
/// reaches the actual *crossover* where the paper's `Õ(n)` structure
/// becomes smaller than the `Θ(n+m)` baseline. Not part of `all`
/// (runs ~30 s); invoke with `-- e2x`.
pub fn e2x_memory_crossover() -> Vec<Table> {
    let n = 4096usize;
    let phi = 0.5;
    let mut t = Table::new(
        format!("E2x (Thm 1.1): memory crossover at n = {n} — ours flat, Θ(n+m) overtakes"),
        &[
            "m (live edges)",
            "ours (words)",
            "Θ(n+m) baseline (words)",
            "smaller",
        ],
    );
    let target_m = 4_600_000usize;
    let stream = gen::densifying_stream(n, target_m, 256, 0xE2A);
    let mut ctx = experiment_context(n, phi);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 0xE2A);
    let mut full = FullMemoryBaseline::new(n);
    let checkpoints = [
        50_000usize,
        500_000,
        1_500_000,
        3_000_000,
        4_000_000,
        4_600_000,
    ];
    let mut next_cp = 0;
    for batch in &stream.batches {
        conn.apply_batch(batch, &mut ctx).expect("within model");
        full.apply_batch(batch, &mut ctx);
        while next_cp < checkpoints.len() && conn.live_edge_count() >= checkpoints[next_cp] {
            let m = conn.live_edge_count();
            let (ours, theirs) = (conn.words(), full.words());
            t.row(vec![
                m.to_string(),
                ours.to_string(),
                theirs.to_string(),
                if ours < theirs { "ours" } else { "baseline" }.into(),
            ]);
            next_cp += 1;
        }
    }
    vec![t]
}

/// E3 — Section 1.3/2.1 comparison: query rounds (ours O(1) vs AGM
/// Θ(log n)) and total memory (ours Õ(n) vs Θ(n+m)).
pub fn e3_baseline_comparison() -> Vec<Table> {
    let mut t = Table::new(
        "E3 (Sec 1.3/2.1): ours vs AGM-recompute vs Θ(n+m) dynamic baseline",
        &[
            "n",
            "workload",
            "ours query rounds",
            "AGM query rounds",
            "fullmem query rounds",
            "ours words",
            "fullmem words",
            "ours l0 fails",
            "AGM l0 fails",
        ],
    );
    for n in [256usize, 1024] {
        for (name, stream) in [
            ("path", gen::path_stream(n, 32, false)),
            ("random", gen::random_insert_stream(n, 8, 32, 3)),
        ] {
            let mut ctx = experiment_context(n, 0.5);
            let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 0xE3);
            let mut agm = AgmBaseline::new(n, 0xE3);
            let mut full = FullMemoryBaseline::new(n);
            for batch in &stream.batches {
                conn.apply_batch(batch, &mut ctx).expect("within model");
                agm.apply_batch(batch, &mut ctx);
                full.apply_batch(batch, &mut ctx);
            }
            // Query cost: ours maintains the labelling — 0 extra
            // rounds; the baselines recompute.
            ctx.begin_phase("our-query");
            let _ = conn.component_labels();
            let ours_q = ctx.end_phase().rounds;
            let agm_labels = agm.query_components(&mut ctx);
            let full_labels = full.query_components(&mut ctx);
            assert_eq!(agm_labels, full_labels, "baselines disagree");
            t.row(vec![
                n.to_string(),
                name.into(),
                ours_q.to_string(),
                agm.last_query_rounds().to_string(),
                full.last_query_rounds().to_string(),
                conn.words().to_string(),
                full.words().to_string(),
                conn.sampler_failure_count().to_string(),
                agm.sampler_failure_count().to_string(),
            ]);
        }
    }
    vec![t]
}

/// E12 — ablations: sketch copies `t` vs deletion-recovery quality,
/// and the batch-size-vs-rounds tradeoff against a per-batch AGM
/// recompute.
pub fn e12_ablation() -> Vec<Table> {
    // (a) sketch copies vs replacement-search success, on a ladder
    // workload where every deleted tree edge *does* have replacements
    // and the Borůvka cascade over the pieces has real depth (unlike
    // bridge cuts, which terminate at level zero).
    let mut ta = Table::new(
        "E12a (ablation, Sec 6.3): sketch copies t vs deletion-recovery correctness (ladder)",
        &["t (copies)", "batches", "diverged batches", "l0 fails"],
    );
    let ladder_stream = |seed_shift: u64| -> BatchStream {
        let half = 64u32;
        let n = 2 * half as usize;
        let mut build: Vec<mpc_graph::ids::Edge> = Vec::new();
        for i in 0..half - 1 {
            build.push(mpc_graph::ids::Edge::new(i, i + 1));
            build.push(mpc_graph::ids::Edge::new(half + i, half + i + 1));
        }
        for i in 0..half {
            build.push(mpc_graph::ids::Edge::new(i, half + i));
        }
        let mut batches: Vec<mpc_graph::update::Batch> = build
            .chunks(32)
            .map(|c| mpc_graph::update::Batch::inserting(c.iter().copied()))
            .collect();
        // Delete both rails over a window: the pieces must reconnect
        // through the rungs, forcing a deep replacement cascade.
        for start in [0u32, 16, 32, 48] {
            let victims: Vec<mpc_graph::ids::Edge> = (start..(start + 15).min(half - 2))
                .flat_map(|i| {
                    [
                        mpc_graph::ids::Edge::new(i, i + 1),
                        mpc_graph::ids::Edge::new(half + i, half + i + 1),
                    ]
                })
                .collect();
            batches.push(mpc_graph::update::Batch::deleting(victims));
        }
        let _ = seed_shift;
        BatchStream { n, batches }
    };
    for copies in [1usize, 2, 4, 8, 16] {
        let stream = ladder_stream(copies as u64);
        let n = stream.n;
        let mut ctx = experiment_context(n, 0.5);
        let mut conn = Connectivity::new(
            n,
            ConnectivityConfig {
                sketch_copies: Some(copies),
            },
            0xE12,
        );
        let (_, _, miss, fails) = drive(&mut conn, &mut ctx, &stream);
        ta.row(vec![
            copies.to_string(),
            stream.batches.len().to_string(),
            miss.to_string(),
            fails.to_string(),
        ]);
    }
    // (b) ours-per-batch vs recompute-per-batch rounds. The dynamic
    // algorithm pays O(1/φ) per batch regardless of structure; the
    // AGM recompute pays Θ(#Borůvka levels) per batch, which grows
    // with component diameter — so the comparison is run on
    // high-diameter (path-backbone) graphs at increasing n.
    let mut tb = Table::new(
        "E12b (ablation): per-batch rounds, maintained vs AGM recompute-every-batch (path workloads)",
        &["n", "batch size", "ours mean rounds", "recompute mean rounds"],
    );
    for n in [256usize, 1024, 4096] {
        let batch = 32usize;
        let stream = gen::path_stream(n, batch, true);
        let mut ctx = experiment_context(n, 0.5);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
        let (ours_mean, _, _, _) = drive(&mut conn, &mut ctx, &stream);
        let mut ctx2 = experiment_context(n, 0.5);
        let mut agm = AgmBaseline::new(n, 2);
        let mut total = 0u64;
        for b in &stream.batches {
            ctx2.begin_phase("agm");
            agm.apply_batch(b, &mut ctx2);
            let _ = agm.query_components(&mut ctx2);
            total += ctx2.end_phase().rounds;
        }
        tb.row(vec![
            n.to_string(),
            batch.to_string(),
            f2(ours_mean),
            f2(total as f64 / stream.batches.len() as f64),
        ]);
    }
    vec![ta, tb]
}
