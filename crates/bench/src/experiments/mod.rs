//! Experiments E1–E20 (see DESIGN.md §5 for the index; E13–E16 are
//! the extension experiments, E17 the Session-level workload table,
//! E18 the parallel-executor scaling curve, E19 the checkpoint/
//! recovery soak, E20 the million-scale SIMD soak).

pub mod connectivity;
pub mod extensions;
pub mod matching;
pub mod micro;
pub mod msf;
pub mod parallel;
pub mod session;
pub mod snapshot;
pub mod soak;

use crate::table::Table;

/// Runs one experiment by id, returning its tables.
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e1" => connectivity::e1_rounds_per_batch(),
        "e2" => connectivity::e2_memory_vs_m(),
        "e2x" => connectivity::e2x_memory_crossover(),
        "e3" => connectivity::e3_baseline_comparison(),
        "e4" => msf::e4_exact_msf(),
        "e5" => msf::e5_approx_msf(),
        "e6" => msf::e6_bipartiteness(),
        "e7" => matching::e7_insertion_matching(),
        "e8" => matching::e8_dynamic_matching(),
        "e9" => matching::e9_size_estimation(),
        "e10" => micro::e10_sketch_quality(),
        "e11" => micro::e11_etf_ops(),
        "e12" => connectivity::e12_ablation(),
        "e13" => extensions::e13_kconn(),
        "e14" => extensions::e14_robustness(),
        "e15" => extensions::e15_vertex_churn(),
        "e16" => extensions::e16_preprocessing(),
        "e17" => session::e17_session_workload(),
        "e18" => parallel::e18_parallel_scaling(),
        "e19" => snapshot::e19_snapshot_soak(),
        "e20" => soak::e20_simd_soak(),
        other => panic!("unknown experiment id {other:?} (use e1..e20 or all)"),
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-runs the light experiments end to end (the heavy ones —
    /// e1/e2/e10/e12 — are exercised by the release binary; these
    /// cover the harness code paths under `cargo test`).
    #[test]
    fn light_experiments_produce_tables() {
        for id in ["e4", "e6", "e7", "e9", "e15", "e17", "e18"] {
            let tables = run(id);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
                let rendered = t.render();
                assert!(rendered.contains("##"), "{id} renders a caption");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run("e99");
    }

    #[test]
    fn all_ids_are_unique() {
        let mut ids = ALL.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }
}
