//! Experiments E10–E11: substrate microbenchmarks (Lemma 3.1 sketch
//! quality; Lemma 5.1/6.4 Euler-tour operation costs).

use crate::experiment_context;
use crate::table::{f2, Table};
use mpc_etf::tour::validate;
use mpc_etf::DistEtf;
use mpc_graph::ids::Edge;
use mpc_sketch::l0::{L0Sampler, SampleOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E10 — Lemma 3.1: `ℓ0`-sampler success rate vs support size, and
/// the boost from independent copies (the paper's `t` sketches).
pub fn e10_sketch_quality() -> Vec<Table> {
    let mut t = Table::new(
        "E10 (Lemma 3.1): l0-sampler quality (200 trials per row)",
        &[
            "support",
            "single-copy success",
            "8-copy success",
            "false zero",
            "non-support sample",
        ],
    );
    let trials = 200u64;
    let space = 1u64 << 22;
    for support in [1usize, 10, 100, 1_000, 10_000] {
        let mut single_ok = 0u32;
        let mut multi_ok = 0u32;
        let mut false_zero = 0u32;
        let mut bad_sample = 0u32;
        let mut rng = StdRng::seed_from_u64(support as u64 * 7 + 1);
        for trial in 0..trials {
            let mut coords: Vec<u64> = (0..support).map(|_| rng.gen_range(0..space)).collect();
            coords.sort_unstable();
            coords.dedup();
            let mut copies: Vec<L0Sampler> = (0..8)
                .map(|c| L0Sampler::new(space, trial * 100 + c))
                .collect();
            for s in &mut copies {
                for &i in &coords {
                    s.update(i, 1);
                }
            }
            let mut any = false;
            for (ci, s) in copies.iter().enumerate() {
                match s.sample() {
                    SampleOutcome::Sample { index, .. } => {
                        if !coords.contains(&index) {
                            bad_sample += 1;
                        }
                        if ci == 0 {
                            single_ok += 1;
                        }
                        any = true;
                    }
                    SampleOutcome::Zero => false_zero += 1,
                    SampleOutcome::Fail => {}
                }
            }
            if any {
                multi_ok += 1;
            }
        }
        t.row(vec![
            support.to_string(),
            f2(single_ok as f64 / trials as f64),
            f2(multi_ok as f64 / trials as f64),
            false_zero.to_string(),
            bad_sample.to_string(),
        ]);
    }
    vec![t]
}

/// E11 — Lemmas 5.1/6.4: Euler-tour operations cost `O(1)` rounds at
/// every batch size, and the tours stay valid.
pub fn e11_etf_ops() -> Vec<Table> {
    let mut t = Table::new(
        "E11 (Lemma 5.1/6.4): Euler-tour batch operations",
        &[
            "n",
            "batch k",
            "join rounds",
            "split rounds",
            "single-join rounds",
            "valid",
        ],
    );
    for (n, k) in [(1024usize, 4usize), (1024, 16), (4096, 64), (4096, 256)] {
        let mut ctx = experiment_context(n, 0.5);
        let mut etf = DistEtf::new(n);
        let mut rng = StdRng::seed_from_u64(0xE11);
        // Pre-build k+1 disjoint path trees of equal length.
        let trees = k + 1;
        let seg_len = n / trees;
        assert!(seg_len >= 2, "need room for {trees} trees of ≥2 vertices");
        for ti in 0..trees {
            let base = (ti * seg_len) as u32;
            for j in 0..seg_len as u32 - 1 {
                etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
            }
        }
        // The measured batch chains tree i to tree i+1 at random
        // interior attachment points (a path-shaped auxiliary tree).
        let batch: Vec<Edge> = (0..k)
            .map(|i| {
                let a = (i * seg_len + rng.gen_range(0..seg_len)) as u32;
                let b = ((i + 1) * seg_len + rng.gen_range(0..seg_len)) as u32;
                Edge::new(a, b)
            })
            .collect();
        ctx.begin_phase("join");
        etf.batch_join(&batch, &mut ctx);
        let join_rounds = ctx.end_phase().rounds;
        validate(&etf).expect("valid after batch join");
        ctx.begin_phase("split");
        etf.batch_split(&batch, &mut ctx);
        let split_rounds = ctx.end_phase().rounds;
        validate(&etf).expect("valid after batch split");
        // Single-edge op for comparison.
        ctx.begin_phase("single");
        etf.batch_join(&batch[..1], &mut ctx);
        let single_rounds = ctx.end_phase().rounds;
        etf.batch_split(&batch[..1], &mut ctx);
        t.row(vec![
            n.to_string(),
            k.to_string(),
            join_rounds.to_string(),
            split_rounds.to_string(),
            single_rounds.to_string(),
            "yes".into(),
        ]);
    }
    vec![t, e11b_tour_scaling()]
}

/// E11b — per-tour sharded storage locality: the same batch
/// join+split (8 edges over 9 trees of 32 vertices) is timed while
/// the number of *unrelated* background tours grows. With `tour →
/// edge-shard` storage the warm per-op wall time stays flat (up to
/// the `O(log #tours)` shard-map lookups); the pre-shard layout
/// scanned every forest edge per operation and degraded linearly.
/// Wall-clock is host time (best of 50 warm repetitions), reported as
/// locality evidence for the simulator itself, not a model quantity.
fn e11b_tour_scaling() -> Table {
    let mut t = Table::new(
        "E11b (sharded ETF locality): batch join+split cost vs unrelated-forest size",
        &[
            "background tours",
            "forest edges",
            "join+split (µs, warm best-of-50)",
            "vs bg=0",
        ],
    );
    let (fg_trees, fg_seg, bg_seg) = (9usize, 32usize, 8usize);
    let mut base_us = 0.0f64;
    for bg in [0usize, 256, 1024, 4096] {
        let fg = fg_trees * fg_seg;
        let n = fg + bg * bg_seg;
        let mut ctx = experiment_context(n.max(4), 0.5);
        let mut etf = DistEtf::new(n);
        for ti in 0..fg_trees {
            let base = (ti * fg_seg) as u32;
            for j in 0..fg_seg as u32 - 1 {
                etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
            }
        }
        for ti in 0..bg {
            let base = (fg + ti * bg_seg) as u32;
            for j in 0..bg_seg as u32 - 1 {
                etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
            }
        }
        let batch: Vec<Edge> = (0..fg_trees - 1)
            .map(|i| Edge::new((i * fg_seg) as u32, ((i + 1) * fg_seg) as u32))
            .collect();
        let mut best = std::time::Duration::MAX;
        for _ in 0..50 {
            let t0 = std::time::Instant::now();
            etf.batch_join(&batch, &mut ctx);
            etf.batch_split(&batch, &mut ctx);
            best = best.min(t0.elapsed());
        }
        validate(&etf).expect("valid after scaling op");
        let us = best.as_secs_f64() * 1e6;
        if bg == 0 {
            base_us = us;
        }
        t.row(vec![
            bg.to_string(),
            etf.edge_count().to_string(),
            f2(us),
            format!("{}x", f2(us / base_us)),
        ]);
    }
    t
}
