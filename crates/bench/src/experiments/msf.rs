//! Experiments E4–E6: minimum spanning forest and bipartiteness
//! (Theorems 7.1 and 7.3).

use crate::experiment_context;
use crate::table::{f2, f3, Table};
use mpc_graph::gen;
use mpc_graph::ids::WeightedEdge;
use mpc_graph::oracle;
use mpc_msf::{ApproxMsfWeight, Bipartiteness, ExactMsf};

/// E4 — Theorem 7.1(i): exact MSF under insertion-only batches, in
/// `O(1)` rounds per batch, exact against Kruskal at every batch.
pub fn e4_exact_msf() -> Vec<Table> {
    let mut t = Table::new(
        "E4 (Thm 7.1(i)): exact MSF, insertion-only batches",
        &[
            "n",
            "batch",
            "batches",
            "mean rounds",
            "max swap iters",
            "weight vs Kruskal",
        ],
    );
    for (n, batch) in [(256usize, 16usize), (1024, 32), (1024, 64)] {
        let stream = gen::random_weighted_insert_stream(n, 10, batch, 1 << 10, 0xE4);
        let mut ctx = experiment_context(n, 0.5);
        let mut msf = ExactMsf::new(n);
        let mut all: Vec<WeightedEdge> = Vec::new();
        let mut total_rounds = 0u64;
        let mut max_iters = 0usize;
        let mut exact = true;
        for b in &stream.batches {
            ctx.begin_phase("msf");
            msf.apply_batch(b, &mut ctx).expect("within model");
            total_rounds += ctx.end_phase().rounds;
            max_iters = max_iters.max(msf.last_iterations());
            all.extend(b.insertions());
            exact &= msf.weight() == oracle::msf_weight(n, all.iter().copied());
        }
        t.row(vec![
            n.to_string(),
            batch.to_string(),
            stream.batches.len().to_string(),
            f2(total_rounds as f64 / stream.batches.len() as f64),
            max_iters.to_string(),
            if exact {
                "exact".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    vec![t]
}

/// E5 — Theorem 7.1(ii): `(1+ε)`-approximate MSF weight under mixed
/// batches; measured ratio vs the proven bound.
pub fn e5_approx_msf() -> Vec<Table> {
    let mut t = Table::new(
        "E5 (Thm 7.1(ii)): (1+ε)-approx MSF weight, mixed batches",
        &[
            "eps",
            "instances",
            "checkpoints",
            "worst ratio",
            "bound (1+eps)",
            "within",
        ],
    );
    let n = 96usize;
    let max_w = 64u64;
    for eps in [0.05f64, 0.1, 0.25, 0.5] {
        let stream = gen::random_weighted_stream(n, 10, 12, 0.65, max_w, 0xE5);
        let mut ctx = experiment_context(n, 0.5);
        let mut aw = ApproxMsfWeight::new(n, eps, max_w, 0xE5);
        let mut live: std::collections::BTreeMap<mpc_graph::ids::Edge, u64> = Default::default();
        let mut worst: f64 = 1.0;
        let mut ok = true;
        for b in &stream.batches {
            aw.apply_batch(b, &mut ctx).expect("within model");
            for u in b.iter() {
                let we = u.weighted_edge();
                if u.is_insert() {
                    live.insert(we.edge, we.weight);
                } else {
                    live.remove(&we.edge);
                }
            }
            let all: Vec<WeightedEdge> = live
                .iter()
                .map(|(&edge, &weight)| WeightedEdge { edge, weight })
                .collect();
            let exact = oracle::msf_weight(n, all.iter().copied()) as f64;
            if exact > 0.0 {
                let ratio = aw.weight_estimate() / exact;
                worst = worst.max(ratio);
                ok &= ratio >= 1.0 - 1e-9 && ratio <= 1.0 + eps + 1e-9;
            }
        }
        t.row(vec![
            eps.to_string(),
            aw.instance_count().to_string(),
            stream.batches.len().to_string(),
            f3(worst),
            f3(1.0 + eps),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    vec![t]
}

/// E6 — Theorem 7.3: bipartiteness tracking through odd-cycle
/// injection and removal.
pub fn e6_bipartiteness() -> Vec<Table> {
    let mut t = Table::new(
        "E6 (Thm 7.3): dynamic bipartiteness via the double cover",
        &[
            "n",
            "batches",
            "violation window",
            "verdicts vs oracle",
            "mean rounds/batch",
        ],
    );
    for (n, inject) in [(64usize, Some(3usize)), (128, Some(5)), (128, None)] {
        let (stream, window) = gen::bipartite_stream_with_violation(n, 10, 6, inject, 0xE6);
        let snaps = stream.replay();
        let mut ctx = experiment_context(2 * n, 0.5);
        let mut bip = Bipartiteness::new(n, 0xE6);
        let mut agree = 0usize;
        let mut rounds = 0u64;
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            ctx.begin_phase("bip");
            bip.apply_batch(batch, &mut ctx).expect("within model");
            rounds += ctx.end_phase().rounds;
            let edges: Vec<mpc_graph::ids::Edge> = snap.edges().collect();
            if bip.is_bipartite() == oracle::is_bipartite(n, &edges) {
                agree += 1;
            }
        }
        t.row(vec![
            n.to_string(),
            stream.batches.len().to_string(),
            window
                .map(|(a, b)| format!("[{a},{b})"))
                .unwrap_or_else(|| "none".into()),
            format!("{agree}/{}", stream.batches.len()),
            f2(rounds as f64 / stream.batches.len() as f64),
        ]);
    }
    vec![t]
}
