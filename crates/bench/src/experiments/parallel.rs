//! Experiment E18: the parallel `Session` executor's cores-vs-
//! throughput curve (the PR-6 tentpole).
//!
//! One multi-maintainer ingest workload — the shape the executor was
//! built for: eight maintainers on disjoint machine groups, so the
//! per-maintainer fan-out is embarrassingly parallel — timed at 1, 2,
//! and 4 workers. Two things matter and both are in the table:
//!
//! * **Equivalence** — every parallel run's `SessionStats` (rounds,
//!   words, per-maintainer breakdown) must be bit-identical to the
//!   serial run's; the executor only changes *which host thread* runs
//!   a branch, never what the branch charges. A `DIVERGED` verdict
//!   means the fork/replay accounting broke.
//! * **Scaling** — wall-clock speedup over the 1-worker run, and
//!   efficiency (speedup ÷ workers). This is a *host* measurement:
//!   on a single-core container every worker count collapses onto
//!   one core and the honest efficiency ceiling is `1/workers`; the
//!   `host cores` column records what the curve was measured on.

use crate::table::Table;
use mpc_baselines::{AgmBaseline, FullMemoryBaseline};
use mpc_graph::gen;
use mpc_kconn::DynamicKConn;
use mpc_matching::AklyMatching;
use mpc_msf::{Bipartiteness, ExactMsf};
use mpc_sim::{MpcConfig, SessionStats};
use mpc_stream_core::{Connectivity, ConnectivityConfig, Session, StreamingConnectivity};
use std::time::Instant;

/// One timed run at a fixed worker count: returns the rollup (for
/// the equivalence check) and the ingest wall time in microseconds.
fn timed_run(n: usize, workers: usize) -> (SessionStats, u128, u64) {
    let s = (16.0 * (n as f64).sqrt()).ceil() as u64;
    let base = MpcConfig::builder(n, 0.5).local_capacity(s).build();
    let cfg = MpcConfig::builder(n, 0.5)
        .local_capacity(s)
        .machines(8 * base.machines())
        .build();
    let mut session = Session::new(cfg).with_workers(workers);
    session.register(Connectivity::new(n, ConnectivityConfig::default(), 0xE18));
    session.register(StreamingConnectivity::new(n, 0xE18));
    session.register(ExactMsf::new(n));
    session.register(Bipartiteness::new(n, 0xE18));
    session.register(AklyMatching::new(n, 2.0, 0xE18));
    session.register(DynamicKConn::new(n, 2, 0xE18));
    session.register(AgmBaseline::new(n, 0xE18));
    session.register(FullMemoryBaseline::new(n));

    // Batch size 12 keeps every per-batch gather (8 words per edge)
    // inside the `16·√n` local capacity at both table sizes.
    let stream = gen::random_insert_stream(n, 20, 12, 0xE18 + n as u64);
    let start = Instant::now();
    for batch in &stream.batches {
        session.apply_batch(batch).expect("insert-only stream");
    }
    let elapsed = start.elapsed().as_micros().max(1);
    let updates = session.stats().updates;
    (session.stats().clone(), elapsed, updates)
}

/// E18 — ingest throughput vs worker count, with the serial-
/// equivalence verdict inline.
///
/// Shape expectations: the `equivalent` column is `bit-identical` at
/// every worker count on every host (that is the executor's
/// contract); the speedup column approaches the host's core count on
/// multi-core machines and stays ≈1x (pool overhead visible) when
/// the container only has one core to offer.
pub fn e18_parallel_scaling() -> Vec<Table> {
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut t = Table::new(
        "E18 (parallel executor): Session ingest throughput vs workers, 8 maintainers on disjoint groups",
        &[
            "n",
            "workers",
            "host cores",
            "updates",
            "wall us",
            "updates/ms",
            "speedup",
            "efficiency",
            "equivalent",
        ],
    );
    for &n in &[128usize, 256] {
        // Median-of-3 per worker count: the workload is deterministic,
        // so only host scheduling noise varies between repeats.
        let mut measured: Vec<(usize, SessionStats, u128, u64)> = Vec::new();
        for &workers in &[1usize, 2, 4] {
            let mut runs: Vec<(SessionStats, u128, u64)> =
                (0..3).map(|_| timed_run(n, workers)).collect();
            runs.sort_by_key(|r| r.1);
            let (stats, wall, updates) = runs.swap_remove(1);
            measured.push((workers, stats, wall, updates));
        }
        let serial_stats = measured[0].1.clone();
        let serial_wall = measured[0].2;
        for (workers, stats, wall, updates) in &measured {
            let speedup = serial_wall as f64 / *wall as f64;
            t.row(vec![
                n.to_string(),
                workers.to_string(),
                host_cores.to_string(),
                updates.to_string(),
                wall.to_string(),
                format!("{:.0}", *updates as f64 * 1000.0 / *wall as f64),
                format!("{speedup:.2}x"),
                format!("{:.2}", speedup / *workers as f64),
                if *stats == serial_stats {
                    "bit-identical".into()
                } else {
                    "DIVERGED".into()
                },
            ]);
        }
    }
    vec![t]
}
