//! Experiment E20: the million-scale SIMD soak (the PR-9 tentpole's
//! proof of life).
//!
//! One sketch-heavy [`Session`] — batch-dynamic connectivity at a
//! fixed copy count — drives a power-law stream with adversarial
//! re-insert/delete churn ([`gen::powerlaw_churn_stream`]): hub cells
//! are repeatedly written, exactly cancelled, and refilled, which is
//! the worst case for the arena's live-mask bookkeeping and exactly
//! the loop the [`mpc_sketch::kernels`] tiers vectorize. The loop
//! interleaves periodic `ask_all` component counts and periodic
//! `Session::checkpoint` calls, so the measured stream is the full
//! production surface (ingest + query fan-out + durability), not a
//! bare ingest microloop.
//!
//! The table reports end-to-end throughput plus p50/p95/p99
//! **per-batch latencies** (nearest-rank over every `apply_batch`
//! wall time, via the vendored harness's `percentile`), and the
//! kernel tier the run dispatched to — run once with `MPC_KERNEL=
//! scalar` and once unset to read the SIMD speedup at scale; the
//! component counts and final stats must match bit-for-bit between
//! those runs (the kernel bit-identity contract).
//!
//! By default the soak runs a lite shape (`n = 10⁴`, ~6·10⁴ updates)
//! sized for CI smoke; set `MPC_SOAK_SCALE=full` for the committed
//! `BENCH_PR9_SIMD_SOAK.json` shapes (`n = 10⁵` and `10⁶`,
//! multi-million-update streams).

use crate::table::Table;
use mpc_graph::gen;
use mpc_sim::MpcConfig;
use mpc_sketch::KernelKind;
use mpc_stream_core::{Connectivity, ConnectivityConfig, QueryRequest, Session};
use std::time::{Duration, Instant};

/// Fixed copy count at every scale: enough for the deletion cascade
/// to stay reliable on churn, small enough that the `n = 10⁶` arena
/// fits a small host (full `⌈log₂ n⌉ + 6` copies would triple it).
const SOAK_COPIES: usize = 8;

fn soak_session(n: usize, seed: u64) -> Session {
    let cfg = MpcConfig::builder(2 * n, 0.5)
        .local_capacity(1 << 18)
        .build();
    let mut session = Session::new(cfg);
    session.register(Connectivity::new(
        n,
        ConnectivityConfig {
            sketch_copies: Some(SOAK_COPIES),
        },
        seed,
    ));
    session
}

/// E20 — the SIMD soak: power-law churn at `n = 10⁵`/`10⁶` with
/// in-loop queries and checkpoints, batch-latency percentiles, and
/// the dispatched kernel tier on record.
///
/// Shape expectations: `updates/s` is the headline the kernel tiers
/// move (compare `MPC_KERNEL=scalar` against auto); p99 sits well
/// above p50 because churn batches that trigger the replacement-edge
/// cascade pay converge-cast rounds that insert-only batches never
/// see; `components` is identical across kernel tiers at the same
/// seed (bit-identity).
pub fn e20_simd_soak() -> Vec<Table> {
    let full = std::env::var("MPC_SOAK_SCALE").is_ok_and(|v| v == "full");
    // (n, batches, batch width, churn, query cadence, ckpt cadence).
    let shapes: &[(usize, usize, usize, f64, usize, usize)] = if full {
        &[
            (100_000, 4_000, 512, 0.15, 400, 1_000),
            (1_000_000, 3_000, 1_024, 0.15, 500, 1_500),
        ]
    } else {
        &[(10_000, 250, 256, 0.15, 50, 125)]
    };
    let kernel = KernelKind::selected();
    let mut t = Table::new(
        "E20 (SIMD soak): power-law churn, in-loop queries + checkpoints, batch-latency percentiles",
        &[
            "n",
            "kernel",
            "updates",
            "wall s",
            "updates/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "asks",
            "ckpts",
            "components",
        ],
    );
    for &(n, batches, width, churn, ask_every, ckpt_every) in shapes {
        let stream = gen::powerlaw_churn_stream(n, batches, width, churn, 0xE20 + n as u64);
        let updates = stream.update_count();
        let path = std::env::temp_dir().join(format!("mpc-e20-{}-{n}.snap", std::process::id()));

        let mut session = soak_session(n, 0xE20);
        let mut latencies: Vec<Duration> = Vec::with_capacity(batches);
        let mut asks = 0u32;
        let mut ckpts = 0u32;
        let mut components = 0u64;
        let start = Instant::now();
        for (i, batch) in stream.batches.iter().enumerate() {
            let t0 = Instant::now();
            session.apply_batch(batch).expect("generated stream valid");
            latencies.push(t0.elapsed());
            if (i + 1) % ask_every == 0 || i + 1 == batches {
                let answers = session
                    .ask_all(&QueryRequest::ComponentCount)
                    .expect("connectivity answers");
                let (_, answer) = answers.first().expect("one maintainer");
                components = answer.as_count().expect("a count");
                asks += 1;
            }
            if (i + 1) % ckpt_every == 0 {
                session.checkpoint(&path).expect("checkpoint");
                ckpts += 1;
            }
        }
        let wall = start.elapsed();
        if ckpts > 0 {
            std::fs::remove_file(&path).expect("scratch snapshot removable");
        }
        latencies.sort_unstable();
        let pct = |q: f64| {
            criterion::percentile(&latencies, q)
                .expect("nonempty")
                .as_secs_f64()
                * 1e3
        };
        t.row(vec![
            n.to_string(),
            kernel.name().to_string(),
            updates.to_string(),
            format!("{:.1}", wall.as_secs_f64()),
            format!("{:.0}", updates as f64 / wall.as_secs_f64()),
            format!("{:.2}", pct(50.0)),
            format!("{:.2}", pct(95.0)),
            format!("{:.2}", pct(99.0)),
            asks.to_string(),
            ckpts.to_string(),
            components.to_string(),
        ]);
    }
    vec![t]
}
