//! Experiments E13–E15: the Section 9 / Section 1.2 extensions
//! (k-edge connectivity, adversarial robustness, vertex dynamics).
//!
//! These go beyond the paper's theorem set: E13 measures the sparse
//! `k`-edge-connectivity certificate (`mpc-kconn`), E14 the memory /
//! round cost of sketch switching against an adaptive adversary
//! (`RobustConnectivity`), and E15 the vertex-churn relaxation
//! (`VertexDynamicConnectivity`). All three quantify design points
//! the paper only names (Section 9 open directions; the Section 1.1
//! oblivious-adversary caveat; the Section 1.2 vertex-set
//! relaxation).

use crate::table::{f2, Table};
use crate::{experiment_context, max_batch};
use mpc_graph::cuts;
use mpc_graph::ids::Edge;
use mpc_graph::oracle;
use mpc_graph::update::Batch;
use mpc_kconn::{DynamicKConn, InsertOnlyKConn};
use mpc_stream_core::{
    Connectivity, ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random graph stream whose snapshots have known edge sets; used
/// to compare certificate cuts against the oracle.
fn random_edges(n: usize, p: f64, seed: u64) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push(Edge::new(a, b));
            }
        }
    }
    edges
}

/// E13 — Section 9 extension: `k`-edge-connectivity certificates.
///
/// Shape expectations: certificate size ≤ `k(n-1)` ≪ `m`; the
/// truncated cut value `min(λ, k)` matches the oracle on every
/// instance; insertion-only updates stay `O(1)` rounds while the
/// dynamic peeling query pays `Θ(k log n)` rounds.
pub fn e13_kconn() -> Vec<Table> {
    let mut cert_t = Table::new(
        "E13a (Sec 9 extension): sparse certificate — size <= k(n-1), cut exact up to k",
        &[
            "mode",
            "n",
            "m",
            "k",
            "cert edges",
            "k(n-1)",
            "min(λ_G,k)",
            "min(λ_cert,k)",
            "verdict",
        ],
    );
    for &(n, p) in &[(64usize, 0.15f64), (128, 0.08), (256, 0.05)] {
        for &k in &[1usize, 2, 4] {
            let edges = random_edges(n, p, 0xE13 + n as u64 + k as u64);
            let lambda_g = cuts::edge_connectivity(n, &edges).min(k as u64);

            // Insertion-only cascade.
            let mut ctx = experiment_context(n, 0.5);
            let mut io = InsertOnlyKConn::new(n, k);
            for chunk in edges.chunks(max_batch(&ctx).min(16)) {
                io.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
            }
            let cert = io.certificate();
            let lambda_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
            cert_t.row(vec![
                "insert-only".into(),
                n.to_string(),
                edges.len().to_string(),
                k.to_string(),
                cert.edge_count().to_string(),
                (k * (n - 1)).to_string(),
                lambda_g.to_string(),
                lambda_c.to_string(),
                if lambda_g == lambda_c {
                    "match".into()
                } else {
                    "DIVERGED".into()
                },
            ]);

            // Dynamic sketch peeling (same final graph, via a
            // delete-reinsert detour to exercise deletions).
            let mut ctx = experiment_context(n, 0.5);
            let mut dy = DynamicKConn::new(n, k, 0xD13 + k as u64);
            for chunk in edges.chunks(max_batch(&ctx)) {
                dy.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
            }
            let detour: Vec<Edge> = edges.iter().step_by(5).copied().collect();
            for chunk in detour.chunks(max_batch(&ctx)) {
                dy.apply_batch(&Batch::deleting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
                dy.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
            }
            let cert = dy.certificate(&mut ctx);
            let lambda_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
            cert_t.row(vec![
                "dynamic".into(),
                n.to_string(),
                edges.len().to_string(),
                k.to_string(),
                cert.edge_count().to_string(),
                (k * (n - 1)).to_string(),
                lambda_g.to_string(),
                lambda_c.to_string(),
                if lambda_g == lambda_c {
                    "match".into()
                } else {
                    "DIVERGED".into()
                },
            ]);
        }
    }

    // Round asymmetry: O(1)-round insert-only updates vs Θ(k log n)
    // dynamic queries — the measured form of the open problem.
    let mut rounds_t = Table::new(
        "E13b: update rounds stay flat; dynamic certificate queries pay Θ(k log n) rounds",
        &[
            "n",
            "k",
            "update rounds/batch (dyn)",
            "query rounds (dyn)",
            "update rounds/batch (ins-only)",
        ],
    );
    for &n in &[128usize, 512] {
        for &k in &[1usize, 2, 4] {
            let edges = random_edges(n, 0.05, 0xB13 + n as u64);
            let mut ctx = experiment_context(n, 0.5);
            let mut dy = DynamicKConn::new(n, k, 9);
            let mut upd_rounds = 0u64;
            let mut batches = 0u64;
            for chunk in edges.chunks(16) {
                ctx.begin_phase("update");
                dy.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
                upd_rounds += ctx.end_phase().rounds;
                batches += 1;
            }
            let _ = dy.certificate_mut(&mut ctx);
            let query_rounds = dy.last_query_rounds();

            let mut ctx2 = experiment_context(n, 0.5);
            let mut io = InsertOnlyKConn::new(n, k);
            let mut io_rounds = 0u64;
            let mut io_batches = 0u64;
            for chunk in edges.chunks(16) {
                ctx2.begin_phase("update");
                io.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx2)
                    .expect("batch within model");
                io_rounds += ctx2.end_phase().rounds;
                io_batches += 1;
            }
            rounds_t.row(vec![
                n.to_string(),
                k.to_string(),
                f2(upd_rounds as f64 / batches as f64),
                query_rounds.to_string(),
                f2(io_rounds as f64 / io_batches as f64),
            ]);
        }
    }

    // Memory: certificate words vs m (the sparsification factor).
    let mut mem_t = Table::new(
        "E13c: total words — insert-only O(k·n) state vs dynamic Õ(k·n) sketches vs m",
        &[
            "n",
            "m",
            "k",
            "ins-only words",
            "dynamic words",
            "2m (edge list)",
        ],
    );
    for &n in &[256usize] {
        for &k in &[2usize, 4] {
            let edges = random_edges(n, 0.25, 0xC13);
            let mut ctx = experiment_context(n, 0.5);
            let mut io = InsertOnlyKConn::new(n, k);
            for chunk in edges.chunks(16) {
                io.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
            }
            let mut dy = DynamicKConn::new(n, k, 3);
            for chunk in edges.chunks(max_batch(&ctx)) {
                dy.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                    .expect("batch within model");
            }
            mem_t.row(vec![
                n.to_string(),
                edges.len().to_string(),
                k.to_string(),
                io.words_model().to_string(),
                dy.words().to_string(),
                (2 * edges.len()).to_string(),
            ]);
        }
    }
    // Ablation: sketch copies per bank vs peel quality (mirrors the
    // E12a copies ablation for the core algorithm).
    let mut abl_t = Table::new(
        "E13d (ablation): sketch copies per bank vs dynamic-peel correctness (20 streams each)",
        &[
            "copies",
            "streams",
            "diverged (truncated cut)",
            "words/bank",
        ],
    );
    {
        let n = 48usize;
        let k = 2usize;
        for &copies in &[2usize, 4, 8, 12] {
            let mut diverged = 0usize;
            let mut words = 0u64;
            for trial in 0..20u64 {
                let edges = random_edges(n, 0.12, 0xAB13 + trial);
                let mut ctx = experiment_context(n, 0.5);
                let mut dy = DynamicKConn::with_copies(n, k, copies, trial * 7 + 1);
                for chunk in edges.chunks(max_batch(&ctx)) {
                    dy.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                        .expect("batch within model");
                }
                let cert = dy.certificate(&mut ctx);
                let lam_g = cuts::edge_connectivity(n, &edges).min(k as u64);
                let lam_c = cuts::edge_connectivity(n, &cert.edges()).min(k as u64);
                if lam_g != lam_c {
                    diverged += 1;
                }
                words = dy.words() / k as u64;
            }
            abl_t.row(vec![
                copies.to_string(),
                "20".into(),
                diverged.to_string(),
                words.to_string(),
            ]);
        }
    }
    vec![cert_t, rounds_t, mem_t, abl_t]
}

/// E16 — the paper's "pre-computation phase" (end of Section 1.1):
/// starting from an arbitrary existing graph costs one `O(log n)`-
/// round static bootstrap, against `Θ(m/batch · 1/φ)` rounds for
/// replaying the graph as a stream of batches.
///
/// Shape expectations: bootstrap rounds grow (poly)logarithmically
/// with `n` while replay rounds grow linearly in `m`; both paths end
/// in oracle-identical state.
pub fn e16_preprocessing() -> Vec<Table> {
    let mut t = Table::new(
        "E16 (Sec 1.1): bootstrap from an arbitrary graph vs replaying it as a stream",
        &[
            "structure",
            "n",
            "m",
            "bootstrap rounds",
            "replay rounds",
            "ratio",
            "state",
        ],
    );
    for &n in &[256usize, 1024] {
        let edges = random_edges(n, (4.0 * n as f64) / (n as f64 * (n as f64 - 1.0) / 2.0), 7);
        let m = edges.len();

        // Connectivity.
        let mut ctx = experiment_context(n, 0.5);
        ctx.begin_phase("bootstrap");
        let boot = Connectivity::from_graph(
            n,
            ConnectivityConfig::default(),
            0xE16,
            edges.iter().copied(),
            &mut ctx,
        )
        .expect("bootstrap");
        let boot_rounds = ctx.end_phase().rounds;
        let mut ctx2 = experiment_context(n, 0.5);
        let mut inc = Connectivity::new(n, ConnectivityConfig::default(), 0xE16);
        ctx2.begin_phase("replay");
        for chunk in edges.chunks(16) {
            inc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx2)
                .expect("replay");
        }
        let replay_rounds = ctx2.end_phase().rounds;
        let labels = oracle::components(n, edges.iter().copied());
        let ok = boot.component_labels() == &labels[..] && inc.component_labels() == &labels[..];
        t.row(vec![
            "connectivity".into(),
            n.to_string(),
            m.to_string(),
            boot_rounds.to_string(),
            replay_rounds.to_string(),
            f2(replay_rounds as f64 / boot_rounds.max(1) as f64),
            if ok {
                "oracle-exact".into()
            } else {
                "DIVERGED".into()
            },
        ]);

        // k-edge-connectivity sketches (k = 2): bootstrap is one
        // routing round; replay pays per batch.
        let mut ctx = experiment_context(n, 0.5);
        ctx.begin_phase("bootstrap");
        let kb = DynamicKConn::from_graph(n, 2, 0xE16, edges.iter().copied(), &mut ctx);
        let boot_rounds = ctx.end_phase().rounds;
        let mut ctx2 = experiment_context(n, 0.5);
        let mut ki = DynamicKConn::new(n, 2, 0xE16);
        ctx2.begin_phase("replay");
        for chunk in edges.chunks(16) {
            ki.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx2)
                .expect("batch within model");
        }
        let replay_rounds = ctx2.end_phase().rounds;
        // Same seed + same edge multiset → the linear sketches are
        // identical, so the peeled certificates must coincide.
        let ok = kb.certificate(&mut ctx).edges() == ki.certificate(&mut ctx2).edges();
        t.row(vec![
            "kconn (k=2)".into(),
            n.to_string(),
            m.to_string(),
            boot_rounds.to_string(),
            replay_rounds.to_string(),
            f2(replay_rounds as f64 / boot_rounds.max(1) as f64),
            if ok {
                "identical sketches".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    vec![t]
}

/// E14 — the cost of adversarial robustness (sketch switching).
///
/// Shape expectations: memory exactly `R×` the oblivious structure;
/// rounds per batch unchanged (instances run in parallel); the
/// adaptive delete-the-published-tree-edge pattern is survived for
/// exactly `R × budget` consuming batches and refused afterwards.
pub fn e14_robustness() -> Vec<Table> {
    let mut t = Table::new(
        "E14 (Sec 1.1 caveat): sketch switching — R× memory buys R×budget adaptive batches",
        &[
            "n",
            "R",
            "budget",
            "words (robust)",
            "words (oblivious)",
            "ratio",
            "adaptive batches survived",
            "oracle",
        ],
    );
    let n = 256usize;
    for &(r, budget) in &[(1usize, 2u64), (2, 2), (4, 2), (4, 4)] {
        let mut ctx = experiment_context(n, 0.5);
        let mut rc = RobustConnectivity::new(n, r, budget, ConnectivityConfig::default(), 0xE14);
        let mut base = Connectivity::new(n, ConnectivityConfig::default(), 0xE14);
        // Connected base graph: a cycle (every tree deletion has a
        // replacement, so the structure keeps answering).
        let cycle: Vec<Edge> = (0..n as u32)
            .map(|i| Edge::new(i, (i + 1) % n as u32))
            .collect();
        for chunk in cycle.chunks(max_batch(&ctx).min(16)) {
            rc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                .expect("insert");
            base.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                .expect("insert");
        }
        let mut live: Vec<Edge> = cycle.clone();
        // Adaptive pattern: always delete a published tree edge, then
        // re-insert it (keeps the graph fixed, burns exposure).
        let mut survived = 0u64;
        let mut ok = true;
        loop {
            let target = rc.spanning_forest()[0];
            if rc
                .apply_batch(&Batch::deleting([target]), &mut ctx)
                .is_err()
            {
                break;
            }
            live.retain(|e| *e != target);
            let labels = oracle::components(n, live.iter().copied());
            ok &= rc.component_labels() == &labels[..];
            survived += 1;
            rc.apply_batch(&Batch::inserting([target]), &mut ctx)
                .expect("reinsert");
            live.push(target);
            if survived > 10 * r as u64 * budget {
                break; // safety stop; should be unreachable
            }
        }
        t.row(vec![
            n.to_string(),
            r.to_string(),
            budget.to_string(),
            rc.words().to_string(),
            base.words().to_string(),
            f2(rc.words() as f64 / base.words() as f64),
            format!("{survived} (= R*budget = {})", r as u64 * budget),
            if ok {
                "match".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    vec![t]
}

/// E15 — Section 1.2 relaxation: vertex churn.
///
/// Shape expectations: correctness under interleaved vertex/edge
/// churn (checked against the oracle); memory pinned to the fixed
/// capacity (the paper's "the MPC machines stay the same"), not the
/// active count.
pub fn e15_vertex_churn() -> Vec<Table> {
    let mut t = Table::new(
        "E15 (Sec 1.2): vertex churn — capacity-pinned memory, oracle-exact connectivity",
        &[
            "capacity",
            "steps",
            "peak active",
            "final active",
            "words",
            "oracle",
        ],
    );
    for &cap in &[64usize, 256] {
        let mut ctx = experiment_context(cap, 0.5);
        let mut vd =
            VertexDynamicConnectivity::with_capacity(cap, ConnectivityConfig::default(), 0xE15);
        let mut rng = StdRng::seed_from_u64(cap as u64);
        let mut live: Vec<Edge> = Vec::new();
        let mut active: Vec<u32> = Vec::new();
        let mut peak = 0usize;
        let steps = 200usize;
        let mut ok = true;
        for _ in 0..steps {
            match rng.gen_range(0..5) {
                0 | 1 if vd.active_count() < cap => {
                    active.push(vd.add_vertex(&mut ctx).expect("capacity checked"));
                }
                2 if active.len() >= 2 => {
                    let a = active[rng.gen_range(0..active.len())];
                    let b = active[rng.gen_range(0..active.len())];
                    if a != b {
                        let e = Edge::new(a, b);
                        if !live.contains(&e) {
                            vd.apply_batch(&Batch::inserting([e]), &mut ctx)
                                .expect("insert");
                            live.push(e);
                        }
                    }
                }
                3 if !live.is_empty() => {
                    let e = live.swap_remove(rng.gen_range(0..live.len()));
                    vd.apply_batch(&Batch::deleting([e]), &mut ctx)
                        .expect("delete");
                }
                4 if !active.is_empty() => {
                    let i = rng.gen_range(0..active.len());
                    let v = active[i];
                    if live.iter().all(|e| !e.touches(v)) {
                        vd.remove_vertex(v, &mut ctx).expect("isolated");
                        active.swap_remove(i);
                    }
                }
                _ => {}
            }
            peak = peak.max(vd.active_count());
            let labels = oracle::components(cap, live.iter().copied());
            for w in active.windows(2) {
                ok &= vd.connected(w[0], w[1]).expect("active")
                    == (labels[w[0] as usize] == labels[w[1] as usize]);
            }
        }
        t.row(vec![
            cap.to_string(),
            steps.to_string(),
            peak.to_string(),
            vd.active_count().to_string(),
            vd.words().to_string(),
            if ok {
                "match".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    vec![t]
}
