//! Criterion benches for the extension layers (experiments E13–E15's
//! wall-clock complement): certificate cascade throughput, sketch
//! peeling, robust-wrapper overhead, and vertex churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_graph::ids::Edge;
use mpc_graph::update::Batch;
use mpc_kconn::{DynamicKConn, InsertOnlyKConn};
use mpc_sim::{MpcConfig, MpcContext};
use mpc_stream_core::{
    Connectivity, ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity,
};
use std::hint::black_box;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 18).build())
}

/// Circulant edges (i, i+1) and (i, i+2): 4-regular, 4-edge-connected.
fn circulant(n: u32) -> Vec<Edge> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push(Edge::new(i, (i + 1) % n));
        edges.push(Edge::new(i, (i + 2) % n));
    }
    edges
}

fn bench_kconn(c: &mut Criterion) {
    let mut g = c.benchmark_group("kconn");
    for k in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("insert_only_batch", k), &k, |b, &k| {
            let n = 1024;
            let edges = circulant(n as u32);
            b.iter_batched(
                || (ctx_for(n), InsertOnlyKConn::new(n, k)),
                |(mut ctx, mut kc)| {
                    for chunk in edges.chunks(32) {
                        kc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                            .expect("fits");
                    }
                    black_box(kc.edge_count())
                },
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("dynamic_peel_query", k), &k, |b, &k| {
            let n = 256;
            let mut ctx = ctx_for(n);
            let mut kc = DynamicKConn::new(n, k, 5);
            kc.apply_batch(&Batch::inserting(circulant(n as u32)), &mut ctx)
                .expect("batch within model");
            b.iter(|| black_box(kc.certificate(&mut ctx).edge_count()));
        });
    }
    g.finish();
}

fn bench_robust(c: &mut Criterion) {
    let mut g = c.benchmark_group("robust");
    for r in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("update_batch", r), &r, |b, &r| {
            let n = 512;
            let edges = circulant(n as u32);
            b.iter_batched(
                || {
                    (
                        ctx_for(n),
                        RobustConnectivity::new(n, r, 1_000, ConnectivityConfig::default(), 9),
                    )
                },
                |(mut ctx, mut rc)| {
                    for chunk in edges.chunks(32) {
                        rc.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                            .expect("budget");
                    }
                    black_box(rc.component_count())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    // Reference: the oblivious single instance.
    g.bench_function("oblivious_reference", |b| {
        let n = 512;
        let edges = circulant(n as u32);
        b.iter_batched(
            || {
                (
                    ctx_for(n),
                    Connectivity::new(n, ConnectivityConfig::default(), 9),
                )
            },
            |(mut ctx, mut conn)| {
                for chunk in edges.chunks(32) {
                    conn.apply_batch(&Batch::inserting(chunk.iter().copied()), &mut ctx)
                        .expect("fits");
                }
                black_box(conn.component_count())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_vertex_churn(c: &mut Criterion) {
    c.bench_function("vertex_churn_cycle", |b| {
        let cap = 1024;
        b.iter_batched(
            || {
                (
                    ctx_for(cap),
                    VertexDynamicConnectivity::with_capacity(cap, ConnectivityConfig::default(), 4),
                )
            },
            |(mut ctx, mut vd)| {
                let ids = vd.add_vertices(64, &mut ctx).expect("capacity");
                let edges: Vec<Edge> = (0..64)
                    .map(|i| Edge::new(ids[i], ids[(i + 1) % 64]))
                    .collect();
                vd.apply_batch(&Batch::inserting(edges.iter().copied()), &mut ctx)
                    .expect("edges");
                vd.apply_batch(&Batch::deleting(edges.iter().copied()), &mut ctx)
                    .expect("edges");
                for v in ids {
                    vd.remove_vertex(v, &mut ctx).expect("isolated");
                }
                black_box(vd.active_count())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    extension_benches,
    bench_kconn,
    bench_robust,
    bench_vertex_churn
);
criterion_main!(extension_benches);
