//! Criterion benches for the hot substrate paths: sketch updates and
//! merges, Euler-tour batch operations, connectivity batches, and the
//! maximal-matching substrate. Wall-clock throughput complements the
//! round-count experiments (rounds are the model's cost; these benches
//! confirm the simulator itself scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_etf::DistEtf;
use mpc_graph::gen;
use mpc_graph::ids::Edge;
use mpc_graph::update::Batch;
use mpc_matching::MaximalMatching;
use mpc_sim::{MpcConfig, MpcContext};
use mpc_sketch::l0::L0Sampler;
use mpc_sketch::vertex::VertexSketch;
use mpc_stream_core::{Connectivity, ConnectivityConfig};
use std::hint::black_box;

fn ctx_for(n: usize) -> MpcContext {
    MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 18).build())
}

fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.bench_function("l0_update", |b| {
        let mut s = L0Sampler::new(1 << 24, 7);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 6364136223846793005 + 1) & ((1 << 24) - 1);
            s.update(black_box(i), 1);
        });
    });
    g.bench_function("l0_merge", |b| {
        let mut a = L0Sampler::new(1 << 24, 7);
        let mut x = L0Sampler::new(1 << 24, 7);
        for i in 0..256 {
            a.update(i * 11, 1);
            x.update(i * 13, 1);
        }
        b.iter(|| a.merge(black_box(&x)));
    });
    g.bench_function("vertex_sketch_sample", |b| {
        let n = 1 << 12;
        let mut s = VertexSketch::new(n, 0, 5);
        for i in 1..64u32 {
            s.insert_edge(Edge::new(0, i));
        }
        b.iter(|| black_box(s.sample()));
    });
    g.bench_function("update_stream_4k", |b| {
        // The batched cell-write path: 4096 edge inserts streamed into
        // a bank's arena (per copy per endpoint: one level-hash and
        // fingerprint evaluation, then the kernel cell write).
        use mpc_sketch::SketchBank;
        let n = 1 << 12;
        let edges: Vec<Edge> = {
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            (0..4096)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let u = (x >> 33) as u32 % (n as u32 - 1);
                    let gap = 1 + (x >> 11) as u32 % (n as u32 - 1 - u);
                    Edge::new(u, u + gap)
                })
                .collect()
        };
        b.iter_batched(
            || SketchBank::new(n, 8, 13),
            |mut bank| {
                for e in &edges {
                    bank.insert_edge(*e);
                }
                bank
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("merged_copy", |b| {
        // The converge-cast inner loop: merge one component's 64
        // member columns at one copy and sample the set sketch, at a
        // realistic copy count (t = log2(1024) + 6 = 16).
        use mpc_sketch::SketchBank;
        let n = 1 << 10;
        let mut bank = SketchBank::new(n, 16, 11);
        for i in 0..64u32 {
            bank.insert_edge(Edge::new(i, i + 64));
            if i > 0 {
                bank.insert_edge(Edge::new(i - 1, i));
            }
        }
        let members: Vec<u32> = (0..64).collect();
        let mut scratch = bank.new_scratch();
        b.iter(|| {
            scratch.reset(0);
            let absorbed = bank.merge_copy_into(&members, &mut scratch);
            black_box((absorbed > 0).then(|| bank.sample_merged(&scratch)))
        });
    });
    g.finish();
}

fn bench_etf(c: &mut Criterion) {
    let mut g = c.benchmark_group("etf");
    for k in [8usize, 64] {
        g.bench_with_input(BenchmarkId::new("batch_join_split", k), &k, |b, &k| {
            let n = 4096;
            b.iter_batched(
                || {
                    let mut ctx = ctx_for(n);
                    let mut etf = DistEtf::new(n);
                    let trees = k + 1;
                    let seg = n / trees;
                    for t in 0..trees {
                        let base = (t * seg) as u32;
                        for j in 0..seg as u32 - 1 {
                            etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
                        }
                    }
                    let batch: Vec<Edge> = (0..k)
                        .map(|i| Edge::new((i * seg) as u32, ((i + 1) * seg) as u32))
                        .collect();
                    (ctx, etf, batch)
                },
                |(mut ctx, mut etf, batch)| {
                    etf.batch_join(&batch, &mut ctx);
                    etf.batch_split(&batch, &mut ctx);
                    (ctx, etf)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // Tour-count scaling: the measured operation always touches the
    // same 9 foreground trees (32 vertices each); only the number of
    // *unrelated* background tours varies. With per-tour sharded
    // storage the per-op cost must stay flat in the background count
    // (the pre-shard layout scanned every forest edge per op).
    let fg_trees = 9usize;
    let fg_seg = 32usize;
    let bg_seg = 8usize;
    for bg in [0usize, 256, 1024, 4096] {
        g.bench_with_input(
            BenchmarkId::new("join_split_bg_tours", bg),
            &bg,
            |b, &bg| {
                let fg = fg_trees * fg_seg;
                let n = fg + bg * bg_seg;
                b.iter_batched(
                    || {
                        let mut ctx = ctx_for(n.max(2));
                        let mut etf = DistEtf::new(n);
                        for t in 0..fg_trees {
                            let base = (t * fg_seg) as u32;
                            for j in 0..fg_seg as u32 - 1 {
                                etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
                            }
                        }
                        for t in 0..bg {
                            let base = (fg + t * bg_seg) as u32;
                            for j in 0..bg_seg as u32 - 1 {
                                etf.join(Edge::new(base + j, base + j + 1), &mut ctx);
                            }
                        }
                        let batch: Vec<Edge> = (0..fg_trees - 1)
                            .map(|i| Edge::new((i * fg_seg) as u32, ((i + 1) * fg_seg) as u32))
                            .collect();
                        (ctx, etf, batch)
                    },
                    |(mut ctx, mut etf, batch)| {
                        etf.batch_join(&batch, &mut ctx);
                        etf.batch_split(&batch, &mut ctx);
                        (ctx, etf)
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("connectivity");
    g.sample_size(10);
    for n in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("mixed_batch16", n), &n, |b, &n| {
            let stream = gen::random_mixed_stream(n, 8, 16, 0.65, 3);
            b.iter_batched(
                || {
                    (
                        ctx_for(n),
                        Connectivity::new(n, ConnectivityConfig::default(), 1),
                    )
                },
                |(mut ctx, mut conn)| {
                    for batch in &stream.batches {
                        conn.apply_batch(batch, &mut ctx).expect("within model");
                    }
                    (ctx, conn)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // The Borůvka converge-cast of the replacement-edge search
    // (Section 6.3): delete a slab of tree edges so every batch runs
    // the per-level component-sketch merges.
    g.bench_function("converge_cast", |b| {
        let n = 512usize;
        // Ladder graph: rungs guarantee replacements exist, so the
        // cascade always has productive levels.
        let half = n as u32 / 2;
        let mut edges: Vec<Edge> = Vec::new();
        for i in 0..half - 1 {
            edges.push(Edge::new(i, i + 1));
            edges.push(Edge::new(half + i, half + i + 1));
        }
        for i in 0..half {
            edges.push(Edge::new(i, half + i));
        }
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 17);
        conn.apply_batch(&Batch::inserting(edges), &mut ctx)
            .expect("within model");
        let victims: Vec<Edge> = conn.spanning_forest().into_iter().take(16).collect();
        b.iter_batched(
            || (ctx_for(n), conn.clone()),
            |(mut ctx, mut conn)| {
                conn.apply_batch(&Batch::deleting(victims.iter().copied()), &mut ctx)
                    .expect("within model");
                (ctx, conn)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.bench_function("no21_batch32", |b| {
        let n = 1024;
        let stream = gen::random_insert_stream(n, 8, 32, 9);
        b.iter_batched(
            || (ctx_for(n), MaximalMatching::new(n)),
            |(mut ctx, mut mm)| {
                for batch in &stream.batches {
                    mm.apply_batch(batch, &mut ctx).expect("valid stream");
                }
                (ctx, mm)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_msf(c: &mut Criterion) {
    use mpc_msf::ExactMsf;
    let mut g = c.benchmark_group("msf");
    g.sample_size(10);
    g.bench_function("exact_batch32", |b| {
        let n = 512;
        let stream = mpc_graph::gen::random_weighted_insert_stream(n, 8, 32, 1 << 10, 5);
        b.iter_batched(
            || (ctx_for(n), ExactMsf::new(n)),
            |(mut ctx, mut msf)| {
                for batch in &stream.batches {
                    msf.apply_batch(batch, &mut ctx).expect("within model");
                }
                (ctx, msf)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_cluster_primitives(c: &mut Criterion) {
    use mpc_sim::cluster::Cluster;
    use mpc_sim::primitives::{broadcast, prefix_sum, sample_sort};
    let mut g = c.benchmark_group("cluster");
    g.bench_function("broadcast_64_machines", |b| {
        b.iter_batched(
            || Cluster::new(64, 256),
            |mut cl| broadcast(&mut cl, &[1, 2, 3, 4]).expect("fits"),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("sample_sort_16x64", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new(16, 1 << 12);
                let mut x = 12345u64;
                for m in 0..16 {
                    let data: Vec<u64> = (0..64)
                        .map(|_| {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            x >> 32
                        })
                        .collect();
                    *cl.buffer_mut(m) = data;
                }
                cl
            },
            |mut cl| sample_sort(&mut cl).expect("balanced"),
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("prefix_sum_64_machines", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new(64, 16);
                for m in 0..64 {
                    *cl.buffer_mut(m) = vec![m as u64];
                }
                cl
            },
            |mut cl| prefix_sum(&mut cl).expect("cap-safe"),
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_bank(c: &mut Criterion) {
    use mpc_sketch::SketchBank;
    let mut g = c.benchmark_group("bank");
    g.bench_function("merged_copy_64_members", |b| {
        let n = 1 << 10;
        let mut bank = SketchBank::new(n, 4, 9);
        for i in 0..64u32 {
            bank.insert_edge(Edge::new(i, i + 64));
        }
        let members: Vec<u32> = (0..64).collect();
        b.iter(|| black_box(bank.merged_copy(&members, 0)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sketch,
    bench_etf,
    bench_connectivity,
    bench_matching,
    bench_msf,
    bench_cluster_primitives,
    bench_bank
);
criterion_main!(benches);
