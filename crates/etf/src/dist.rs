//! The distributed Euler-tour forest and its single-edge operations.

use mpc_graph::ids::{Edge, VertexId};
use mpc_sim::MpcContext;
use std::collections::{BTreeMap, BTreeSet};

/// One tour's edge shard: a flat array sorted by edge. Batch plans
/// remap the records in place (keys never change), and tour-id
/// reassignment moves whole shards by splice instead of per-edge
/// rewrites.
pub(crate) type Shard = Vec<(Edge, EdgeRec)>;

fn shard_get(shard: &Shard, e: Edge) -> Option<&EdgeRec> {
    shard
        .binary_search_by_key(&e, |&(k, _)| k)
        .ok()
        .map(|i| &shard[i].1)
}

/// Merges two sorted runs into one sorted vector in a single linear
/// pass — the shared splice primitive of the batch operations (edge
/// shards and member lists alike).
pub(crate) fn merge_sorted_runs<T: Copy, K: Ord>(
    a: &[T],
    b: &[T],
    key: impl Fn(&T) -> K,
) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if key(&a[i]) <= key(&b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Identifier of one Euler tour (one tree of the forest). Tour ids
/// `0..n` are the initial singleton tours; fresh ids are allocated
/// monotonically after splits and joins.
pub type TourId = u64;

/// One of the two traversals of a tree edge inside its tour: the
/// traversal occupies entries `pos` (the `from` endpoint) and
/// `pos + 1` (the other endpoint). `pos` is always odd — traversals
/// start on odd positions in a well-formed tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Position (1-based) of the `from` endpoint's entry.
    pub pos: u64,
    /// The endpoint the traversal leaves from.
    pub from: VertexId,
}

/// Per-edge tour bookkeeping: which tour the edge belongs to and the
/// positions of its two traversals (`first.pos < second.pos`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRec {
    /// The tour (tree) this edge belongs to.
    pub tour: TourId,
    /// Earlier traversal.
    pub first: Traversal,
    /// Later traversal (opposite direction).
    pub second: Traversal,
}

impl EdgeRec {
    /// Entries `first.pos + 1 .. = second.pos` are exactly the
    /// subtree below this edge (the side of its far endpoint). Used
    /// by `identify_path` and the split operations.
    pub fn subtree_interval(&self) -> (u64, u64) {
        (self.first.pos + 1, self.second.pos)
    }

    fn shift(&mut self, delta: i64) {
        // lint: allow(panic-reachability): position arithmetic invariant — shifts never move a record below zero
        self.first.pos = self.first.pos.checked_add_signed(delta).expect("underflow");
        self.second.pos = self
            .second
            .pos
            .checked_add_signed(delta)
            // lint: allow(panic-reachability): position arithmetic invariant — shifts never move a record below zero
            .expect("underflow");
    }

    fn normalize(&mut self) {
        if self.first.pos > self.second.pos {
            std::mem::swap(&mut self.first, &mut self.second);
        }
    }
}

impl mpc_snapshot::Persist for Traversal {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u64(self.pos);
        w.put_u32(self.from);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(Traversal {
            pos: r.take_u64()?,
            from: r.take_u32()?,
        })
    }
}

impl mpc_snapshot::Persist for EdgeRec {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u64(self.tour);
        self.first.save(w);
        self.second.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let tour = r.take_u64()?;
        let first = Traversal::load(r)?;
        let second = Traversal::load(r)?;
        if first.pos >= second.pos {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "edge record traversals out of order: {} >= {}",
                first.pos, second.pos
            )));
        }
        Ok(EdgeRec {
            tour,
            first,
            second,
        })
    }
}

/// A forest of Euler tours in the paper's distributed representation.
///
/// State is *vertex- and edge-sharded*: each vertex carries only its
/// tour id; each forest edge carries its four tour positions, and the
/// edge records are stored in **per-tour shards** (`tour → edges`) so
/// every operation touches only the affected tours' records —
/// `O(|tour|)` work instead of `O(|forest|)`, mirroring the paper's
/// protocol in which each machine remaps its own shard from an
/// `O(k)`-word broadcast plan. All operations mutate this state
/// through broadcast-size instructions — the [`MpcContext`] parameter
/// charges exactly those broadcasts and gathers.
///
/// # Examples
///
/// ```
/// use mpc_etf::DistEtf;
/// use mpc_graph::ids::Edge;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// let mut ctx = MpcContext::new(MpcConfig::builder(8, 0.5).build());
/// let mut etf = DistEtf::new(8);
/// etf.join(Edge::new(0, 1), &mut ctx);
/// etf.join(Edge::new(1, 2), &mut ctx);
/// assert_eq!(etf.tour_of(0), etf.tour_of(2));
/// let path = etf.identify_path(0, 2, &mut ctx);
/// assert_eq!(path.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DistEtf {
    n: usize,
    vertex_tour: Vec<TourId>,
    adj: Vec<BTreeSet<VertexId>>,
    /// Per-tour edge shards, each a flat array sorted by edge (the
    /// machine-local segment the paper's protocol remaps in place).
    /// Tours without edges (singletons) carry no entry. Invariant:
    /// every record in `shards[t]` has `rec.tour == t`, and both
    /// endpoints carry tour id `t`.
    shards: BTreeMap<TourId, Shard>,
    edge_count: usize,
    tour_len: BTreeMap<TourId, u64>,
    /// Per-tour member lists, sorted ascending (spliced and
    /// partitioned alongside the edge shards).
    members: BTreeMap<TourId, Vec<VertexId>>,
    next_id: TourId,
}

impl DistEtf {
    /// Creates the forest of `n` singleton tours.
    pub fn new(n: usize) -> Self {
        let mut tour_len = BTreeMap::new();
        let mut members = BTreeMap::new();
        for v in 0..n as u64 {
            tour_len.insert(v, 0);
            members.insert(v, vec![v as VertexId]);
        }
        DistEtf {
            n,
            vertex_tour: (0..n as u64).collect(),
            adj: vec![BTreeSet::new(); n],
            shards: BTreeMap::new(),
            edge_count: 0,
            tour_len,
            members,
            next_id: n as TourId,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of forest edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The tour (tree) a vertex belongs to.
    pub fn tour_of(&self, v: VertexId) -> TourId {
        self.vertex_tour[v as usize]
    }

    /// Length of a tour (`4·(|T|-1)`; 0 for singletons).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tour id.
    pub fn tour_len(&self, t: TourId) -> u64 {
        self.tour_len[&t]
    }

    /// The vertices of a tour, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tour id.
    pub fn tour_members(&self, t: TourId) -> &[VertexId] {
        &self.members[&t]
    }

    /// All live tour ids.
    pub fn tours(&self) -> impl Iterator<Item = TourId> + '_ {
        self.tour_len.keys().copied()
    }

    /// Whether `e` is a forest (tree) edge.
    pub fn contains_edge(&self, e: Edge) -> bool {
        self.edge_rec(e).is_some()
    }

    /// The record of a forest edge. A forest edge always lives in the
    /// shard of its endpoints' tour, so the lookup is local to that
    /// shard.
    pub fn edge_rec(&self, e: Edge) -> Option<&EdgeRec> {
        if (e.v() as usize) >= self.n {
            return None;
        }
        shard_get(self.shards.get(&self.vertex_tour[e.u() as usize])?, e)
    }

    /// Iterates over the forest edges (all shards).
    pub fn forest_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.shards.values().flat_map(|s| s.iter().map(|&(e, _)| e))
    }

    /// Iterates over one tour's edge shard — the unit of locality of
    /// every tour operation. Yields nothing for singleton or unknown
    /// tours.
    pub fn tour_edges(&self, t: TourId) -> impl Iterator<Item = (Edge, &EdgeRec)> + '_ {
        self.shards
            .get(&t)
            .into_iter()
            .flat_map(|s| s.iter().map(|(e, r)| (*e, r)))
    }

    /// The tree neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &BTreeSet<VertexId> {
        &self.adj[v as usize]
    }

    /// Memory footprint in words: one word per vertex (tour id) plus
    /// six words per forest edge (tour id, two traversals of
    /// (pos, from), normalized endpoints are implicit in placement).
    pub fn words(&self) -> u64 {
        self.n as u64 + 6 * self.edge_count as u64
    }

    pub(crate) fn fresh_id(&mut self) -> TourId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    // ----- crate-private state surgery for the batch operations ----

    /// The tour ids that currently own an edge shard (used by the
    /// intrinsic validator to check shard ↔ bookkeeping consistency).
    pub(crate) fn shard_tour_ids(&self) -> impl Iterator<Item = TourId> + '_ {
        self.shards.keys().copied()
    }

    /// Mutable view of one tour's shard, if it has edges.
    pub(crate) fn shard_mut(&mut self, t: TourId) -> Option<&mut Shard> {
        self.shards.get_mut(&t)
    }

    /// Detaches a tour's whole edge shard (empty for singletons). The
    /// caller must re-home every record via
    /// [`DistEtf::splice_shard_entries`] or
    /// [`DistEtf::insert_edge_rec`].
    pub(crate) fn take_shard(&mut self, t: TourId) -> Shard {
        let shard = self.shards.remove(&t).unwrap_or_default();
        self.edge_count -= shard.len();
        shard
    }

    /// Splices an entry list into tour `t`'s shard — the map-splice
    /// counterpart of a per-edge rewrite loop. The batch operations
    /// produce concatenations of already-sorted runs, so the stable
    /// sort here is a linear-time run merge; splicing into a live
    /// shard then merges the two sorted arrays in one linear pass
    /// (or, for a constant-size run, a few sorted inserts). Records
    /// must already carry tour id `t`.
    pub(crate) fn splice_shard_entries(&mut self, t: TourId, mut entries: Shard) {
        if entries.is_empty() {
            return;
        }
        debug_assert!(
            entries.iter().all(|(_, r)| r.tour == t),
            "mislabelled splice"
        );
        self.edge_count += entries.len();
        entries.sort_by_key(|&(e, _)| e);
        match self.shards.entry(t) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(entries);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let shard = slot.get_mut();
                if entries.len() <= 8 && entries.len() * 8 <= shard.len() {
                    // A constant-size run into a big shard: per-entry
                    // sorted inserts beat rebuilding the shard. A
                    // duplicate key (a caller bug) is inserted anyway
                    // so `edge_count` stays consistent and the shard
                    // validator reports it, as the rebuild path would.
                    for (e, rec) in entries {
                        let i = match shard.binary_search_by_key(&e, |&(k, _)| k) {
                            Ok(i) => {
                                debug_assert!(false, "edge {e} spliced twice");
                                i
                            }
                            Err(i) => i,
                        };
                        shard.insert(i, (e, rec));
                    }
                } else {
                    *shard = merge_sorted_runs(shard, &entries, |&(e, _)| e);
                }
            }
        }
    }

    /// Registers `e` in the tree adjacency only (for callers that
    /// splice the record itself in bulk).
    pub(crate) fn add_adjacency(&mut self, e: Edge) {
        self.adj[e.u() as usize].insert(e.v());
        self.adj[e.v() as usize].insert(e.u());
    }

    /// Drops a set of edges from one tour's shard in a single retain
    /// pass (and from the adjacency), cheaper than repeated
    /// single-edge removals.
    pub(crate) fn remove_edges_from_shard(&mut self, t: TourId, doomed: &BTreeSet<Edge>) {
        for &e in doomed {
            self.adj[e.u() as usize].remove(&e.v());
            self.adj[e.v() as usize].remove(&e.u());
        }
        if let Some(shard) = self.shards.get_mut(&t) {
            let before = shard.len();
            shard.retain(|(e, _)| !doomed.contains(e));
            self.edge_count -= before - shard.len();
            if shard.is_empty() {
                self.shards.remove(&t);
            }
        }
    }

    pub(crate) fn insert_edge_rec(&mut self, e: Edge, rec: EdgeRec) {
        self.adj[e.u() as usize].insert(e.v());
        self.adj[e.v() as usize].insert(e.u());
        let shard = self.shards.entry(rec.tour).or_default();
        match shard.binary_search_by_key(&e, |&(k, _)| k) {
            Ok(_) => {
                debug_assert!(false, "edge {e} inserted twice");
            }
            Err(i) => {
                shard.insert(i, (e, rec));
                self.edge_count += 1;
            }
        }
    }

    pub(crate) fn remove_edge_rec(&mut self, e: Edge) {
        self.adj[e.u() as usize].remove(&e.v());
        self.adj[e.v() as usize].remove(&e.u());
        let t = self.vertex_tour[e.u() as usize];
        if let Some(shard) = self.shards.get_mut(&t) {
            if let Ok(i) = shard.binary_search_by_key(&e, |&(k, _)| k) {
                shard.remove(i);
                self.edge_count -= 1;
                if shard.is_empty() {
                    self.shards.remove(&t);
                }
            }
        }
    }

    /// Drops a tour's membership and length records, returning its
    /// former members (sorted). The caller must re-home every member.
    pub(crate) fn remove_tour_bookkeeping(&mut self, t: TourId) -> Vec<VertexId> {
        self.tour_len.remove(&t);
        self.members.remove(&t).unwrap_or_default()
    }

    pub(crate) fn set_vertex_tour(&mut self, v: VertexId, t: TourId) {
        self.vertex_tour[v as usize] = t;
    }

    /// Installs a tour's bookkeeping; `members` must be sorted.
    pub(crate) fn install_tour(&mut self, t: TourId, len: u64, members: Vec<VertexId>) {
        debug_assert!(members.is_sorted(), "tour members must stay sorted");
        self.tour_len.insert(t, len);
        self.members.insert(t, members);
    }

    /// Replaces a live tour's length without touching its members.
    pub(crate) fn set_tour_len(&mut self, t: TourId, len: u64) {
        self.tour_len.insert(t, len);
    }

    /// Merges a sorted member run into a live tour's member list
    /// (per-entry sorted inserts for a constant-size run, one linear
    /// run merge otherwise).
    pub(crate) fn merge_members_into(&mut self, t: TourId, extra: Vec<VertexId>) {
        debug_assert!(extra.is_sorted(), "member runs stay sorted");
        let members = self.members.entry(t).or_default();
        if extra.len() <= 8 && extra.len() * 8 <= members.len() {
            // A duplicate member (a caller bug) is kept so the
            // bookkeeping validator reports it, as the sort path
            // would.
            for v in extra {
                let i = match members.binary_search(&v) {
                    Ok(i) => {
                        debug_assert!(false, "member {v} merged twice");
                        i
                    }
                    Err(i) => i,
                };
                members.insert(i, v);
            }
        } else {
            *members = merge_sorted_runs(members, &extra, |&v| v);
        }
    }

    // ----- occurrence bookkeeping ---------------------------------

    /// All positions at which `v` occurs in its tour (2·deg entries).
    pub fn occurrences(&self, v: VertexId) -> Vec<u64> {
        let adj = &self.adj[v as usize];
        let mut out = Vec::with_capacity(2 * adj.len());
        if adj.is_empty() {
            return out;
        }
        let shard = &self.shards[&self.vertex_tour[v as usize]];
        for &w in adj {
            // lint: allow(panic-reachability): adjacency and tour shards are mutated in lockstep — a missing edge is corruption
            let rec = *shard_get(shard, Edge::new(v, w)).expect("adjacent edge in shard");
            for t in [rec.first, rec.second] {
                if t.from == v {
                    out.push(t.pos);
                } else {
                    out.push(t.pos + 1);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// First and last occurrence `(f(v), ℓ(v))`; `(0, 0)` for a
    /// singleton.
    pub fn f_l(&self, v: VertexId) -> (u64, u64) {
        let occ = self.occurrences(v);
        match (occ.first(), occ.last()) {
            (Some(&f), Some(&l)) => (f, l),
            _ => (0, 0),
        }
    }

    // ----- rooting -------------------------------------------------

    /// The rotation cut position for rerooting at `v`: the start of
    /// the first traversal leaving `v`. `f(v)` is odd exactly when
    /// `v` is already the root (then this is 1 and the rotation is the
    /// identity); otherwise `f(v)` is `v`'s arrival entry and
    /// `f(v) + 1` begins the next traversal, which leaves from `v`.
    fn cut_position(&self, v: VertexId) -> u64 {
        let (f, _) = self.f_l(v);
        if f % 2 == 1 {
            f
        } else {
            f + 1
        }
    }

    pub(crate) fn reroot_uncharged(&mut self, v: VertexId) {
        let t = self.tour_of(v);
        let len = self.tour_len[&t];
        if len == 0 {
            return;
        }
        let cut = self.cut_position(v);
        if cut == 1 {
            return;
        }
        // Only the rerooted tour's shard is touched.
        // lint: allow(panic-reachability): shard invariant — every nonempty tour owns exactly one shard
        let shard = self.shards.get_mut(&t).expect("nonempty tour has a shard");
        for (_, rec) in shard.iter_mut() {
            for trav in [&mut rec.first, &mut rec.second] {
                trav.pos = (trav.pos + len - cut) % len + 1;
            }
            rec.normalize();
        }
    }

    /// Rotates the tour containing `v` so it starts (and ends) at
    /// `v`. `O(1)` rounds: gather `f(v)`, broadcast the rotation
    /// `(tour, L, cut)`, apply locally.
    pub fn reroot(&mut self, v: VertexId, ctx: &mut MpcContext) {
        ctx.exchange(2); // fetch f(v) from v's shard
        ctx.broadcast(3); // (tour id, L, cut)
        self.reroot_uncharged(v);
    }

    // ----- single-edge join / split -------------------------------

    pub(crate) fn join_uncharged(&mut self, e: Edge) {
        let (u, v) = e.endpoints();
        let (tu, tv) = (self.tour_of(u), self.tour_of(v));
        // lint: allow(panic-reachability): documented forest precondition — batch_join validates acyclicity upstream
        assert_ne!(tu, tv, "join would create a cycle: {e}");
        // lint: allow(panic-reachability): documented forest precondition — batch_join validates duplicates upstream
        assert!(!self.contains_edge(e), "edge {e} already in the forest");
        // Root the v-side tour at v, then splice it after u's arrival.
        self.reroot_uncharged(v);
        let len_v = self.tour_len[&tv];
        let (f_u, _) = self.f_l(u);
        let c = if f_u % 2 == 1 { f_u - 1 } else { f_u };
        // Shift u-side entries after the splice point (u's shard only).
        if let Some(shard) = self.shard_mut(tu) {
            for (_, rec) in shard.iter_mut() {
                for trav in [&mut rec.first, &mut rec.second] {
                    if trav.pos > c {
                        trav.pos += len_v + 4;
                    }
                }
            }
        }
        // Move the v-side shard wholesale into the splice window.
        let mut moved_shard = self.take_shard(tv);
        for (_, rec) in moved_shard.iter_mut() {
            rec.tour = tu;
            rec.shift((c + 2) as i64);
        }
        self.splice_shard_entries(tu, moved_shard);
        // Insert the new edge's two traversals.
        self.insert_edge_rec(
            e,
            EdgeRec {
                tour: tu,
                first: Traversal {
                    pos: c + 1,
                    from: u,
                },
                second: Traversal {
                    pos: c + len_v + 3,
                    from: v,
                },
            },
        );
        // Merge membership and length: splice the sorted member runs.
        // lint: allow(panic-reachability): membership invariant — tour_of returned tv, so its member list exists
        let mut moved = self.members.remove(&tv).expect("tour exists");
        for &w in &moved {
            self.vertex_tour[w as usize] = tu;
        }
        // lint: allow(panic-reachability): membership invariant — tour_of returned tu, so its member list exists
        let target = self.members.get_mut(&tu).expect("tour exists");
        target.append(&mut moved);
        target.sort_unstable();
        self.tour_len.remove(&tv);
        // lint: allow(panic-reachability): membership invariant — tour_of returned tu, so its length entry exists
        *self.tour_len.get_mut(&tu).expect("tour exists") += len_v + 4;
    }

    /// Links `e`, merging two tours (paper Lemma 5.1 "Join"). `O(1)`
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are already connected or the edge is
    /// already present.
    pub fn join(&mut self, e: Edge, ctx: &mut MpcContext) {
        ctx.exchange(4); // fetch f/ℓ of both endpoints
        ctx.broadcast(6); // rotation + splice instruction
        self.join_uncharged(e);
    }

    /// Builds a sorted member list from a region's edge endpoints.
    pub(crate) fn members_of_entries(entries: &[(Edge, EdgeRec)]) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = Vec::with_capacity(2 * entries.len());
        for (e, _) in entries {
            vs.push(e.u());
            vs.push(e.v());
        }
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    pub(crate) fn split_uncharged(&mut self, e: Edge) -> (TourId, TourId) {
        let rec = *self.edge_rec(e).expect("split of non-tree edge");
        self.remove_edge_rec(e);
        let t = rec.tour;
        let p = rec.first.pos;
        let q = rec.second.pos;
        let len = self.tour_len[&t];
        let child_id = self.fresh_id();
        let child_len = q - p - 2;
        let old_members = self.members.remove(&t).expect("tour exists");
        // Remap edge positions: partition the split tour's shard into
        // the root-side and detached-side shards by map-splice. A
        // vertex's side is derived from any incident surviving edge
        // (all of them land on its side); edge-less members become
        // fresh singletons.
        let old_shard = self.take_shard(t);
        let mut root_entries = Vec::new();
        let mut child_entries = Vec::new();
        for (edge, mut r) in old_shard {
            let inside = r.first.pos > p && r.first.pos < q;
            if inside {
                r.tour = child_id;
                r.shift(-((p + 1) as i64));
                child_entries.push((edge, r));
            } else {
                for trav in [&mut r.first, &mut r.second] {
                    if trav.pos > q + 1 {
                        trav.pos -= q - p + 2;
                    }
                }
                root_entries.push((edge, r));
            }
        }
        let root_side = Self::members_of_entries(&root_entries);
        let child_side = Self::members_of_entries(&child_entries);
        self.splice_shard_entries(t, root_entries);
        self.splice_shard_entries(child_id, child_entries);
        // Install the new tours. Singletons get fresh tours of length 0.
        for &w in &old_members {
            if self.adj[w as usize].is_empty() {
                let id = self.fresh_id();
                self.vertex_tour[w as usize] = id;
                self.tour_len.insert(id, 0);
                self.members.insert(id, vec![w]);
            }
        }
        let root_len = len - child_len - 4;
        for &w in &child_side {
            self.vertex_tour[w as usize] = child_id;
        }
        if !child_side.is_empty() {
            self.tour_len.insert(child_id, child_len);
            self.members.insert(child_id, child_side);
        }
        for &w in &root_side {
            self.vertex_tour[w as usize] = t;
        }
        if root_side.is_empty() {
            self.tour_len.remove(&t);
        } else {
            self.tour_len.insert(t, root_len);
            self.members.insert(t, root_side);
        }
        (t, child_id)
    }

    /// Cuts tree edge `e`, splitting one tour into two (paper
    /// Lemma 5.1 "Split"). Returns the two resulting tour ids (root
    /// side, detached side) — for endpoints that become singletons
    /// the returned id is superseded by their fresh singleton tour,
    /// query [`DistEtf::tour_of`] for the authoritative id. `O(1)`
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a forest edge.
    pub fn split(&mut self, e: Edge, ctx: &mut MpcContext) -> (TourId, TourId) {
        ctx.exchange(4); // fetch the edge's traversal positions
        ctx.broadcast(6); // interval + new tour ids
        self.split_uncharged(e)
    }

    // ----- path identification (Lemma 7.2) -------------------------

    /// Reports all tree edges on the unique path between `u` and `v`,
    /// which must share a tour. Each edge decides membership locally:
    /// the edge's subtree interval contains exactly one of `u`, `v`
    /// iff the path crosses it. `O(1)` rounds: broadcast
    /// `f/ℓ` of `u` and `v`; every machine tests its own edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` and `v` are in different tours.
    pub fn identify_path(&self, u: VertexId, v: VertexId, ctx: &mut MpcContext) -> Vec<Edge> {
        assert_eq!(
            self.tour_of(u),
            self.tour_of(v),
            "identify_path endpoints must be connected"
        );
        ctx.exchange(4);
        ctx.broadcast(4); // f(u), ℓ(u), f(v), ℓ(v)
        self.identify_path_local(u, v)
    }

    /// Round-free variant of [`DistEtf::identify_path`] for callers
    /// that batch many path queries under a single broadcast charge
    /// (the exact-MSF Case-2 step, Section 7.1.2).
    pub fn identify_path_local(&self, u: VertexId, v: VertexId) -> Vec<Edge> {
        if u == v {
            return Vec::new();
        }
        let t = self.tour_of(u);
        let (fu, lu) = self.f_l(u);
        let (fv, lv) = self.f_l(v);
        let in_subtree = |p: u64, q: u64, f: u64, l: u64| f > p && l <= q;
        self.tour_edges(t)
            .filter(|(_, r)| {
                let (lo, hi) = r.subtree_interval();
                // subtree entries are lo..=hi; interval delimiters are
                // (first.pos, second.pos] = (lo-1, hi].
                in_subtree(lo - 1, hi, fu, lu) != in_subtree(lo - 1, hi, fv, lv)
            })
            .map(|(e, _)| e)
            .collect()
    }
}

// The whole sharded representation is plain data — tour ids, sorted
// shards, member lists — so it travels verbatim. Loading re-checks the
// cross-structure invariants (lengths, key agreement, edge counts) the
// mutation paths maintain.
impl mpc_snapshot::Persist for DistEtf {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.vertex_tour.save(w);
        self.adj.save(w);
        self.shards.save(w);
        w.put_usize(self.edge_count);
        self.tour_len.save(w);
        self.members.save(w);
        w.put_u64(self.next_id);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let vertex_tour = Vec::<TourId>::load(r)?;
        let adj = Vec::<BTreeSet<VertexId>>::load(r)?;
        let shards = BTreeMap::<TourId, Shard>::load(r)?;
        let edge_count = r.take_usize()?;
        let tour_len = BTreeMap::<TourId, u64>::load(r)?;
        let members = BTreeMap::<TourId, Vec<VertexId>>::load(r)?;
        let next_id = r.take_u64()?;
        let corrupt = |what: String| Err(mpc_snapshot::SnapshotError::Corrupt(what));
        if vertex_tour.len() != n || adj.len() != n {
            return corrupt(format!(
                "forest over {n} vertices has {} tour ids and {} adjacency rows",
                vertex_tour.len(),
                adj.len()
            ));
        }
        if shards.values().map(Vec::len).sum::<usize>() != edge_count {
            return corrupt(format!("shards disagree with edge count {edge_count}"));
        }
        if !tour_len.keys().eq(members.keys()) {
            return corrupt("tour-length and member tables disagree on live tours".into());
        }
        if vertex_tour.iter().any(|t| !tour_len.contains_key(t)) {
            return corrupt("a vertex points at a dead tour".into());
        }
        if next_id < n as TourId {
            return corrupt(format!(
                "tour id allocator {next_id} behind the range 0..{n}"
            ));
        }
        Ok(DistEtf {
            n,
            vertex_tour,
            adj,
            shards,
            edge_count,
            tour_len,
            members,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::validate;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(64, 0.5).build())
    }

    #[test]
    fn new_forest_is_singletons() {
        let etf = DistEtf::new(4);
        assert_eq!(etf.edge_count(), 0);
        for v in 0..4 {
            assert_eq!(etf.tour_of(v), v as u64);
            assert_eq!(etf.tour_len(v as u64), 0);
            assert_eq!(etf.f_l(v), (0, 0));
        }
        validate(&etf).expect("valid");
    }

    #[test]
    fn join_two_singletons() {
        let mut c = ctx();
        let mut etf = DistEtf::new(4);
        etf.join(Edge::new(0, 1), &mut c);
        assert_eq!(etf.tour_of(0), etf.tour_of(1));
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4);
        let rec = etf.edge_rec(Edge::new(0, 1)).expect("present");
        assert_eq!(rec.first.pos, 1);
        assert_eq!(rec.second.pos, 3);
        validate(&etf).expect("valid");
    }

    #[test]
    fn join_builds_path_and_star() {
        let mut c = ctx();
        // Path.
        let mut etf = DistEtf::new(8);
        for i in 0..7u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
            validate(&etf).expect("valid after path join");
        }
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4 * 7);
        // Star.
        let mut etf = DistEtf::new(8);
        for i in 1..8u32 {
            etf.join(Edge::new(0, i), &mut c);
            validate(&etf).expect("valid after star join");
        }
        assert_eq!(etf.occurrences(0).len(), 14);
    }

    #[test]
    fn join_two_paths_at_interior_vertices() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        for i in 0..3u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        for i in 4..7u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        // Join interior vertex 1 to interior vertex 5.
        etf.join(Edge::new(1, 5), &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_of(0), etf.tour_of(7));
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4 * 7);
    }

    #[test]
    fn reroot_keeps_tour_valid() {
        let mut c = ctx();
        let mut etf = DistEtf::new(6);
        for i in 0..5u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        for v in 0..6u32 {
            etf.reroot(v, &mut c);
            validate(&etf).expect("valid after reroot");
            let (f, _) = etf.f_l(v);
            assert_eq!(f, 1, "tour must start at the new root {v}");
        }
    }

    #[test]
    fn split_leaf_makes_singleton() {
        let mut c = ctx();
        let mut etf = DistEtf::new(4);
        etf.join(Edge::new(0, 1), &mut c);
        etf.join(Edge::new(1, 2), &mut c);
        etf.split(Edge::new(1, 2), &mut c);
        validate(&etf).expect("valid");
        assert_ne!(etf.tour_of(2), etf.tour_of(1));
        assert_eq!(etf.tour_len(etf.tour_of(2)), 0);
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4);
    }

    #[test]
    fn split_middle_of_path() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        for i in 0..7u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        etf.split(Edge::new(3, 4), &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_of(0), etf.tour_of(3));
        assert_eq!(etf.tour_of(4), etf.tour_of(7));
        assert_ne!(etf.tour_of(3), etf.tour_of(4));
        assert_eq!(etf.tour_len(etf.tour_of(0)), 12);
        assert_eq!(etf.tour_len(etf.tour_of(4)), 12);
    }

    #[test]
    fn split_then_rejoin_roundtrip() {
        let mut c = ctx();
        let mut etf = DistEtf::new(10);
        for i in 0..9u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        for mid in [2u32, 5, 7] {
            etf.split(Edge::new(mid, mid + 1), &mut c);
            validate(&etf).expect("valid after split");
            etf.join(Edge::new(mid, mid + 1), &mut c);
            validate(&etf).expect("valid after rejoin");
        }
        assert_eq!(etf.tour_len(etf.tour_of(0)), 36);
    }

    #[test]
    fn identify_path_on_path_graph() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        for i in 0..7u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        let mut path = etf.identify_path(2, 6, &mut c);
        path.sort();
        assert_eq!(
            path,
            vec![
                Edge::new(2, 3),
                Edge::new(3, 4),
                Edge::new(4, 5),
                Edge::new(5, 6)
            ]
        );
        assert!(etf.identify_path(3, 3, &mut c).is_empty());
    }

    #[test]
    fn identify_path_through_branching() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        // Star with center 0 plus a tail 1-5-6.
        for i in 1..5u32 {
            etf.join(Edge::new(0, i), &mut c);
        }
        etf.join(Edge::new(1, 5), &mut c);
        etf.join(Edge::new(5, 6), &mut c);
        let mut path = etf.identify_path(6, 3, &mut c);
        path.sort();
        assert_eq!(
            path,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 3),
                Edge::new(1, 5),
                Edge::new(5, 6)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "create a cycle")]
    fn join_cycle_panics() {
        let mut c = ctx();
        let mut etf = DistEtf::new(3);
        etf.join(Edge::new(0, 1), &mut c);
        etf.join(Edge::new(1, 2), &mut c);
        etf.join(Edge::new(0, 2), &mut c);
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn path_across_tours_panics() {
        let mut c = ctx();
        let etf = DistEtf::new(4);
        let _ = etf.identify_path(0, 1, &mut c);
    }

    #[test]
    fn words_track_edges() {
        let mut c = ctx();
        let mut etf = DistEtf::new(10);
        let w0 = etf.words();
        etf.join(Edge::new(0, 1), &mut c);
        assert_eq!(etf.words(), w0 + 6);
    }

    #[test]
    fn occurrences_count_is_twice_degree() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        etf.join(Edge::new(0, 1), &mut c);
        etf.join(Edge::new(1, 2), &mut c);
        etf.join(Edge::new(1, 3), &mut c);
        // Degree 3 vertex occurs 6 times; leaves occur twice.
        assert_eq!(etf.occurrences(1).len(), 6);
        assert_eq!(etf.occurrences(0).len(), 2);
        assert_eq!(etf.occurrences(3).len(), 2);
        // f/ℓ bracket every occurrence.
        let occ = etf.occurrences(1);
        let (f, l) = etf.f_l(1);
        assert_eq!(f, occ[0]);
        assert_eq!(l, *occ.last().unwrap());
    }

    #[test]
    fn subtree_interval_brackets_descendants() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        // 0 - 1 - 2 - 3 rooted wherever the ops left it; pick the
        // edge {1,2} and check its far side's occurrences sit inside
        // the subtree interval.
        for i in 0..3u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        etf.reroot(0, &mut c);
        let rec = *etf.edge_rec(Edge::new(1, 2)).unwrap();
        let (lo, hi) = rec.subtree_interval();
        for v in [2u32, 3] {
            let (f, l) = etf.f_l(v);
            assert!(f >= lo && l <= hi, "vertex {v} escapes subtree interval");
        }
        for v in [0u32, 1] {
            let (f, l) = etf.f_l(v);
            assert!(f < lo || l > hi, "vertex {v} must have occurrences outside");
        }
    }

    #[test]
    fn tour_members_and_lengths_consistent() {
        let mut c = ctx();
        let mut etf = DistEtf::new(10);
        for i in 0..4u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        etf.join(Edge::new(6, 7), &mut c);
        let big = etf.tour_of(0);
        let small = etf.tour_of(6);
        assert_eq!(etf.tour_members(big).len(), 5);
        assert_eq!(etf.tour_members(small).len(), 2);
        assert_eq!(etf.tour_len(big), 16);
        assert_eq!(etf.tour_len(small), 4);
        // Tours partition the vertex set.
        let total: usize = etf.tours().map(|t| etf.tour_members(t).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn reroot_singleton_is_noop() {
        let mut c = ctx();
        let mut etf = DistEtf::new(3);
        etf.reroot(1, &mut c);
        assert_eq!(etf.tour_len(etf.tour_of(1)), 0);
        validate(&etf).expect("valid");
    }

    #[test]
    fn ops_charge_constant_rounds() {
        let mut c = ctx();
        let mut etf = DistEtf::new(64);
        let budget = 3 * c.config().round_budget_per_primitive();
        for i in 0..10u32 {
            c.begin_phase("join");
            etf.join(Edge::new(i, i + 1), &mut c);
            let r = c.end_phase();
            assert!(r.rounds <= budget, "join rounds {} > {budget}", r.rounds);
        }
        c.begin_phase("split");
        etf.split(Edge::new(5, 6), &mut c);
        let r = c.end_phase();
        assert!(r.rounds <= budget);
    }
}
