//! Distributed Euler-tour forests (paper Sections 5 and 6.2).
//!
//! The connectivity and MSF algorithms maintain their spanning forest
//! as a collection of *Euler tours*: for each tree, a closed walk
//! that traverses every edge exactly twice, represented **only by
//! per-edge index positions** — every forest edge stores the four
//! positions at which its two traversals appear in its tree's tour,
//! and every vertex's first/last occurrence (`f(v)`, `ℓ(v)`) is
//! derived from its incident edges. This is exactly the paper's
//! representation: operations become *index arithmetic* driven by a
//! few broadcast words, which is what makes them `O(1)` MPC rounds.
//!
//! Operations ([`DistEtf`]):
//!
//! * `reroot` — rotate a tour to start at a given vertex
//!   (Lemma 5.1 "Rooting").
//! * `join` / `split` — link/cut a single edge (Lemma 5.1).
//! * `batch_join` — splice up to `k` trees along `k` new edges in one
//!   shot via the auxiliary-sequence construction of Section 6.2.
//! * `batch_split` — remove `k` tree edges in one shot, the laminar
//!   inverse of `batch_join` (Section 6.3).
//! * `identify_path` — report the tree path between two vertices by a
//!   purely local per-edge interval test (Lemma 7.2, used by the
//!   exact-MSF algorithm).
//!
//! Every operation takes an [`MpcContext`](mpc_sim::MpcContext) and
//! charges the broadcast/gather rounds the paper's protocol would
//! spend; all index updates are per-machine-local.
//!
//! The [`tour`] module provides an *intrinsic validator*: it checks
//! that the per-edge indices of every tour reassemble into a valid
//! closed Euler walk. The test suites run it after every operation.
//!
//! # Deviations from the paper's presentation
//!
//! The paper's Rooting formula rotates at `ℓ(u)`; with the
//! endpoint-sequence convention used here (each traversal contributes
//! its two endpoints), a valid cut point must lie on a traversal
//! boundary, so we rotate at the first *outgoing* traversal of the
//! new root instead (`f(u)+1` for a non-root, which is always such a
//! boundary). Likewise, instead of replaying the four-case
//! incremental shift derivation of Section 6.2 literally, the
//! coordinator computes the equivalent per-tree offset tables
//! (`O(k)` words, identical round cost) from the same auxiliary
//! sequence; the result is the same splice the paper describes,
//! without its case analysis. Both deviations are behaviour-
//! preserving and are validated by the intrinsic tour checker.

pub mod batch;
pub mod dist;
pub mod tour;

pub use dist::{DistEtf, TourId};
