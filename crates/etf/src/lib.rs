//! Distributed Euler-tour forests (paper Sections 5 and 6.2).
//!
//! The connectivity and MSF algorithms maintain their spanning forest
//! as a collection of *Euler tours*: for each tree, a closed walk
//! that traverses every edge exactly twice, represented **only by
//! per-edge index positions** — every forest edge stores the four
//! positions at which its two traversals appear in its tree's tour,
//! and every vertex's first/last occurrence (`f(v)`, `ℓ(v)`) is
//! derived from its incident edges. This is exactly the paper's
//! representation: operations become *index arithmetic* driven by a
//! few broadcast words, which is what makes them `O(1)` MPC rounds.
//!
//! # Per-tour sharded storage
//!
//! Edge records are stored in **per-tour shards** (`tour → sorted
//! edge array`, [`DistEtf::tour_edges`]), matching the paper's
//! protocol in which every machine remaps *its own* shard from an
//! `O(k)`-word broadcast plan. Reroot, join, split, and the batch
//! operations therefore touch only the affected tours' records —
//! `O(|tour|)` work per operation instead of `O(|forest|)` — and
//! tour-id reassignment moves whole shards by splice (a sorted-run
//! merge) rather than per-edge rewrites. Membership bookkeeping is
//! sharded the same way (sorted member list per tour), and is derived
//! from the partitioned edge shards during splits instead of
//! per-vertex occurrence scans.
//!
//! Operations ([`DistEtf`]):
//!
//! * `reroot` — rotate a tour to start at a given vertex
//!   (Lemma 5.1 "Rooting").
//! * `join` / `split` — link/cut a single edge (Lemma 5.1).
//! * `batch_join` — splice up to `k` trees along `k` new edges in one
//!   shot via the auxiliary-sequence construction of Section 6.2.
//! * `batch_split` — remove `k` tree edges in one shot, the laminar
//!   inverse of `batch_join` (Section 6.3).
//! * `identify_path` — report the tree path between two vertices by a
//!   purely local per-edge interval test (Lemma 7.2, used by the
//!   exact-MSF algorithm).
//!
//! Every operation takes an [`MpcContext`](mpc_sim::MpcContext) and
//! charges the broadcast/gather rounds the paper's protocol would
//! spend; all index updates are per-machine-local.
//!
//! The [`tour`] module provides an *intrinsic validator*: it checks
//! that the per-edge indices of every tour reassemble into a valid
//! closed Euler walk. The test suites run it after every operation.
//!
//! # Deviations from the paper's presentation
//!
//! The paper's Rooting formula rotates at `ℓ(u)`; with the
//! endpoint-sequence convention used here (each traversal contributes
//! its two endpoints), a valid cut point must lie on a traversal
//! boundary, so we rotate at the first *outgoing* traversal of the
//! new root instead (`f(u)+1` for a non-root, which is always such a
//! boundary). Likewise, instead of replaying the four-case
//! incremental shift derivation of Section 6.2 literally, the
//! coordinator computes the equivalent per-tree offset tables
//! (`O(k)` words, identical round cost) from the same auxiliary
//! sequence; the result is the same splice the paper describes,
//! without its case analysis. Finally, where the paper's machines
//! conceptually rewrite each edge record in place from the broadcast
//! plan, the simulator moves whole shards by **map-splice**: a tour
//! absorbed by a join (or a region produced by a split) has its
//! entire record array remapped once and merged into the destination
//! shard, which is the same `O(|affected tours|)` local work with far
//! better constants than per-edge rewrites. All deviations are
//! behaviour-preserving and are validated by the intrinsic tour
//! checker, which also checks the shard ↔ bookkeeping invariants
//! ([`tour::TourViolation::ShardMismatch`]).

#![forbid(unsafe_code)]

pub mod batch;
pub mod dist;
pub mod tour;

pub use dist::{DistEtf, TourId};
