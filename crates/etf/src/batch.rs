//! Batch join and split of Euler tours (paper Sections 6.2–6.3).
//!
//! `batch_join` splices up to `k` trees together along `k` new edges
//! in a constant number of rounds; `batch_split` removes `k` tree
//! edges at once. Both follow the paper's protocol shape:
//!
//! 1. the coordinator gathers `O(k)` words (tour ids, lengths,
//!    terminal `f`-values / traversal positions),
//! 2. it computes an `O(k)`-word *plan* — per-tour offsets and shift
//!    breakpoints derived from the auxiliary tree/sequence of
//!    Definition 6.2 (join) or the laminar interval family of the
//!    deleted edges (split),
//! 3. the plan is broadcast and every machine remaps the tour
//!    positions of its own edge shard locally.
//!
//! The per-entry arithmetic (`new = offset + old + shift(old)` with
//! `O(k)` breakpoints) is the closed form of the paper's four-case
//! shift-index / update-index procedure.

use crate::dist::{DistEtf, EdgeRec, Traversal};
use crate::TourId;
use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::oracle::UnionFind;
use mpc_sim::{MpcContext, WorkerPool};
use std::collections::{BTreeMap, BTreeSet};

/// Entries per lane claim below which a parallel shard remap cannot
/// amortize the scope's synchronization.
const REMAP_PAR_MIN: usize = 4096;

/// Applies the pure per-entry remap `f` to a shard, stealing entries
/// across the host pool's lanes for large shards. Each entry is
/// claimed by exactly one lane and `f` is position arithmetic with no
/// cross-entry state, so the result is bit-identical to the serial
/// walk (which is what small shards and `pool == None` get).
fn remap_entries(
    pool: Option<&WorkerPool>,
    shard: &mut [(Edge, EdgeRec)],
    f: impl Fn(&mut EdgeRec) + Sync,
) {
    match pool {
        Some(pool) if pool.lanes() >= 2 && shard.len() >= REMAP_PAR_MIN => {
            pool.steal_each(shard, |(_, rec)| f(rec));
        }
        _ => {
            for (_, rec) in shard {
                f(rec);
            }
        }
    }
}

/// Per-tour remapping plan broadcast to all machines during a batch
/// join: entry `x` of the tour maps to
/// `offset + x + Σ{weight_i : breakpoint_i < x}`.
#[derive(Debug, Clone, Default)]
struct NodePlan {
    offset: u64,
    /// `(c, cumulative_weight_after)` sorted by `c`: the shift for
    /// position `x` is the cumulative weight of the last breakpoint
    /// strictly below `x`.
    breakpoints: Vec<(u64, u64)>,
}

impl NodePlan {
    fn shift(&self, x: u64) -> u64 {
        // Largest breakpoint with c < x.
        match self.breakpoints.partition_point(|&(c, _)| c < x) {
            0 => 0,
            i => self.breakpoints[i - 1].1,
        }
    }

    fn map(&self, x: u64) -> u64 {
        self.offset + x + self.shift(x)
    }
}

impl DistEtf {
    /// Splices trees together along `edges` in `O(1)` rounds
    /// (Lemma 6.4). The edges must form a forest over the current
    /// tours: every edge connects two distinct tours and no subset
    /// closes a cycle — the connectivity layer guarantees this by
    /// first computing a spanning forest `F_H` of the auxiliary graph
    /// (Claim 6.1).
    ///
    /// # Panics
    ///
    /// Panics if an edge connects vertices of the same tour or if the
    /// auxiliary graph contains a cycle or duplicate edge.
    pub fn batch_join(&mut self, edges: &[Edge], ctx: &mut MpcContext) {
        if edges.is_empty() {
            return;
        }
        let k = edges.len() as u64;
        // Round cost: gather edge endpoints + tour ids; multicast the
        // rotation and splice plans (O(k) records, delivered to the
        // machines holding each tour's shard by a constant-round
        // sort-based multicast [GSZ'11]); re-gather terminal
        // f-values; broadcast O(1) control words.
        // lint: allow(panic-reachability): capacity precondition — MSF batches are sized to one machine by the caller
        ctx.gather(4 * k).expect("batch fits one machine");
        ctx.sort(4 * k);
        ctx.exchange(2 * k);
        ctx.sort(8 * k);
        ctx.broadcast(4);
        self.batch_join_pooled(edges, ctx.pool());
    }

    /// [`DistEtf::batch_join`] without the round charge, with an
    /// optional host pool for the local shard-remap passes (step 3 of
    /// the protocol — the "every machine remaps its own shard
    /// locally" step, which is exactly the part a host thread per
    /// span can execute).
    fn batch_join_pooled(&mut self, edges: &[Edge], pool: Option<&WorkerPool>) {
        // --- validate forest structure over tours -----------------
        let mut tour_index: BTreeMap<TourId, usize> = BTreeMap::new();
        for &e in edges {
            for v in [e.u(), e.v()] {
                let t = self.tour_of(v);
                let next = tour_index.len();
                tour_index.entry(t).or_insert(next);
            }
        }
        let mut uf = UnionFind::new(tour_index.len());
        for &e in edges {
            let a = tour_index[&self.tour_of(e.u())] as u32;
            let b = tour_index[&self.tour_of(e.v())] as u32;
            // lint: allow(panic-reachability): documented "# Panics" precondition — ExactMsf rejects non-forest batches upstream
            assert!(
                a != b && uf.union(a, b),
                "batch_join edges must form a forest over tours (edge {e})"
            );
        }
        // --- group edges into auxiliary components ----------------
        let mut comp_edges: BTreeMap<u32, Vec<Edge>> = BTreeMap::new();
        for &e in edges {
            let root = uf.find(tour_index[&self.tour_of(e.u())] as u32);
            comp_edges.entry(root).or_default().push(e);
        }
        for (_, comp) in comp_edges {
            if let [e] = comp[..] {
                self.join_single(e, pool);
            } else {
                self.join_component(&comp, pool);
            }
        }
    }

    /// Joins one single-edge auxiliary component — the dominant
    /// component shape — without the general auxiliary-tree
    /// machinery: the larger tour anchors in place (only its tail
    /// past the attach point shifts), the smaller tour is rerooted at
    /// its attach terminal and spliced into the gap. Produces exactly
    /// the tour [`DistEtf::join_component`] would.
    fn join_single(&mut self, e: Edge, pool: Option<&WorkerPool>) {
        let (tu, tv) = (self.tour_of(e.u()), self.tour_of(e.v()));
        let (root, child, u_root, v_child) = if self.tour_len(tu) >= self.tour_len(tv) {
            (tu, tv, e.u(), e.v())
        } else {
            (tv, tu, e.v(), e.u())
        };
        self.reroot_uncharged(v_child);
        let root_len = self.tour_len(root);
        let w = self.tour_len(child);
        let (f_u, _) = self.f_l(u_root);
        let c = if f_u % 2 == 1 { f_u - 1 } else { f_u };
        // Root tail shift: positions strictly above the attach point
        // make room for the child block of w + 4 entries.
        if let Some(shard) = self.shard_mut(root) {
            remap_entries(pool, shard, |rec| {
                for trav in [&mut rec.first, &mut rec.second] {
                    if trav.pos > c {
                        trav.pos += w + 4;
                    }
                }
            });
        }
        // Child block: old position x lands at c + 2 + x.
        let mut merged = self.take_shard(child);
        remap_entries(pool, &mut merged, |rec| {
            rec.tour = root;
            rec.first.pos += c + 2;
            rec.second.pos += c + 2;
        });
        merged.reserve(1);
        self.add_adjacency(e);
        merged.push((
            e,
            EdgeRec {
                tour: root,
                first: Traversal {
                    pos: c + 1,
                    from: u_root,
                },
                second: Traversal {
                    pos: c + w + 3,
                    from: v_child,
                },
            },
        ));
        self.splice_shard_entries(root, merged);
        // Membership: only the child's members change tour; its
        // sorted run merges into the root's list in place.
        let extra = self.remove_tour_bookkeeping(child);
        for &x in &extra {
            self.set_vertex_tour(x, root);
        }
        self.merge_members_into(root, extra);
        self.set_tour_len(root, root_len + w + 4);
    }

    /// Joins one auxiliary-tree component.
    fn join_component(&mut self, comp: &[Edge], pool: Option<&WorkerPool>) {
        // Auxiliary adjacency: tour -> (edge, local endpoint, remote
        // endpoint, remote tour).
        let mut aux: BTreeMap<TourId, Vec<(Edge, VertexId, VertexId, TourId)>> = BTreeMap::new();
        for &e in comp {
            let (tu, tv) = (self.tour_of(e.u()), self.tour_of(e.v()));
            aux.entry(tu).or_default().push((e, e.u(), e.v(), tv));
            aux.entry(tv).or_default().push((e, e.v(), e.u(), tu));
        }
        // Anchor the merge at the *largest* participating tour: the
        // root is never rerooted, keeps its tour id, its shard order,
        // and its members' tour assignments — so the dominant cost of
        // a join is proportional to the smaller tours plus the shifted
        // tail of the root, not to the whole merged component.
        // An empty component joins nothing.
        let Some(&first_tour) = aux.keys().next() else {
            return;
        };
        let root: TourId = {
            let mut best = first_tour;
            for &t in aux.keys().skip(1) {
                // Strictly greater: ties keep the smallest id, which
                // also keeps the merged runs in ascending key order.
                if self.tour_len(t) > self.tour_len(best) {
                    best = t;
                }
            }
            best
        };
        // BFS: assign parents; child nodes must be rooted at their
        // attach terminal before f-values are read.
        let mut order: Vec<TourId> = vec![root];
        let mut parent_edge: BTreeMap<TourId, (VertexId, VertexId)> = BTreeMap::new(); // child -> (u in parent, v in child)
        let mut visited: BTreeSet<TourId> = BTreeSet::from([root]);
        let mut frontier = vec![root];
        while let Some(a) = frontier.pop() {
            for &(_, local, remote, remote_tour) in &aux[&a] {
                if visited.insert(remote_tour) {
                    parent_edge.insert(remote_tour, (local, remote));
                    order.push(remote_tour);
                    frontier.push(remote_tour);
                }
            }
        }
        // Rotate every non-root node to start at its attach terminal
        // (the paper's per-node Rooting step; one broadcast covers all
        // rotations, charged by the caller).
        for t in &order[1..] {
            let (_, v_child) = parent_edge[t];
            self.reroot_uncharged(v_child);
        }
        // Children of each node, sorted by even-ized attach position.
        #[derive(Debug)]
        struct Child {
            c: u64,
            child: TourId,
            u: VertexId,
            v: VertexId,
        }
        let mut children: BTreeMap<TourId, Vec<Child>> = BTreeMap::new();
        for &t in &order {
            children.entry(t).or_default();
        }
        for (&child, &(u, v)) in &parent_edge {
            let parent = self.tour_of(u);
            let (f_u, _) = self.f_l(u);
            let c = if f_u % 2 == 1 { f_u - 1 } else { f_u };
            children
                .get_mut(&parent)
                // lint: allow(panic-reachability): traversal invariant — silently dropping a child would corrupt the merge plan
                .expect("parent visited")
                .push(Child { c, child, u, v });
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|ch| (ch.c, ch.child));
        }
        // Post-order totals.
        let mut total: BTreeMap<TourId, u64> = BTreeMap::new();
        for &t in order.iter().rev() {
            let own = self.tour_len(t);
            let kids_total: u64 = children[&t].iter().map(|ch| total[&ch.child] + 4).sum();
            total.insert(t, own + kids_total);
        }
        // Pre-order offsets, breakpoints, and new edge records. The
        // merged tour keeps the root's id (cf. `split_tour`, whose
        // root region keeps the split tour's id).
        let new_tour = root;
        let mut plans: BTreeMap<TourId, NodePlan> = BTreeMap::new();
        plans.insert(
            root,
            NodePlan {
                offset: 0,
                breakpoints: Vec::new(),
            },
        );
        let mut new_recs: Vec<(Edge, EdgeRec)> = Vec::new();
        for &t in &order {
            let offset = plans[&t].offset;
            let mut running = 0u64;
            let mut breakpoints = Vec::new();
            for ch in &children[&t] {
                let block_start = offset + ch.c + running;
                let w = total[&ch.child];
                new_recs.push((
                    Edge::new(ch.u, ch.v),
                    EdgeRec {
                        tour: new_tour,
                        first: Traversal {
                            pos: block_start + 1,
                            from: ch.u,
                        },
                        second: Traversal {
                            pos: block_start + w + 3,
                            from: ch.v,
                        },
                    },
                ));
                plans.insert(
                    ch.child,
                    NodePlan {
                        offset: block_start + 2,
                        breakpoints: Vec::new(),
                    },
                );
                running += w + 4;
                breakpoints.push((ch.c, running));
            }
            // lint: allow(panic-reachability): map invariant — every tour in `order` received a plan in the pre-order pass
        plans.get_mut(&t).expect("inserted above").breakpoints = breakpoints;
        }
        // Local application: tours outside the component are never
        // visited, and the root adapts to the merge shape. When the
        // root dominates (the common incremental case: small trees
        // attach to one big tour), its shard is remapped in place —
        // edge keys, and so the shard order, never change — and only
        // the child records are spliced in. When the children carry
        // most of the edges, rebuilding the whole merged shard in one
        // pass is cheaper than merging into the root.
        let child_edges: u64 = order[1..].iter().map(|&t| self.tour_len(t) / 4).sum();
        let rebuild = child_edges >= self.tour_len(root) / 4;
        // lint: allow(panic-reachability): map invariant — the root is in `order`, so the pre-order pass planned it
        let root_plan = plans.remove(&root).expect("root planned");
        let mut merged: Vec<(Edge, EdgeRec)> =
            Vec::with_capacity(child_edges as usize + new_recs.len());
        if rebuild {
            let mut shard = self.take_shard(root);
            remap_entries(pool, &mut shard, |rec| {
                rec.first.pos = root_plan.map(rec.first.pos);
                rec.second.pos = root_plan.map(rec.second.pos);
            });
            merged = shard;
            merged.reserve(child_edges as usize + new_recs.len());
        } else if let Some(shard) = self.shard_mut(root) {
            remap_entries(pool, shard, |rec| {
                rec.first.pos = root_plan.map(rec.first.pos);
                rec.second.pos = root_plan.map(rec.second.pos);
            });
        }
        for &t in &order[1..] {
            let plan = &plans[&t];
            let mut shard = self.take_shard(t);
            remap_entries(pool, &mut shard, |rec| {
                rec.first.pos = plan.map(rec.first.pos);
                rec.second.pos = plan.map(rec.second.pos);
                rec.tour = new_tour;
            });
            merged.append(&mut shard);
        }
        // The k new edges ride the same splice instead of k separate
        // shard inserts; only their adjacency entries are per-edge.
        for (e, rec) in new_recs {
            self.add_adjacency(e);
            merged.push((e, rec));
        }
        self.splice_shard_entries(new_tour, merged);
        // Merge membership and length bookkeeping: the root's members
        // keep their tour assignment (the merged tour is the root's),
        // so only the child runs are relabelled, then merged into the
        // root's sorted member list with one two-pointer pass.
        let mut extra: Vec<VertexId> = Vec::new();
        for &t in &order[1..] {
            extra.extend(self.remove_tour_bookkeeping(t));
        }
        for &w in &extra {
            self.set_vertex_tour(w, new_tour);
        }
        extra.sort_unstable();
        let root_members = self.remove_tour_bookkeeping(root);
        let member_vec = crate::dist::merge_sorted_runs(&root_members, &extra, |&v| v);
        let len = total[&root];
        self.install_tour(new_tour, len, member_vec);
    }

    /// Removes `edges` (all forest edges) in `O(1)` rounds, splitting
    /// their tours along the laminar family of subtree intervals
    /// (Section 6.3). Returns the ids of all resulting tours
    /// (including fresh singleton tours).
    ///
    /// # Panics
    ///
    /// Panics if any edge is not a forest edge.
    pub fn batch_split(&mut self, edges: &[Edge], ctx: &mut MpcContext) -> Vec<TourId> {
        if edges.is_empty() {
            return Vec::new();
        }
        let k = edges.len() as u64;
        // lint: allow(panic-reachability): capacity precondition — MSF batches are sized to one machine by the caller
        ctx.gather(4 * k).expect("batch fits one machine");
        ctx.sort(8 * k);
        ctx.broadcast(4);
        self.batch_split_uncharged(edges)
    }

    pub(crate) fn batch_split_uncharged(&mut self, edges: &[Edge]) -> Vec<TourId> {
        // Group the deleted edges by tour and capture their intervals;
        // each affected shard then drops its doomed edges in a single
        // retain pass instead of k individual removals.
        let mut by_tour: BTreeMap<TourId, Vec<(u64, u64)>> = BTreeMap::new();
        let mut doomed: BTreeMap<TourId, BTreeSet<Edge>> = BTreeMap::new();
        for &e in edges {
            let rec = *self
                .edge_rec(e)
                // lint: allow(panic-reachability): documented "# Panics" precondition — ExactMsf deletes only tracked tree edges
                .unwrap_or_else(|| panic!("batch_split of non-tree edge {e}"));
            by_tour
                .entry(rec.tour)
                .or_default()
                .push((rec.first.pos, rec.second.pos));
            doomed.entry(rec.tour).or_default().insert(e);
        }
        for (&t, doomed_edges) in &doomed {
            self.remove_edges_from_shard(t, doomed_edges);
        }
        let mut result_tours = Vec::new();
        for (t, mut intervals) in by_tour {
            intervals.sort_unstable();
            result_tours.extend(self.split_tour(t, &intervals));
        }
        result_tours
    }

    /// Splits one tour along a sorted laminar family of deleted-edge
    /// intervals `(p_i, q_i)` (block `[p_i, q_i+1]` removed).
    fn split_tour(&mut self, t: TourId, intervals: &[(u64, u64)]) -> Vec<TourId> {
        const ROOT: usize = usize::MAX;
        let n_int = intervals.len();
        // Laminar nesting via a stack sweep.
        let mut parent = vec![ROOT; n_int];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_int + 1]; // last = root region
        let child_slot = |r: usize| if r == ROOT { n_int } else { r };
        let mut stack: Vec<usize> = Vec::new();
        for (i, &(p, _q)) in intervals.iter().enumerate() {
            while let Some(&top) = stack.last() {
                if intervals[top].1 + 1 < p {
                    stack.pop();
                } else {
                    break;
                }
            }
            parent[i] = stack.last().copied().unwrap_or(ROOT);
            children[child_slot(parent[i])].push(i);
            stack.push(i);
        }
        // Per-region cumulative removed-words tables: direct children
        // sorted by start; entry `(end_of_block, cumulative_size)`.
        let block_size = |i: usize| intervals[i].1 - intervals[i].0 + 2;
        let region_table: Vec<Vec<(u64, u64)>> = (0..=n_int)
            .map(|r| {
                let mut cum = 0;
                children[r]
                    .iter()
                    .map(|&c| {
                        cum += block_size(c);
                        (intervals[c].1 + 1, cum)
                    })
                    .collect()
            })
            .collect();
        let removed_before = |r: usize, x: u64| -> u64 {
            let table = &region_table[child_slot(r)];
            match table.partition_point(|&(end, _)| end < x) {
                0 => 0,
                i => table[i - 1].1,
            }
        };
        let base_sub = |r: usize| -> u64 {
            if r == ROOT {
                0
            } else {
                intervals[r].0 + 1
            }
        };
        // Flatten the laminar family into sorted (start, region)
        // segments so every locate is one binary search: segment `r`
        // owns positions from its start up to the next start. (The
        // deleted block positions themselves are never queried —
        // their edges left the shard already.)
        let segs: Vec<(u64, usize)> = {
            let mut segs = Vec::with_capacity(2 * n_int + 1);
            segs.push((0u64, ROOT));
            let mut stack: Vec<usize> = Vec::new();
            for (i, &(p, _)) in intervals.iter().enumerate() {
                while let Some(&top) = stack.last() {
                    if intervals[top].1 + 1 < p {
                        stack.pop();
                        let resume = stack.last().copied().unwrap_or(ROOT);
                        segs.push((intervals[top].1 + 1, resume));
                    } else {
                        break;
                    }
                }
                segs.push((p + 1, i));
                stack.push(i);
            }
            while let Some(top) = stack.pop() {
                let resume = stack.last().copied().unwrap_or(ROOT);
                segs.push((intervals[top].1 + 1, resume));
            }
            segs
        };
        // Innermost deleted interval strictly containing position x.
        let locate = |x: u64| -> usize {
            let i = segs.partition_point(|&(start, _)| start <= x);
            segs[i - 1].1
        };
        // Fresh tour ids per nonroot region.
        let region_ids: Vec<TourId> = (0..n_int).map(|_| self.fresh_id()).collect();
        let tour_of_region = |r: usize| -> TourId {
            if r == ROOT {
                t
            } else {
                region_ids[r]
            }
        };
        let old_members = self.remove_tour_bookkeeping(t);
        // Remap surviving edges of this tour: partition its shard into
        // one shard per region and splice each in — untouched tours'
        // shards are never visited.
        let old_shard = self.take_shard(t);
        let mut region_entries: Vec<Vec<(Edge, EdgeRec)>> = vec![Vec::new(); n_int + 1];
        for (edge, mut rec) in old_shard {
            let r = locate(rec.first.pos);
            rec.tour = tour_of_region(r);
            for trav in [&mut rec.first, &mut rec.second] {
                trav.pos = trav.pos - base_sub(r) - removed_before(r, trav.pos);
            }
            region_entries[child_slot(r)].push((edge, rec));
        }
        let root_region_edges = region_entries[n_int].len() as u64;
        // Region membership derives from the partitioned edges (every
        // incident surviving edge lands on its vertex's region);
        // edge-less members become fresh singletons.
        let mut region_members: Vec<Vec<VertexId>> = region_entries
            .iter()
            .map(|entries| DistEtf::members_of_entries(entries))
            .collect();
        for (slot, entries) in region_entries.into_iter().enumerate() {
            let id = if slot == n_int { t } else { region_ids[slot] };
            self.splice_shard_entries(id, entries);
        }
        let mut singleton_ids = Vec::new();
        for &w in &old_members {
            if self.neighbors(w).is_empty() {
                let id = self.fresh_id();
                self.set_vertex_tour(w, id);
                self.install_tour(id, 0, vec![w]);
                singleton_ids.push(id);
            }
        }
        // Region lengths.
        let direct_removed =
            |r: usize| -> u64 { children[child_slot(r)].iter().map(|&c| block_size(c)).sum() };
        let mut result = singleton_ids;
        for r in (0..n_int).map(Some).chain([None]) {
            let (region, raw_len) = match r {
                Some(i) => {
                    let (p, q) = intervals[i];
                    (i, q - p - 2)
                }
                None => {
                    // Root region keeps whatever was not removed; its
                    // raw length is derived from the member edges, but
                    // it is easier to reconstruct as max position,
                    // which equals raw region length after remap. Use
                    // edge count × 4 (validated by the tour checker).
                    (ROOT, 0)
                }
            };
            let id = tour_of_region(region);
            let members = std::mem::take(&mut region_members[child_slot(region)]);
            if members.is_empty() {
                continue;
            }
            let len = match r {
                Some(_) => raw_len - direct_removed(region),
                None => 4 * root_region_edges,
            };
            for &w in &members {
                self.set_vertex_tour(w, id);
            }
            self.install_tour(id, len, members);
            result.push(id);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::validate;
    use mpc_sim::MpcConfig;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn ctx() -> MpcContext {
        // Capacity sized so the test batches (up to 32 edges) pass the
        // gather gate; the gate itself is covered by mpc-sim tests.
        MpcContext::new(MpcConfig::builder(256, 0.5).local_capacity(4096).build())
    }

    #[test]
    fn batch_join_two_singletons() {
        let mut c = ctx();
        let mut etf = DistEtf::new(4);
        etf.batch_join(&[Edge::new(0, 1)], &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_of(0), etf.tour_of(1));
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4);
    }

    #[test]
    fn batch_join_chain_of_singletons() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        let edges: Vec<Edge> = (0..7u32).map(|i| Edge::new(i, i + 1)).collect();
        etf.batch_join(&edges, &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_len(etf.tour_of(0)), 28);
    }

    #[test]
    fn batch_join_star_of_singletons() {
        let mut c = ctx();
        let mut etf = DistEtf::new(9);
        let edges: Vec<Edge> = (1..9u32).map(|i| Edge::new(0, i)).collect();
        etf.batch_join(&edges, &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.occurrences(0).len(), 16);
    }

    #[test]
    fn batch_join_existing_trees() {
        let mut c = ctx();
        let mut etf = DistEtf::new(12);
        // Three paths of 4 vertices each.
        for base in [0u32, 4, 8] {
            for i in 0..3 {
                etf.join(Edge::new(base + i, base + i + 1), &mut c);
            }
        }
        // Join them at interior vertices in one batch.
        etf.batch_join(&[Edge::new(1, 6), Edge::new(5, 10)], &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_of(0), etf.tour_of(11));
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4 * 11);
    }

    #[test]
    fn batch_join_multiple_children_same_terminal() {
        let mut c = ctx();
        let mut etf = DistEtf::new(10);
        for i in 0..2u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        // Three separate trees all attach to vertex 1.
        etf.batch_join(&[Edge::new(1, 5), Edge::new(1, 6), Edge::new(1, 7)], &mut c);
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_members(etf.tour_of(1)).len(), 6);
    }

    #[test]
    fn batch_join_deep_auxiliary_tree() {
        let mut c = ctx();
        let mut etf = DistEtf::new(16);
        // Four paths; chain them through a deep auxiliary tree.
        for base in [0u32, 4, 8, 12] {
            for i in 0..3 {
                etf.join(Edge::new(base + i, base + i + 1), &mut c);
            }
        }
        etf.batch_join(
            &[Edge::new(2, 4), Edge::new(6, 9), Edge::new(11, 13)],
            &mut c,
        );
        validate(&etf).expect("valid");
        assert_eq!(etf.tour_len(etf.tour_of(0)), 4 * 15);
    }

    #[test]
    #[should_panic(expected = "forest over tours")]
    fn batch_join_cycle_panics() {
        let mut c = ctx();
        let mut etf = DistEtf::new(4);
        etf.batch_join(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)], &mut c);
    }

    #[test]
    fn batch_split_middle_edges() {
        let mut c = ctx();
        let mut etf = DistEtf::new(12);
        for i in 0..11u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        let out = etf.batch_split(&[Edge::new(3, 4), Edge::new(7, 8)], &mut c);
        validate(&etf).expect("valid");
        assert_eq!(out.len(), 3);
        assert_eq!(etf.tour_of(0), etf.tour_of(3));
        assert_eq!(etf.tour_of(4), etf.tour_of(7));
        assert_eq!(etf.tour_of(8), etf.tour_of(11));
        assert_ne!(etf.tour_of(3), etf.tour_of(4));
        assert_ne!(etf.tour_of(7), etf.tour_of(8));
    }

    #[test]
    fn batch_split_nested_subtrees() {
        let mut c = ctx();
        let mut etf = DistEtf::new(8);
        // Caterpillar: path 0-1-2-3 with leaves 4,5 on 1 and 6,7 on 2.
        for i in 0..3u32 {
            etf.join(Edge::new(i, i + 1), &mut c);
        }
        etf.join(Edge::new(1, 4), &mut c);
        etf.join(Edge::new(1, 5), &mut c);
        etf.join(Edge::new(2, 6), &mut c);
        etf.join(Edge::new(2, 7), &mut c);
        // Delete a nested pair: the edge into 2's subtree and an edge
        // inside it.
        let out = etf.batch_split(&[Edge::new(1, 2), Edge::new(2, 6)], &mut c);
        validate(&etf).expect("valid");
        assert!(out.len() >= 3);
        assert_eq!(etf.tour_of(0), etf.tour_of(5));
        assert_eq!(etf.tour_of(2), etf.tour_of(3));
        assert_eq!(etf.tour_of(2), etf.tour_of(7));
        assert_ne!(etf.tour_of(1), etf.tour_of(2));
        assert_ne!(etf.tour_of(6), etf.tour_of(2));
        assert_eq!(etf.tour_len(etf.tour_of(6)), 0);
    }

    #[test]
    fn batch_split_everything() {
        let mut c = ctx();
        let mut etf = DistEtf::new(5);
        let edges: Vec<Edge> = (0..4u32).map(|i| Edge::new(i, i + 1)).collect();
        etf.batch_join(&edges, &mut c);
        let out = etf.batch_split(&edges, &mut c);
        validate(&etf).expect("valid");
        assert_eq!(out.len(), 5);
        for v in 0..5u32 {
            assert_eq!(etf.tour_len(etf.tour_of(v)), 0);
        }
    }

    #[test]
    fn randomized_batch_churn_stays_valid() {
        let mut rng = StdRng::seed_from_u64(20240);
        for trial in 0..20 {
            let n = 24usize;
            let mut c = ctx();
            let mut etf = DistEtf::new(n);
            let mut live: Vec<Edge> = Vec::new();
            for step in 0..12 {
                if rng.gen_bool(0.6) || live.is_empty() {
                    // Batch join: random forest edges between distinct
                    // tours (and distinct tour pairs within the batch).
                    let mut batch = Vec::new();
                    let mut uf_tours: BTreeMap<TourId, u32> = BTreeMap::new();
                    let mut uf = UnionFind::new(n);
                    let mut attempts = 0;
                    while batch.len() < 4 && attempts < 200 {
                        attempts += 1;
                        let a = rng.gen_range(0..n as u32);
                        let b = rng.gen_range(0..n as u32);
                        if a == b {
                            continue;
                        }
                        let (ta, tb) = (etf.tour_of(a), etf.tour_of(b));
                        if ta == tb {
                            continue;
                        }
                        let next = uf_tours.len() as u32;
                        let ia = *uf_tours.entry(ta).or_insert(next);
                        let next = uf_tours.len() as u32;
                        let ib = *uf_tours.entry(tb).or_insert(next);
                        if !uf.union(ia, ib) {
                            continue;
                        }
                        batch.push(Edge::new(a, b));
                    }
                    if !batch.is_empty() {
                        etf.batch_join(&batch, &mut c);
                        live.extend(&batch);
                    }
                } else {
                    // Batch split: random subset of live edges.
                    live.shuffle(&mut rng);
                    let take = rng.gen_range(1..=live.len().min(4));
                    let batch: Vec<Edge> = live.drain(..take).collect();
                    etf.batch_split(&batch, &mut c);
                }
                validate(&etf).unwrap_or_else(|v| {
                    panic!("trial {trial} step {step}: {v}");
                });
            }
        }
    }

    #[test]
    fn batch_ops_charge_constant_rounds() {
        let mut c = ctx();
        let mut etf = DistEtf::new(64);
        let edges: Vec<Edge> = (0..32u32).map(|i| Edge::new(2 * i, 2 * i + 1)).collect();
        c.begin_phase("batch-join");
        etf.batch_join(&edges, &mut c);
        let r = c.end_phase();
        let budget = 5 * c.config().round_budget_per_primitive();
        assert!(r.rounds <= budget, "join {} > {budget}", r.rounds);
        c.begin_phase("batch-split");
        etf.batch_split(&edges, &mut c);
        let r = c.end_phase();
        assert!(r.rounds <= budget, "split {} > {budget}", r.rounds);
    }
}
