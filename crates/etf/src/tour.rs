//! Intrinsic validation of the distributed tour representation.
//!
//! [`validate`] reconstructs every tour from the per-edge index
//! positions alone and checks that it is a well-formed closed Euler
//! walk of its tree. The test suites call it after every operation, so
//! any index-arithmetic bug in rooting, splicing, or splitting is
//! caught at the operation that introduced it.

use crate::dist::{DistEtf, TourId};
use mpc_graph::ids::VertexId;
use std::collections::{BTreeMap, BTreeSet};

/// A violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TourViolation {
    /// Tour length is not a multiple of 4 (each edge contributes 4
    /// entries).
    BadLength {
        /// Offending tour.
        tour: TourId,
        /// Its recorded length.
        len: u64,
    },
    /// Two entries claim the same position.
    PositionClash {
        /// Offending tour.
        tour: TourId,
        /// The contested position.
        pos: u64,
    },
    /// Positions do not cover `1..=len` exactly.
    PositionGap {
        /// Offending tour.
        tour: TourId,
        /// First uncovered position.
        pos: u64,
    },
    /// The walk is not continuous (`to` of one traversal differs from
    /// `from` of the next) or not closed.
    BrokenWalk {
        /// Offending tour.
        tour: TourId,
        /// Boundary position at which continuity fails.
        pos: u64,
    },
    /// A traversal starts at an even position.
    MisalignedTraversal {
        /// Offending tour.
        tour: TourId,
        /// The traversal's start position.
        pos: u64,
    },
    /// A vertex's recorded tour disagrees with where its edges are.
    WrongTourLabel {
        /// The mislabelled vertex.
        vertex: VertexId,
    },
    /// Recorded length differs from `4 × (#edges)`.
    LengthMismatch {
        /// Offending tour.
        tour: TourId,
        /// Recorded length.
        recorded: u64,
        /// Length implied by the edge count.
        implied: u64,
    },
    /// An edge shard disagrees with the tour bookkeeping: the shard's
    /// tour id has no length/membership record, or a record inside it
    /// carries a different tour id than its shard key.
    ShardMismatch {
        /// The shard's tour id.
        tour: TourId,
    },
}

impl std::fmt::Display for TourViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TourViolation::BadLength { tour, len } => {
                write!(f, "tour {tour}: length {len} not divisible by 4")
            }
            TourViolation::PositionClash { tour, pos } => {
                write!(f, "tour {tour}: two entries at position {pos}")
            }
            TourViolation::PositionGap { tour, pos } => {
                write!(f, "tour {tour}: no entry at position {pos}")
            }
            TourViolation::BrokenWalk { tour, pos } => {
                write!(f, "tour {tour}: walk discontinuity at position {pos}")
            }
            TourViolation::MisalignedTraversal { tour, pos } => {
                write!(f, "tour {tour}: traversal starts at even position {pos}")
            }
            TourViolation::WrongTourLabel { vertex } => {
                write!(f, "vertex {vertex} carries the wrong tour id")
            }
            TourViolation::LengthMismatch {
                tour,
                recorded,
                implied,
            } => write!(
                f,
                "tour {tour}: recorded length {recorded} != implied {implied}"
            ),
            TourViolation::ShardMismatch { tour } => {
                write!(f, "tour {tour}: edge shard inconsistent with bookkeeping")
            }
        }
    }
}

impl std::error::Error for TourViolation {}

/// Reconstructs the entry sequence of every tour from the per-edge
/// positions and checks it is a valid closed Euler walk.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(etf: &DistEtf) -> Result<(), TourViolation> {
    // Shard ↔ bookkeeping consistency: every shard belongs to a live
    // tour and every record inside it carries its shard's tour id.
    // (Shards are the unit of locality of the batch operations, so a
    // mislabelled or orphaned shard is the first thing to check.)
    let live: BTreeSet<TourId> = etf.tours().collect();
    for t in etf.shard_tour_ids() {
        if !live.contains(&t) {
            return Err(TourViolation::ShardMismatch { tour: t });
        }
        if etf.tour_edges(t).any(|(_, rec)| rec.tour != t) {
            return Err(TourViolation::ShardMismatch { tour: t });
        }
    }
    for t in etf.tours() {
        // Reassemble this tour's entry sequence from its own shard.
        let mut entries: BTreeMap<u64, VertexId> = BTreeMap::new();
        let mut edge_count = 0u64;
        for (e, rec) in etf.tour_edges(t) {
            edge_count += 1;
            for trav in [rec.first, rec.second] {
                if trav.pos % 2 == 0 {
                    return Err(TourViolation::MisalignedTraversal {
                        tour: t,
                        pos: trav.pos,
                    });
                }
                let to = e.other(trav.from);
                for (pos, vertex) in [(trav.pos, trav.from), (trav.pos + 1, to)] {
                    if entries.insert(pos, vertex).is_some() {
                        return Err(TourViolation::PositionClash { tour: t, pos });
                    }
                }
            }
            // Edge endpoints must carry the edge's tour id.
            for v in [e.u(), e.v()] {
                if etf.tour_of(v) != t {
                    return Err(TourViolation::WrongTourLabel { vertex: v });
                }
            }
        }
        let len = etf.tour_len(t);
        if !len.is_multiple_of(4) {
            return Err(TourViolation::BadLength { tour: t, len });
        }
        let implied = edge_count * 4;
        if len != implied {
            return Err(TourViolation::LengthMismatch {
                tour: t,
                recorded: len,
                implied,
            });
        }
        // Coverage of 1..=len.
        for pos in 1..=len {
            if !entries.contains_key(&pos) {
                return Err(TourViolation::PositionGap { tour: t, pos });
            }
        }
        if entries.len() as u64 != len {
            // An entry beyond `len` exists.
            let (&pos, _) = entries
                .iter()
                .find(|(&p, _)| p > len)
                .expect("count mismatch implies out-of-range entry");
            return Err(TourViolation::PositionGap { tour: t, pos });
        }
        // Walk continuity: entry 2i must equal entry 2i+1 (vertex at
        // the seam between consecutive traversals), and closed.
        if len > 0 {
            for seam in 1..(len / 2) {
                let a = entries[&(2 * seam)];
                let b = entries[&(2 * seam + 1)];
                if a != b {
                    return Err(TourViolation::BrokenWalk {
                        tour: t,
                        pos: 2 * seam,
                    });
                }
            }
            if entries[&len] != entries[&1] {
                return Err(TourViolation::BrokenWalk { tour: t, pos: len });
            }
        }
        // Member labels must match.
        for &v in etf.tour_members(t) {
            if etf.tour_of(v) != t {
                return Err(TourViolation::WrongTourLabel { vertex: v });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::ids::Edge;
    use mpc_sim::{MpcConfig, MpcContext};

    #[test]
    fn fresh_forest_validates() {
        validate(&DistEtf::new(5)).expect("singletons valid");
    }

    #[test]
    fn violations_display() {
        let v = TourViolation::BrokenWalk { tour: 3, pos: 8 };
        assert!(format!("{v}").contains("discontinuity"));
        let v = TourViolation::LengthMismatch {
            tour: 1,
            recorded: 8,
            implied: 4,
        };
        assert!(format!("{v}").contains("8"));
    }

    #[test]
    fn remaining_violation_variants_display() {
        for (v, needle) in [
            (
                TourViolation::BadLength { tour: 2, len: 6 },
                "not divisible",
            ),
            (
                TourViolation::PositionClash { tour: 2, pos: 3 },
                "two entries",
            ),
            (TourViolation::PositionGap { tour: 2, pos: 5 }, "no entry"),
            (
                TourViolation::MisalignedTraversal { tour: 2, pos: 4 },
                "even position",
            ),
            (TourViolation::WrongTourLabel { vertex: 7 }, "wrong tour"),
        ] {
            assert!(
                format!("{v}").contains(needle),
                "{v:?} display lacks {needle:?}"
            );
        }
    }

    #[test]
    fn violations_are_std_errors() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TourViolation::WrongTourLabel { vertex: 0 });
    }

    #[test]
    fn validator_catches_manual_corruption() {
        // Sanity: the validator is not a rubber stamp. Build a valid
        // 2-edge tour, then corrupt the recorded length.
        let mut ctx = MpcContext::new(MpcConfig::builder(8, 0.5).build());
        let mut etf = DistEtf::new(8);
        etf.join(Edge::new(0, 1), &mut ctx);
        etf.join(Edge::new(1, 2), &mut ctx);
        validate(&etf).expect("valid before corruption");
        // Splitting and manually re-joining the same edge twice would
        // corrupt; instead, check the validator via a cloned forest
        // with a surgically broken edge record — not reachable through
        // the public API, so emulate by splitting and asserting the
        // detached side revalidates.
        etf.split(Edge::new(0, 1), &mut ctx);
        validate(&etf).expect("valid after split");
    }
}
