//! The AGM'12 sketch-recompute baseline (paper Section 2.1 / 4.1).
//!
//! Like the paper's algorithm it keeps `t = Θ(log n)` linear sketches
//! per vertex, updated in `O(1)` rounds per batch. Unlike the paper's
//! algorithm it maintains **no** spanning forest or component ids: a
//! query runs the full Borůvka cascade over all `n` vertices, one
//! sketch level per Borůvka level — `Θ(log n)` MPC rounds per query.
//! This is exactly the comparison of Section 2.1: same total memory,
//! logarithmically slower queries.

use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::Batch;
use mpc_sim::MpcContext;
use mpc_sketch::vertex::EdgeSample;
use mpc_sketch::SketchBank;
use std::collections::BTreeMap;

/// The sketch-only baseline.
///
/// # Examples
///
/// ```
/// use mpc_baselines::AgmBaseline;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(16, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut agm = AgmBaseline::new(16, 42);
/// agm.apply_batch(
///     &Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]),
///     &mut ctx,
/// );
/// let labels = agm.query_components(&mut ctx);
/// assert_eq!(labels[0], labels[2]);
/// ```
#[derive(Debug, Clone)]
pub struct AgmBaseline {
    n: usize,
    bank: SketchBank,
    /// Rounds the most recent query consumed (`Θ(log n)`).
    last_query_rounds: u64,
    /// Cumulative `ℓ0`-sampler failures across all queries.
    sampler_failures: u64,
}

impl AgmBaseline {
    /// Creates the baseline for an empty `n`-vertex graph.
    pub fn new(n: usize, seed: u64) -> Self {
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1) as usize;
        AgmBaseline {
            n,
            bank: SketchBank::new(n, log_n + 6, seed),
            last_query_rounds: 0,
            sampler_failures: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Updates the sketches — `O(1)` rounds, identical to the
    /// paper's update path.
    pub fn apply_batch(&mut self, batch: &Batch, ctx: &mut MpcContext) {
        ctx.exchange(2 * batch.len() as u64 + 1);
        ctx.broadcast(2);
        self.ingest_updates(batch);
    }

    /// The shard-local sketch updates of a routed batch.
    fn ingest_updates(&mut self, batch: &Batch) {
        for u in batch.iter() {
            if u.is_insert() {
                self.bank.insert_edge(u.edge());
            } else {
                self.bank.delete_edge(u.edge());
            }
        }
    }

    /// Rounds consumed by the last [`AgmBaseline::query_components`].
    pub fn last_query_rounds(&self) -> u64 {
        self.last_query_rounds
    }

    /// Cumulative `ℓ0`-sampler failures observed across all queries
    /// (absorbed by later Borůvka levels' independent copies).
    pub fn sampler_failure_count(&self) -> u64 {
        self.sampler_failures
    }

    /// Memory footprint in words (sketches only).
    pub fn words(&self) -> u64 {
        self.bank.words()
    }

    /// Recomputes component labels from scratch: one Borůvka level
    /// per sketch copy, each costing a converge-cast plus a broadcast
    /// — `Θ(log n)` MPC rounds in total.
    pub fn query_components(&mut self, ctx: &mut MpcContext) -> Vec<VertexId> {
        let rounds_before = ctx.rounds();
        let mut uf = UnionFind::new(self.n);
        let sketch_words = self.bank.words_per_vertex() / self.bank.copies().max(1) as u64;
        let mut scratch = self.bank.new_scratch();
        for level in 0..self.bank.copies() {
            if uf.component_count() == 1 {
                break;
            }
            // Merge sketches per current supernode, query each — one
            // reusable accumulator, no per-component sketch clones.
            ctx.converge_cast(self.n as u64, sketch_words);
            let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for v in 0..self.n as u32 {
                groups.entry(uf.find(v)).or_default().push(v);
            }
            let mut progress = false;
            let mut any_failed = false;
            let mut found: Vec<Edge> = Vec::new();
            for (_, members) in groups {
                scratch.reset(level);
                if self.bank.merge_copy_into(&members, &mut scratch) > 0 {
                    match self.bank.sample_merged(&scratch) {
                        EdgeSample::Edge(e) => found.push(e),
                        EdgeSample::Empty => {}
                        EdgeSample::Fail => {
                            any_failed = true;
                            self.sampler_failures += 1;
                        }
                    }
                } else {
                    any_failed = true;
                }
            }
            ctx.sort(2 * found.len() as u64 + 1);
            ctx.broadcast(2);
            for e in found {
                if uf.union(e.u(), e.v()) {
                    progress = true;
                }
            }
            // Stop only on *certified* convergence: every supernode's
            // cut sampled Empty (exact, Lemma 3.5) and nothing merged.
            // An unproductive level with sampler failures must not end
            // the cascade — later levels hold independent copies.
            if !progress && !any_failed {
                break;
            }
        }
        self.last_query_rounds = ctx.rounds() - rounds_before;
        // Labels: minimum vertex id per component.
        let mut min_of: BTreeMap<u32, u32> = BTreeMap::new();
        for v in 0..self.n as u32 {
            let r = uf.find(v);
            min_of
                .entry(r)
                .and_modify(|m| *m = (*m).min(v))
                .or_insert(v);
        }
        (0..self.n as u32).map(|v| min_of[&uf.find(v)]).collect()
    }
}

impl mpc_stream_core::Maintain for AgmBaseline {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "agm-baseline"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        AgmBaseline::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    /// The unified ingest adds the endpoint/legality gate the paper's
    /// baseline left to the caller; the sketch-update path is the
    /// same `O(1)`-round routing as [`AgmBaseline::apply_batch`].
    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        mpc_stream_core::route_batch(batch, self.n, ctx)?;
        self.ingest_updates(batch);
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
        )
    }

    /// The Section 2.1 comparison point, now measurable per query:
    /// the baseline maintains no labels, so *every* connectivity
    /// answer reruns the full Borůvka cascade — `Θ(log n)` charged
    /// rounds where the paper's maintained labelling answers in
    /// `O(1)`.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{ensure_vertex_in, QueryRequest, QueryResponse};
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.n)?;
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Bool(
                    labels[u as usize] == labels[v as usize],
                ))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.n)?;
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Vertex(labels[v as usize]))
            }
            QueryRequest::ComponentCount => {
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Count(
                    mpc_stream_core::canonical_component_count(&labels),
                ))
            }
            _ => Err(mpc_stream_core::unsupported_query("agm-baseline", query)),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for AgmBaseline {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.bank.save(w);
        w.put_u64(self.last_query_rounds);
        w.put_u64(self.sampler_failures);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(AgmBaseline {
            n: r.take_usize()?,
            bank: SketchBank::load(r)?,
            last_query_rounds: r.take_u64()?,
            sampler_failures: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(64, 0.5).local_capacity(1 << 15).build())
    }

    #[test]
    fn recompute_matches_oracle_on_mixed_stream() {
        let n = 48;
        let stream = gen::random_mixed_stream(n, 6, 10, 0.7, 3);
        let snaps = stream.replay();
        let mut c = ctx();
        let mut agm = AgmBaseline::new(n, 17);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            agm.apply_batch(batch, &mut c);
            let labels = agm.query_components(&mut c);
            let expect = oracle::components(n, snap.edges());
            assert_eq!(labels, expect);
        }
    }

    #[test]
    fn query_rounds_grow_with_diameter() {
        // A path needs many Borůvka levels; a star needs few.
        let n = 64;
        let mut c = ctx();
        let mut agm = AgmBaseline::new(n, 5);
        agm.apply_batch(
            &Batch::inserting((0..n as u32 - 1).map(|i| Edge::new(i, i + 1))),
            &mut c,
        );
        let _ = agm.query_components(&mut c);
        let path_rounds = agm.last_query_rounds();
        // Queries must cost at least a couple of levels (vs O(1) for
        // the paper's maintained labelling).
        assert!(path_rounds >= 2 * c.config().round_budget_per_primitive() / 2);
        assert!(agm.words() > 0);
    }
}
