//! The `Θ(n+m)` total-memory dynamic baseline (ILMP'19 / NO'21
//! regime, paper Section 1.3.1).
//!
//! The entire edge set is stored, sharded across machines. Updates
//! are constant-round appends/removals; connectivity queries
//! recompute labels by hash-to-min label propagation, charged
//! `O(log n)` rounds. The interesting column against the paper's
//! algorithm is **total memory**: this baseline grows linearly with
//! `m`, the paper's stays `Õ(n)` (experiment E3).

use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::Batch;
use mpc_sim::MpcContext;
use std::collections::BTreeSet;

/// The store-everything baseline.
///
/// # Examples
///
/// ```
/// use mpc_baselines::FullMemoryBaseline;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 12).build(),
/// );
/// let mut fm = FullMemoryBaseline::new(8);
/// fm.apply_batch(&Batch::inserting([Edge::new(0, 1)]), &mut ctx);
/// assert_eq!(fm.words(), 8 + 2);
/// ```
#[derive(Debug, Clone)]
pub struct FullMemoryBaseline {
    n: usize,
    edges: BTreeSet<Edge>,
    /// Incrementally maintained per-shard word counts (1 per vertex
    /// label + 2 per edge at its smaller endpoint's shard).
    loads: Vec<u64>,
    last_query_rounds: u64,
}

impl FullMemoryBaseline {
    /// Creates the baseline for an empty `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        FullMemoryBaseline {
            n,
            edges: BTreeSet::new(),
            loads: Vec::new(),
            last_query_rounds: 0,
        }
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Applies a batch (`O(1)` rounds: route each update to its
    /// shard). Memory is accounted incrementally — one label word per
    /// vertex plus two words per edge at its smaller endpoint's
    /// shard; this is the `Θ(n+m)` footprint the paper improves on.
    pub fn apply_batch(&mut self, batch: &Batch, ctx: &mut MpcContext) {
        ctx.exchange(2 * batch.len() as u64);
        let machines = ctx.config().machines().min(self.n);
        if self.loads.len() != machines {
            // First batch: seed and register the per-vertex label
            // words on every shard machine.
            self.loads = vec![0; machines];
            for v in 0..self.n as u32 {
                self.loads[ctx.config().machine_of_vertex(v)] += 1;
            }
            for m in 0..machines {
                let _ = ctx.set_load(m, self.loads[m]);
            }
        }
        let mut touched = std::collections::BTreeSet::new();
        for u in batch.iter() {
            let e = u.edge();
            let m = ctx.config().machine_of_vertex(e.u());
            if u.is_insert() {
                if self.edges.insert(e) {
                    self.loads[m] += 2;
                    touched.insert(m);
                }
            } else if self.edges.remove(&e) {
                self.loads[m] -= 2;
                touched.insert(m);
            }
        }
        for m in touched {
            // Permissive accounting: the point is the measured total.
            let _ = ctx.set_load(m, self.loads[m]);
        }
    }

    /// Total memory in words (`n + 2m`).
    pub fn words(&self) -> u64 {
        self.n as u64 + 2 * self.edges.len() as u64
    }

    /// Rounds the last query consumed.
    pub fn last_query_rounds(&self) -> u64 {
        self.last_query_rounds
    }

    /// Recomputes component labels by label propagation: each round
    /// every vertex adopts the minimum label in its neighborhood;
    /// rounds are charged until a fixpoint, `O(log n)` for
    /// hash-to-min-style schemes and up to the diameter for plain
    /// min propagation (we charge the measured count).
    pub fn query_components(&mut self, ctx: &mut MpcContext) -> Vec<VertexId> {
        let before = ctx.rounds();
        let mut labels: Vec<VertexId> = (0..self.n as u32).collect();
        // Simulate pointer-jumping min-propagation: label rounds are
        // measured; each round costs one exchange of Θ(m) words (the
        // NO'21-style Θ(m) per-round communication the paper calls
        // out in Section 1.3.1).
        loop {
            let mut changed = false;
            let mut next = labels.clone();
            for e in &self.edges {
                let (a, b) = (e.u() as usize, e.v() as usize);
                let m = labels[a].min(labels[b]);
                if next[a] > m {
                    next[a] = m;
                    changed = true;
                }
                if next[b] > m {
                    next[b] = m;
                    changed = true;
                }
            }
            // Pointer jumping: label ← label of label.
            for v in 0..self.n {
                let l = next[v] as usize;
                if next[l] < next[v] {
                    next[v] = next[l];
                    changed = true;
                }
            }
            ctx.exchange(2 * self.edges.len() as u64 + 1);
            labels = next;
            if !changed {
                break;
            }
        }
        self.last_query_rounds = ctx.rounds() - before;
        labels
    }
}

impl mpc_stream_core::Maintain for FullMemoryBaseline {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "fullmem-baseline"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn words(&self) -> u64 {
        FullMemoryBaseline::words(self)
    }

    /// The unified ingest adds the endpoint/legality gate; the edge
    /// store update is the same `O(1)`-round routed append/remove as
    /// [`FullMemoryBaseline::apply_batch`].
    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        mpc_stream_core::ensure_endpoints_in(batch, self.n)?;
        ctx.ensure_batch_fits(2 * batch.len() as u64 + 1)?;
        self.apply_batch(batch, ctx);
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
        )
    }

    /// Recompute-on-read, like the stored-graph regimes the paper
    /// compares against: every connectivity answer pays the measured
    /// label-propagation rounds at `Θ(m)` words per round.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{ensure_vertex_in, QueryRequest, QueryResponse};
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.n)?;
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Bool(
                    labels[u as usize] == labels[v as usize],
                ))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.n)?;
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Vertex(labels[v as usize]))
            }
            QueryRequest::ComponentCount => {
                let labels = self.query_components(ctx);
                Ok(QueryResponse::Count(
                    mpc_stream_core::canonical_component_count(&labels),
                ))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                "fullmem-baseline",
                query,
            )),
        }
    }
}

/// Convenience oracle used by the experiment harness: exact
/// components of the stored edge set.
pub fn exact_components(n: usize, edges: &BTreeSet<Edge>) -> Vec<VertexId> {
    let mut uf = UnionFind::new(n);
    for e in edges {
        uf.union(e.u(), e.v());
    }
    let mut min_of: Vec<VertexId> = (0..n as u32).collect();
    for v in 0..n as u32 {
        let r = uf.find(v);
        if v < min_of[r as usize] {
            min_of[r as usize] = v;
        }
    }
    (0..n as u32).map(|v| min_of[uf.find(v) as usize]).collect()
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for FullMemoryBaseline {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.edges.save(w);
        // `loads` is lazily sized to the cluster on first ingest;
        // an empty vector is a legitimate pre-ingest state and
        // round-trips verbatim.
        self.loads.save(w);
        w.put_u64(self.last_query_rounds);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(FullMemoryBaseline {
            n: r.take_usize()?,
            edges: BTreeSet::load(r)?,
            loads: Vec::load(r)?,
            last_query_rounds: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(64, 0.5).local_capacity(1 << 15).build())
    }

    #[test]
    fn labels_match_oracle() {
        let n = 32;
        let stream = gen::random_mixed_stream(n, 6, 8, 0.7, 2);
        let snaps = stream.replay();
        let mut c = ctx();
        let mut fm = FullMemoryBaseline::new(n);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            fm.apply_batch(batch, &mut c);
            let labels = fm.query_components(&mut c);
            assert_eq!(labels, oracle::components(n, snap.edges()));
        }
    }

    #[test]
    fn memory_grows_with_m() {
        let n = 64;
        let mut c = ctx();
        let mut fm = FullMemoryBaseline::new(n);
        let w0 = fm.words();
        fm.apply_batch(
            &Batch::inserting((0..32u32).map(|i| Edge::new(i, i + 32))),
            &mut c,
        );
        assert_eq!(fm.words(), w0 + 64);
        assert_eq!(fm.edge_count(), 32);
    }

    #[test]
    fn exact_components_helper() {
        let edges: BTreeSet<Edge> = [Edge::new(0, 1), Edge::new(2, 3)].into_iter().collect();
        let labels = exact_components(5, &edges);
        assert_eq!(labels, vec![0, 0, 2, 2, 4]);
    }
}
