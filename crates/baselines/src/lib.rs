//! Baselines the paper positions itself against (Sections 1.3, 2.1).
//!
//! * [`agm::AgmBaseline`] — the Ahn–Guha–McGregor streaming algorithm
//!   implemented directly on MPC: sketches are kept current in `O(1)`
//!   rounds per update batch, but every *query* reruns Borůvka over
//!   all `n` vertices, costing `Θ(log n)` sketch levels of MPC rounds
//!   (the paper's Section 2.1 comparison: same total memory, `O(log
//!   n)`-round queries instead of `O(1)`).
//! * [`fullmem::FullMemoryBaseline`] — the `Θ(n+m)` total-memory
//!   dynamic-MPC regime of ILMP'19 / NO'21: the entire graph is
//!   stored across machines, updates are trivial appends, and
//!   connectivity is recomputed on demand by `O(log n)` rounds of
//!   label propagation. The paper's headline against this line of
//!   work is the *total memory* column: `Õ(n)` versus `Θ(n+m)`.

#![forbid(unsafe_code)]

pub mod agm;
pub mod fullmem;

pub use agm::AgmBaseline;
pub use fullmem::FullMemoryBaseline;

/// Registers this crate's snapshot decoders — `agm-baseline` and
/// `fullmem-baseline` — into a
/// [`MaintainerRegistry`](mpc_stream_core::MaintainerRegistry).
pub fn register_snapshot_loaders(reg: &mut mpc_stream_core::MaintainerRegistry) {
    use mpc_snapshot::Persist;
    reg.register("agm-baseline", |r| Ok(Box::new(AgmBaseline::load(r)?)));
    reg.register("fullmem-baseline", |r| {
        Ok(Box::new(FullMemoryBaseline::load(r)?))
    });
}
