//! Seeded workload generators.
//!
//! Each generator produces the batch streams used by the experiments
//! in `EXPERIMENTS.md` (E1–E12). All are deterministic functions of an
//! explicit `u64` seed and model an **oblivious adversary** — batches
//! are fixed up front and never depend on the algorithm's answers,
//! matching the paper's adversary model (Section 1.2).

use crate::dynamic::DynamicGraph;
use crate::ids::{Edge, WeightedEdge};
use crate::update::{Batch, Update, WeightedBatch, WeightedUpdate};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A reproducible stream of update batches plus the ground-truth live
/// graph after each batch.
#[derive(Debug, Clone)]
pub struct BatchStream {
    /// Number of vertices.
    pub n: usize,
    /// Batches in arrival order.
    pub batches: Vec<Batch>,
}

impl BatchStream {
    /// Replays the stream on a [`DynamicGraph`], returning the live
    /// graph after every batch. Panics if the stream is invalid —
    /// generators in this module always produce valid streams.
    pub fn replay(&self) -> Vec<DynamicGraph> {
        let mut g = DynamicGraph::new(self.n);
        let mut snapshots = Vec::with_capacity(self.batches.len());
        for b in &self.batches {
            g.apply(b).expect("generated stream must be valid");
            snapshots.push(g.clone());
        }
        snapshots
    }

    /// Total number of updates across all batches.
    pub fn update_count(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }
}

/// A reproducible stream of weighted update batches.
#[derive(Debug, Clone)]
pub struct WeightedBatchStream {
    /// Number of vertices.
    pub n: usize,
    /// Batches in arrival order.
    pub batches: Vec<WeightedBatch>,
}

fn random_absent_edge(rng: &mut StdRng, n: usize, live: &BTreeSet<Edge>) -> Option<Edge> {
    let max_edges = n * (n - 1) / 2;
    if live.len() >= max_edges {
        return None;
    }
    loop {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        if !live.contains(&e) {
            return Some(e);
        }
    }
}

/// Uniformly random mixed insert/delete stream: each update is an
/// insertion of a random absent edge with probability `p_insert`
/// (or forced when the graph is empty), otherwise a deletion of a
/// random live edge. The workhorse workload of experiment E1.
pub fn random_mixed_stream(
    n: usize,
    batches: usize,
    batch_size: usize,
    p_insert: f64,
    seed: u64,
) -> BatchStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: BTreeSet<Edge> = BTreeSet::new();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Batch::new();
        for _ in 0..batch_size {
            let insert = live.is_empty() || rng.gen_bool(p_insert);
            if insert {
                if let Some(e) = random_absent_edge(&mut rng, n, &live) {
                    live.insert(e);
                    batch.push(Update::Insert(e));
                }
            } else {
                let k = rng.gen_range(0..live.len());
                let e = *live.iter().nth(k).expect("index in range");
                live.remove(&e);
                batch.push(Update::Delete(e));
            }
        }
        out.push(batch);
    }
    BatchStream { n, batches: out }
}

/// Insertion-only stream of `batches * batch_size` random edges.
pub fn random_insert_stream(n: usize, batches: usize, batch_size: usize, seed: u64) -> BatchStream {
    random_mixed_stream(n, batches, batch_size, 1.0, seed)
}

/// Builds a path 0-1-2-…-(n-1) in batches, then (optionally) deletes
/// every other path edge. Paths maximize spanning-forest depth, the
/// worst case for Euler-tour maintenance.
pub fn path_stream(n: usize, batch_size: usize, delete_phase: bool) -> BatchStream {
    let mut out = Vec::new();
    let edges: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
    for chunk in edges.chunks(batch_size) {
        out.push(Batch::inserting(chunk.iter().copied()));
    }
    if delete_phase {
        let victims: Vec<Edge> = edges.iter().copied().step_by(2).collect();
        for chunk in victims.chunks(batch_size) {
            out.push(Batch::deleting(chunk.iter().copied()));
        }
    }
    BatchStream { n, batches: out }
}

/// Builds a star centered at vertex 0, then (optionally) deletes all
/// spokes. Stars maximize vertex degree, the worst case for
/// vertex-incidence sharding.
pub fn star_stream(n: usize, batch_size: usize, delete_phase: bool) -> BatchStream {
    let mut out = Vec::new();
    let edges: Vec<Edge> = (1..n as u32).map(|i| Edge::new(0, i)).collect();
    for chunk in edges.chunks(batch_size) {
        out.push(Batch::inserting(chunk.iter().copied()));
    }
    if delete_phase {
        for chunk in edges.chunks(batch_size) {
            out.push(Batch::deleting(chunk.iter().copied()));
        }
    }
    BatchStream { n, batches: out }
}

/// Component churn: builds `k` disjoint cliques of size `c`, then
/// alternates batches that bridge all cliques into one component and
/// batches that cut all bridges again. This exercises the
/// replacement-edge search of Section 6.3 heavily: every bridge
/// deletion splits a component and the sketches must certify there is
/// no replacement.
pub fn merge_split_stream(
    k: usize,
    c: usize,
    rounds: usize,
    build_batch: usize,
    seed: u64,
) -> BatchStream {
    assert!(c >= 2, "cliques need at least 2 vertices");
    assert!(build_batch >= 1, "build batches must be nonempty");
    let n = k * c;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    // Build the cliques, chunked so no batch exceeds the model's
    // batch-size limit.
    let mut clique_edges = Vec::new();
    for g in 0..k {
        let base = (g * c) as u32;
        for a in 0..c as u32 {
            for b in (a + 1)..c as u32 {
                clique_edges.push(Edge::new(base + a, base + b));
            }
        }
    }
    for chunk in clique_edges.chunks(build_batch) {
        out.push(Batch::inserting(chunk.iter().copied()));
    }
    for _ in 0..rounds {
        // Bridge clique i to clique i+1 with a random edge.
        let bridges: Vec<Edge> = (0..k - 1)
            .map(|g| {
                let a = (g * c) as u32 + rng.gen_range(0..c as u32);
                let b = ((g + 1) * c) as u32 + rng.gen_range(0..c as u32);
                Edge::new(a, b)
            })
            .collect();
        out.push(Batch::inserting(bridges.iter().copied()));
        out.push(Batch::deleting(bridges));
    }
    BatchStream { n, batches: out }
}

/// Densifying insertion-only stream: keeps inserting random edges so
/// `m` grows from 0 to `target_m`. Used by experiment E2 to show the
/// algorithm's total memory does **not** grow with `m`.
pub fn densifying_stream(n: usize, target_m: usize, batch_size: usize, seed: u64) -> BatchStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = BTreeSet::new();
    let mut out = Vec::new();
    while live.len() < target_m {
        let mut batch = Batch::new();
        for _ in 0..batch_size {
            if live.len() >= target_m {
                break;
            }
            if let Some(e) = random_absent_edge(&mut rng, n, &live) {
                live.insert(e);
                batch.push(Update::Insert(e));
            } else {
                break;
            }
        }
        if batch.is_empty() {
            break;
        }
        out.push(batch);
    }
    BatchStream { n, batches: out }
}

/// Preferential-attachment insertion stream (Barabási–Albert-style):
/// each new vertex attaches to `attach` existing vertices chosen with
/// probability proportional to their degree (via the repeated-endpoint
/// trick). Produces the heavy-tailed degree distributions of real
/// social graphs; used by the workload sweeps as the "realistic"
/// shape alongside paths, stars, and G(n,m).
pub fn preferential_attachment_stream(
    n: usize,
    attach: usize,
    batch_size: usize,
    seed: u64,
) -> BatchStream {
    assert!(n >= 2 && attach >= 1, "need n ≥ 2 and attach ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // endpoint pool: every endpoint of every edge (degree-weighted).
    let mut pool: Vec<u32> = vec![0, 1];
    let mut edges: Vec<Edge> = vec![Edge::new(0, 1)];
    let mut live: BTreeSet<Edge> = edges.iter().copied().collect();
    for v in 2..n as u32 {
        let mut targets = BTreeSet::new();
        let mut attempts = 0;
        while targets.len() < attach.min(v as usize) && attempts < 100 {
            attempts += 1;
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            let e = Edge::new(v, t);
            if live.insert(e) {
                edges.push(e);
                pool.push(v);
                pool.push(t);
            }
        }
    }
    let batches = edges
        .chunks(batch_size)
        .map(|c| Batch::inserting(c.iter().copied()))
        .collect();
    BatchStream { n, batches }
}

/// Power-law stream with adversarial churn, the E20 soak workload:
/// inserts pick endpoints degree-weighted (the repeated-endpoint
/// trick), so degrees go heavy-tailed like
/// [`preferential_attachment_stream`]; a `churn` fraction of updates
/// instead *toggles* an edge from a bounded hot set — deleting it if
/// live, re-inserting it if not — so the same cells are repeatedly
/// written, exactly cancelled, and refilled, and hub vertices keep
/// changing component membership. Every hot-set toggle of a live edge
/// is a deletion that forces the replacement-edge search, and every
/// re-insert rebuilds the same sketch levels the cancellation just
/// cleared.
///
/// # Panics
///
/// Panics unless `n >= 2`, `batch_size >= 1`, and `churn` is in
/// `[0, 1]`.
pub fn powerlaw_churn_stream(
    n: usize,
    batches: usize,
    batch_size: usize,
    churn: f64,
    seed: u64,
) -> BatchStream {
    assert!(n >= 2, "need at least 2 vertices");
    assert!(batch_size >= 1, "batches must be nonempty");
    assert!((0.0..=1.0).contains(&churn), "churn is a probability");
    /// Hot-set size cap: small enough that toggles keep revisiting
    /// the same edges (the adversarial part), large enough that one
    /// batch cannot toggle the whole set twice.
    const HOT_CAP: usize = 4096;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: BTreeSet<Edge> = BTreeSet::new();
    // Degree-weighted endpoint pool; seeded uniform so the first
    // inserts can pick anyone, then fed by actual endpoints.
    let mut pool: Vec<u32> = (0..n as u32).collect();
    let mut hot: Vec<Edge> = Vec::new();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Batch::new();
        // One toggle per edge per batch: a batch is a set of updates,
        // so the same edge must not be inserted and deleted in one.
        let mut touched: BTreeSet<Edge> = BTreeSet::new();
        while batch.len() < batch_size {
            if !hot.is_empty() && rng.gen_bool(churn) {
                let e = hot[rng.gen_range(0..hot.len())];
                if !touched.insert(e) {
                    continue;
                }
                if live.remove(&e) {
                    batch.push(Update::Delete(e));
                } else {
                    live.insert(e);
                    batch.push(Update::Insert(e));
                }
                continue;
            }
            // Fresh preferential insert; a few degree-weighted draws,
            // then a uniform fallback so dense corners cannot stall.
            let mut fresh = None;
            for _ in 0..8 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                if a != b && !live.contains(&Edge::new(a, b)) {
                    fresh = Some(Edge::new(a, b));
                    break;
                }
            }
            let Some(e) = fresh.or_else(|| random_absent_edge(&mut rng, n, &live)) else {
                break;
            };
            if !touched.insert(e) {
                continue;
            }
            live.insert(e);
            pool.push(e.u());
            pool.push(e.v());
            if hot.len() < HOT_CAP {
                hot.push(e);
            } else {
                // Reservoir-style replacement keeps the hot set biased
                // toward hubs without growing it.
                let k = rng.gen_range(0..4 * HOT_CAP);
                if k < HOT_CAP {
                    hot[k] = e;
                }
            }
            batch.push(Update::Insert(e));
        }
        out.push(batch);
    }
    BatchStream { n, batches: out }
}

/// Random weighted mixed stream with weights uniform in
/// `[1, max_weight]`. Deletions replay the live weight, as the model
/// requires.
pub fn random_weighted_stream(
    n: usize,
    batches: usize,
    batch_size: usize,
    p_insert: f64,
    max_weight: u64,
    seed: u64,
) -> WeightedBatchStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: BTreeSet<Edge> = BTreeSet::new();
    let mut weights: std::collections::BTreeMap<Edge, u64> = Default::default();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = WeightedBatch::new();
        for _ in 0..batch_size {
            let insert = live.is_empty() || rng.gen_bool(p_insert);
            if insert {
                if let Some(e) = random_absent_edge(&mut rng, n, &live) {
                    let w = rng.gen_range(1..=max_weight);
                    live.insert(e);
                    weights.insert(e, w);
                    batch.push(WeightedUpdate::Insert(WeightedEdge { edge: e, weight: w }));
                }
            } else {
                let k = rng.gen_range(0..live.len());
                let e = *live.iter().nth(k).expect("index in range");
                live.remove(&e);
                let w = weights.remove(&e).expect("weight tracked");
                batch.push(WeightedUpdate::Delete(WeightedEdge { edge: e, weight: w }));
            }
        }
        out.push(batch);
    }
    WeightedBatchStream { n, batches: out }
}

/// Insertion-only weighted stream.
pub fn random_weighted_insert_stream(
    n: usize,
    batches: usize,
    batch_size: usize,
    max_weight: u64,
    seed: u64,
) -> WeightedBatchStream {
    random_weighted_stream(n, batches, batch_size, 1.0, max_weight, seed)
}

/// A bipartite stream that stays two-colorable, with optional batches
/// that inject and later remove an odd cycle (experiment E6): returns
/// the stream and the index of the first batch after which the graph
/// is non-bipartite (if an odd cycle was injected).
pub fn bipartite_stream_with_violation(
    n: usize,
    batches: usize,
    batch_size: usize,
    inject_at: Option<usize>,
    seed: u64,
) -> (BatchStream, Option<(usize, usize)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = n / 2;
    let mut live = BTreeSet::new();
    let mut out = Vec::new();
    let mut violation_edge: Option<Edge> = None;
    let mut violation_window = None;
    for bi in 0..batches {
        let mut batch = Batch::new();
        if Some(bi) == inject_at {
            // Close an odd cycle: edge inside the left side between two
            // vertices already connected through the right side.
            let a = 0u32;
            let b = 1u32;
            // Ensure connectivity a-right-b exists.
            for e in [Edge::new(a, half as u32), Edge::new(b, half as u32)] {
                if live.insert(e) {
                    batch.push(Update::Insert(e));
                }
            }
            let bad = Edge::new(a, b);
            if live.insert(bad) {
                batch.push(Update::Insert(bad));
                violation_edge = Some(bad);
            }
        } else if violation_edge.is_some() && bi == inject_at.unwrap_or(usize::MAX) + 2 {
            let bad = violation_edge.take().expect("violation edge present");
            live.remove(&bad);
            batch.push(Update::Delete(bad));
            violation_window = Some((inject_at.expect("inject_at set"), bi));
        }
        while batch.len() < batch_size {
            let a = rng.gen_range(0..half as u32);
            let b = rng.gen_range(half as u32..n as u32);
            let e = Edge::new(a, b);
            if live.insert(e) {
                batch.push(Update::Insert(e));
            } else {
                break;
            }
        }
        out.push(batch);
    }
    (BatchStream { n, batches: out }, violation_window)
}

/// Planted-matching stream: inserts a perfect matching on `2k`
/// vertices (so `OPT = k` exactly) shuffled among `noise` extra random
/// edges incident to the matched vertices only from one side, keeping
/// OPT known. Used by the matching-estimation experiment E9.
pub fn planted_matching_stream(
    k: usize,
    noise: usize,
    batch_size: usize,
    seed: u64,
) -> (BatchStream, usize) {
    let n = 2 * k + k; // 2k matched vertices + k isolated "noise sinks"
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = (0..k as u32).map(|i| Edge::new(2 * i, 2 * i + 1)).collect();
    let mut live: BTreeSet<Edge> = edges.iter().copied().collect();
    // Noise edges from even (left) matched vertices to noise sinks;
    // these can enlarge a matching only by re-routing, never beyond
    // k + (pairs among sinks = 0)… they keep OPT between k and k
    // because sinks attach only to left vertices of the planted
    // matching: any matching matches ≤ k left vertices.
    let mut added = 0;
    while added < noise {
        let left = 2 * rng.gen_range(0..k as u32);
        let sink = (2 * k + rng.gen_range(0..k)) as u32;
        let e = Edge::new(left, sink);
        if live.insert(e) {
            edges.push(e);
            added += 1;
        } else if live.len() >= k + k * k {
            break;
        }
    }
    edges.shuffle(&mut rng);
    let batches = edges
        .chunks(batch_size)
        .map(|c| Batch::inserting(c.iter().copied()))
        .collect();
    (BatchStream { n, batches }, k)
}

/// Circulant insertion stream: vertex `i` links to `i ± j` (mod `n`)
/// for every jump `j` in `jumps`. With distinct jumps
/// `0 < j₁ < … < j_d < n/2` the graph is `2d`-regular and
/// `2d`-edge-connected — a known-connectivity workload for the
/// k-edge-connectivity experiments (E13).
///
/// # Panics
///
/// Panics if a jump is `0` or `≥ n/2` (which would create duplicate
/// or self-loop edges), or if `batch_size == 0`.
pub fn circulant_stream(n: usize, jumps: &[usize], batch_size: usize, seed: u64) -> BatchStream {
    assert!(batch_size >= 1, "batches must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let mut seen = BTreeSet::new();
    for &j in jumps {
        assert!(j >= 1 && 2 * j < n, "jump {j} invalid for n = {n}");
        for i in 0..n as u32 {
            let e = Edge::new(i, ((i as usize + j) % n) as u32);
            if seen.insert(e) {
                edges.push(e);
            }
        }
    }
    edges.shuffle(&mut rng);
    let batches = edges
        .chunks(batch_size)
        .map(|c| Batch::inserting(c.iter().copied()))
        .collect();
    BatchStream { n, batches }
}

/// Barbell stream: two `c`-cliques joined by a path of `p` fresh
/// vertices, then (optionally) a delete phase removing the path —
/// a workload with known bridges (every path edge) and min cut 1,
/// stressing the cut-sensitive algorithms (E13, bipartiteness, MSF
/// replacement search).
///
/// Vertices `0..c` form the left clique, `c..2c` the right, and
/// `2c..2c+p` the path; the path runs left-clique → path vertices →
/// right-clique, so there are `p + 1` bridge edges.
///
/// # Panics
///
/// Panics if `c < 2` or `batch_size == 0`.
pub fn barbell_stream(c: usize, p: usize, batch_size: usize, delete_phase: bool) -> BatchStream {
    assert!(c >= 2, "cliques need at least 2 vertices");
    assert!(batch_size >= 1, "batches must be nonempty");
    let n = 2 * c + p;
    let mut clique_edges = Vec::new();
    for base in [0u32, c as u32] {
        for a in 0..c as u32 {
            for b in (a + 1)..c as u32 {
                clique_edges.push(Edge::new(base + a, base + b));
            }
        }
    }
    // The connecting path: clique-0 vertex 0 → path → clique-1 vertex c.
    let mut path_edges = Vec::new();
    let mut prev = 0u32;
    for i in 0..p as u32 {
        path_edges.push(Edge::new(prev, 2 * c as u32 + i));
        prev = 2 * c as u32 + i;
    }
    path_edges.push(Edge::new(prev, c as u32));
    let mut batches: Vec<Batch> = clique_edges
        .chunks(batch_size)
        .map(|ch| Batch::inserting(ch.iter().copied()))
        .collect();
    batches.extend(
        path_edges
            .chunks(batch_size)
            .map(|ch| Batch::inserting(ch.iter().copied())),
    );
    if delete_phase {
        batches.extend(
            path_edges
                .chunks(batch_size)
                .map(|ch| Batch::deleting(ch.iter().copied())),
        );
    }
    BatchStream { n, batches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn random_mixed_stream_is_valid_and_deterministic() {
        let s1 = random_mixed_stream(32, 8, 10, 0.7, 42);
        let s2 = random_mixed_stream(32, 8, 10, 0.7, 42);
        assert_eq!(s1.batches, s2.batches);
        let snaps = s1.replay(); // panics if invalid
        assert_eq!(snaps.len(), 8);
        assert!(s1.update_count() <= 80);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = random_mixed_stream(32, 4, 10, 0.7, 1);
        let s2 = random_mixed_stream(32, 4, 10, 0.7, 2);
        assert_ne!(s1.batches, s2.batches);
    }

    #[test]
    fn path_stream_builds_path() {
        let s = path_stream(10, 3, false);
        let snaps = s.replay();
        let last = snaps.last().expect("non-empty");
        assert_eq!(last.edge_count(), 9);
        assert_eq!(
            oracle::component_count(10, last.edges().collect::<Vec<_>>()),
            1
        );
    }

    #[test]
    fn path_stream_delete_phase_splits() {
        let s = path_stream(10, 4, true);
        let snaps = s.replay();
        let last = snaps.last().expect("non-empty");
        // Deleting every other edge of a 9-edge path leaves 4 edges
        // and 6 components.
        assert_eq!(last.edge_count(), 4);
        assert_eq!(
            oracle::component_count(10, last.edges().collect::<Vec<_>>()),
            6
        );
    }

    #[test]
    fn star_stream_full_cycle() {
        let s = star_stream(8, 3, true);
        let last = s.replay().pop().expect("non-empty");
        assert_eq!(last.edge_count(), 0);
    }

    #[test]
    fn merge_split_alternates_component_counts() {
        let s = merge_split_stream(4, 3, 2, 64, 7);
        let snaps = s.replay();
        // After the (single, 64 >= 12 edges) clique batch: 4
        // components. After bridges: 1. After cuts: 4 again.
        let counts: Vec<usize> = snaps
            .iter()
            .map(|g| oracle::component_count(s.n, g.edges().collect::<Vec<_>>()))
            .collect();
        assert_eq!(counts, vec![4, 1, 4, 1, 4]);
        // Chunked build keeps every batch within the limit.
        let s = merge_split_stream(4, 3, 1, 5, 7);
        assert!(s.batches.iter().all(|b| b.len() <= 5));
    }

    #[test]
    fn densifying_reaches_target() {
        let s = densifying_stream(20, 60, 16, 3);
        let last = s.replay().pop().expect("non-empty");
        assert_eq!(last.edge_count(), 60);
    }

    #[test]
    fn preferential_attachment_is_connected_and_heavy_tailed() {
        let s = preferential_attachment_stream(200, 2, 16, 5);
        let last = s.replay().pop().expect("nonempty");
        let edges: Vec<Edge> = last.edges().collect();
        assert_eq!(oracle::component_count(200, edges.iter().copied()), 1);
        // Heavy tail: the max degree far exceeds the mean.
        let mut deg = vec![0usize; 200];
        for e in &edges {
            deg[e.u() as usize] += 1;
            deg[e.v() as usize] += 1;
        }
        let mean = 2.0 * edges.len() as f64 / 200.0;
        let max = *deg.iter().max().expect("nonempty") as f64;
        assert!(max > 3.0 * mean, "max degree {max} vs mean {mean}");
    }

    #[test]
    fn powerlaw_churn_stream_is_valid_deterministic_and_churns() {
        let s1 = powerlaw_churn_stream(256, 60, 32, 0.3, 0xE20);
        let s2 = powerlaw_churn_stream(256, 60, 32, 0.3, 0xE20);
        assert_eq!(s1.batches, s2.batches);
        let snaps = s1.replay(); // panics if any update is invalid
        assert_eq!(snaps.len(), 60);

        let mut inserts: std::collections::BTreeMap<Edge, usize> = Default::default();
        let mut deletes = 0usize;
        for b in &s1.batches {
            for u in b.iter() {
                match u {
                    Update::Insert(e) => *inserts.entry(e).or_default() += 1,
                    Update::Delete(_) => deletes += 1,
                }
            }
        }
        assert!(deletes > 0, "churn produced no deletions");
        assert!(
            inserts.values().any(|&c| c >= 2),
            "churn never re-inserted a deleted edge"
        );

        // Heavy tail: hubs accumulate degree well past the mean.
        let last = snaps.last().expect("nonempty");
        let mut deg = vec![0usize; 256];
        let mut m = 0usize;
        for e in last.edges() {
            deg[e.u() as usize] += 1;
            deg[e.v() as usize] += 1;
            m += 1;
        }
        let mean = 2.0 * m as f64 / 256.0;
        let max = *deg.iter().max().expect("nonempty") as f64;
        assert!(max > 3.0 * mean, "max degree {max} vs mean {mean}");
    }

    #[test]
    fn powerlaw_churn_stream_batches_touch_each_edge_once() {
        let s = powerlaw_churn_stream(64, 40, 16, 0.6, 7);
        for b in &s.batches {
            let mut seen = BTreeSet::new();
            for u in b.iter() {
                let e = match u {
                    Update::Insert(e) | Update::Delete(e) => e,
                };
                assert!(seen.insert(e), "edge {e} touched twice in one batch");
            }
        }
    }

    #[test]
    fn weighted_stream_is_valid() {
        let s = random_weighted_stream(24, 6, 8, 0.6, 100, 11);
        let mut g = DynamicGraph::new(s.n);
        for b in &s.batches {
            g.apply_weighted(b).expect("valid weighted stream");
        }
        for we in g.weighted_edges() {
            assert!((1..=100).contains(&we.weight));
        }
    }

    #[test]
    fn bipartite_stream_violation_window() {
        let (s, window) = bipartite_stream_with_violation(16, 8, 4, Some(3), 5);
        let (start, end) = window.expect("violation injected");
        assert_eq!(start, 3);
        assert_eq!(end, 5);
        let snaps = s.replay();
        for (i, g) in snaps.iter().enumerate() {
            let edges: Vec<Edge> = g.edges().collect();
            let bip = oracle::is_bipartite(s.n, &edges);
            if i >= start && i < end {
                assert!(!bip, "batch {i} should be non-bipartite");
            } else {
                assert!(bip, "batch {i} should be bipartite");
            }
        }
    }

    #[test]
    fn planted_matching_opt_is_exact() {
        let (s, opt) = planted_matching_stream(6, 10, 5, 9);
        let last = s.replay().pop().expect("non-empty");
        let edges: Vec<Edge> = last.edges().collect();
        assert_eq!(oracle::maximum_matching_size(s.n, &edges), opt);
    }

    #[test]
    fn circulant_stream_has_known_edge_connectivity() {
        use crate::cuts;
        for (jumps, expect) in [(vec![1usize], 2u64), (vec![1, 2], 4), (vec![1, 3], 4)] {
            let s = circulant_stream(12, &jumps, 5, 3);
            let last = s.replay().pop().expect("non-empty");
            let edges: Vec<Edge> = last.edges().collect();
            assert_eq!(edges.len(), 12 * jumps.len());
            assert_eq!(
                cuts::edge_connectivity(12, &edges),
                expect,
                "jumps {jumps:?}"
            );
        }
    }

    #[test]
    fn circulant_stream_is_deterministic() {
        let a = circulant_stream(16, &[1, 2], 4, 7);
        let b = circulant_stream(16, &[1, 2], 4, 7);
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn circulant_rejects_large_jump() {
        let _ = circulant_stream(8, &[4], 2, 0);
    }

    #[test]
    fn barbell_stream_has_known_bridges() {
        use crate::cuts;
        let c = 5;
        let p = 3;
        let s = barbell_stream(c, p, 4, false);
        let last = s.replay().pop().expect("non-empty");
        let edges: Vec<Edge> = last.edges().collect();
        // p + 1 path edges, all bridges; min cut 1.
        assert_eq!(cuts::bridges(s.n, &edges).len(), p + 1);
        assert_eq!(cuts::global_min_cut(s.n, &edges), 1);
        assert_eq!(edges.len(), 2 * (c * (c - 1) / 2) + p + 1);
    }

    #[test]
    fn barbell_delete_phase_disconnects() {
        let s = barbell_stream(4, 2, 3, true);
        let last = s.replay().pop().expect("non-empty");
        // After deleting the path: two cliques + 2 isolated path
        // vertices = 4 components.
        assert_eq!(oracle::component_count(s.n, last.edges()), 4);
    }

    #[test]
    fn barbell_without_path_vertices_still_bridges() {
        let s = barbell_stream(3, 0, 2, false);
        let last = s.replay().pop().expect("non-empty");
        let edges: Vec<Edge> = last.edges().collect();
        use crate::cuts;
        assert_eq!(cuts::bridges(s.n, &edges), vec![Edge::new(0, 3)]);
    }
}
