//! Graph substrate for the `mpc-stream` workspace.
//!
//! Everything the streaming-MPC algorithms consume or are tested
//! against lives here:
//!
//! * [`ids`] — vertex ids, normalized (weighted) edges, and the edge
//!   ↔ `u64` index encoding used by the sketch vectors `X_v` of the
//!   paper (Section 3.1).
//! * [`update`] — edge insertions/deletions and update batches, the
//!   unit of work of the streaming MPC model (Section 1.2).
//! * [`dynamic`] — a checked dynamic-graph harness that validates the
//!   model's assumptions (simple graph, deletions only of live edges).
//! * [`oracle`] — sequential reference algorithms: union-find
//!   connectivity, Kruskal MSF, bipartiteness, maximal and maximum
//!   matchings. Every MPC algorithm in the workspace is tested against
//!   these.
//! * [`cuts`] — cut oracles (Stoer–Wagner global min cut, edge
//!   connectivity, bridges) backing the `mpc-kconn` extension crate.
//! * [`gen`] — seeded workload generators producing the batch streams
//!   used by the experiments in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use mpc_graph::ids::Edge;
//! use mpc_graph::oracle::UnionFind;
//!
//! let mut uf = UnionFind::new(4);
//! uf.union(0, 1);
//! uf.union(2, 3);
//! assert!(uf.connected(0, 1));
//! assert!(!uf.connected(1, 2));
//! let e = Edge::new(3, 1);
//! assert_eq!((e.u(), e.v()), (1, 3)); // normalized
//! ```

#![forbid(unsafe_code)]

pub mod cuts;
pub mod dynamic;
pub mod gen;
pub mod ids;
pub mod oracle;
pub mod update;

pub use dynamic::DynamicGraph;
pub use ids::{Edge, VertexId, WeightedEdge};
pub use update::{Batch, Update, WeightedBatch, WeightedUpdate};
