//! Vertex and edge identifiers.
//!
//! Vertices are dense `u32` ids in `[0, n)`, matching the paper's
//! fixed vertex set `V = {v_1, …, v_n}` (Section 1.2). Edges are
//! stored normalized (`u < v`) so `{u, v}` and `{v, u}` compare equal,
//! and every edge has a canonical `u64` *index* into the
//! `binom{n}{2}`-dimensional vector space the AGM sketches operate on
//! (Section 3.1).

/// A vertex identifier: a dense index in `[0, n)`.
pub type VertexId = u32;

/// An undirected, unweighted edge, stored normalized with
/// `u() < v()`.
///
/// # Examples
///
/// ```
/// use mpc_graph::ids::Edge;
///
/// assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates a normalized edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (`u == v`); the model's graphs are simple.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        // lint: allow(panic-reachability): documented "# Panics" precondition — graphs are simple, a self-loop is a caller bug
        assert!(a != b, "self-loop {{{a},{a}}} is not a valid edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self}");
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn touches(self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }

    /// The canonical index of this edge in the `binom{n}{2}`-
    /// dimensional edge space of an `n`-vertex graph: `u * n + v`.
    ///
    /// This is the coordinate the sketch vectors `X_v` use
    /// (paper Section 3.1). The encoding is injective for `u < v < n`
    /// and fits in a `u64` for all practical `n`.
    #[inline]
    pub fn index(self, n: usize) -> u64 {
        debug_assert!((self.v as usize) < n, "edge {self} out of range for n={n}");
        self.u as u64 * n as u64 + self.v as u64
    }

    /// Inverse of [`Edge::index`].
    ///
    /// # Panics
    ///
    /// Panics if the index does not decode to a normalized edge.
    #[inline]
    pub fn from_index(index: u64, n: usize) -> Self {
        let u = (index / n as u64) as VertexId;
        let v = (index % n as u64) as VertexId;
        // lint: allow(panic-reachability): documented "# Panics" precondition — a non-decoding index is a caller bug
        assert!(u < v, "index {index} does not decode to a normalized edge");
        Edge { u, v }
    }
}

impl mpc_snapshot::Persist for Edge {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u32(self.u);
        w.put_u32(self.v);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let u = r.take_u32()?;
        let v = r.take_u32()?;
        if u >= v {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "edge ({u},{v}) is not normalized"
            )));
        }
        Ok(Edge { u, v })
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{},{}}}", self.u, self.v)
    }
}

/// An undirected edge with a weight, normalized like [`Edge`].
///
/// Weights are `u64`; the paper assumes weights in `[1, W]` with
/// `W = poly(n)` (Section 7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WeightedEdge {
    /// The underlying edge.
    pub edge: Edge,
    /// The edge weight.
    pub weight: u64,
}

impl WeightedEdge {
    /// Creates a normalized weighted edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops.
    #[inline]
    pub fn new(a: VertexId, b: VertexId, weight: u64) -> Self {
        WeightedEdge {
            edge: Edge::new(a, b),
            weight,
        }
    }
}

impl mpc_snapshot::Persist for WeightedEdge {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.edge.save(w);
        w.put_u64(self.weight);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(WeightedEdge {
            edge: Edge::load(r)?,
            weight: r.take_u64()?,
        })
    }
}

impl From<WeightedEdge> for Edge {
    fn from(w: WeightedEdge) -> Edge {
        w.edge
    }
}

impl std::fmt::Display for WeightedEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.edge, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_normalize() {
        let e = Edge::new(9, 3);
        assert_eq!(e.u(), 3);
        assert_eq!(e.v(), 9);
        assert_eq!(e, Edge::new(3, 9));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Edge::new(4, 4);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 2);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
        assert!(e.touches(1) && e.touches(2) && !e.touches(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_of_non_endpoint_panics() {
        let _ = Edge::new(1, 2).other(5);
    }

    #[test]
    fn index_roundtrip() {
        let n = 100;
        for (a, b) in [(0u32, 1u32), (0, 99), (42, 43), (7, 77)] {
            let e = Edge::new(a, b);
            assert_eq!(Edge::from_index(e.index(n), n), e);
        }
    }

    #[test]
    fn index_is_injective_small() {
        let n = 20;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                assert!(seen.insert(Edge::new(a, b).index(n)));
            }
        }
    }

    #[test]
    fn weighted_edge_normalizes_and_displays() {
        let w = WeightedEdge::new(8, 2, 17);
        assert_eq!(w.edge, Edge::new(2, 8));
        assert_eq!(format!("{w}"), "{2,8}#17");
        let e: Edge = w.into();
        assert_eq!(e, Edge::new(2, 8));
    }
}
