//! Sequential reference algorithms ("oracles").
//!
//! Every MPC algorithm in this workspace is validated against a
//! classical sequential counterpart from this module:
//!
//! * [`UnionFind`] / [`components`] — connectivity ground truth for
//!   the paper's Theorem 1.1.
//! * [`kruskal_msf`] — exact minimum spanning forest for Theorem 1.2.
//! * [`is_bipartite`] — two-coloring check for Theorem 7.3.
//! * [`greedy_maximal_matching`] / [`maximum_matching`] — matching
//!   ground truth for the Section 8 algorithms; the maximum matching
//!   is computed exactly with Edmonds' blossom algorithm so measured
//!   approximation ratios in `EXPERIMENTS.md` are against true `OPT`.

use crate::ids::{Edge, VertexId, WeightedEdge};
use std::collections::VecDeque;

/// Union-find (disjoint set union) with path halving and union by
/// size.
///
/// # Examples
///
/// ```
/// use mpc_graph::oracle::UnionFind;
///
/// let mut uf = UnionFind::new(3);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: VertexId) -> VertexId {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Joins the sets of `a` and `b`. Returns `true` if they were
    /// previously separate.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

impl mpc_snapshot::Persist for UnionFind {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.parent.save(w);
        self.size.save(w);
        w.put_usize(self.components);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let parent = Vec::<u32>::load(r)?;
        let size = Vec::<u32>::load(r)?;
        let components = r.take_usize()?;
        let n = parent.len();
        if size.len() != n || components > n || parent.iter().any(|&p| p as usize >= n) {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "inconsistent union-find: {n} parents, {} sizes, {components} components",
                size.len()
            )));
        }
        Ok(UnionFind {
            parent,
            size,
            components,
        })
    }
}

/// Connected-component labels: `label[v]` is the smallest vertex id in
/// `v`'s component, matching the paper's component-id convention
/// (Section 4.2).
pub fn components(n: usize, edges: impl IntoIterator<Item = Edge>) -> Vec<VertexId> {
    let mut uf = UnionFind::new(n);
    for e in edges {
        uf.union(e.u(), e.v());
    }
    // Map each root to the minimum vertex id in its set.
    let mut min_of_root: Vec<VertexId> = (0..n as u32).collect();
    for v in 0..n as u32 {
        let r = uf.find(v);
        if v < min_of_root[r as usize] {
            min_of_root[r as usize] = v;
        }
    }
    (0..n as u32)
        .map(|v| {
            let r = uf.find(v);
            min_of_root[r as usize]
        })
        .collect()
}

/// Number of connected components of the graph.
pub fn component_count(n: usize, edges: impl IntoIterator<Item = Edge>) -> usize {
    let mut uf = UnionFind::new(n);
    for e in edges {
        uf.union(e.u(), e.v());
    }
    uf.component_count()
}

/// Exact minimum spanning forest by Kruskal's algorithm. Ties are
/// broken by edge identity, so the result is deterministic.
pub fn kruskal_msf(n: usize, edges: impl IntoIterator<Item = WeightedEdge>) -> Vec<WeightedEdge> {
    let mut sorted: Vec<WeightedEdge> = edges.into_iter().collect();
    sorted.sort_by_key(|we| (we.weight, we.edge));
    let mut uf = UnionFind::new(n);
    let mut forest = Vec::new();
    for we in sorted {
        if uf.union(we.edge.u(), we.edge.v()) {
            forest.push(we);
        }
    }
    forest
}

/// Total weight of the exact minimum spanning forest.
pub fn msf_weight(n: usize, edges: impl IntoIterator<Item = WeightedEdge>) -> u64 {
    kruskal_msf(n, edges).iter().map(|we| we.weight).sum()
}

/// Whether the graph is bipartite (BFS two-coloring).
pub fn is_bipartite(n: usize, edges: &[Edge]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        adj[e.u() as usize].push(e.v());
        adj[e.v() as usize].push(e.u());
    }
    let mut color = vec![u8::MAX; n];
    for s in 0..n {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        let mut q = VecDeque::from([s as u32]);
        while let Some(v) = q.pop_front() {
            for &w in &adj[v as usize] {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    q.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// Greedy maximal matching in the given edge order. The result is
/// maximal (no live edge has both endpoints free) and therefore at
/// least half the maximum matching.
pub fn greedy_maximal_matching(n: usize, edges: impl IntoIterator<Item = Edge>) -> Vec<Edge> {
    let mut matched = vec![false; n];
    let mut m = Vec::new();
    for e in edges {
        if !matched[e.u() as usize] && !matched[e.v() as usize] {
            matched[e.u() as usize] = true;
            matched[e.v() as usize] = true;
            m.push(e);
        }
    }
    m
}

/// Exact maximum matching in a general graph via Edmonds' blossom
/// algorithm (`O(V^3)`), used to measure true approximation ratios.
pub fn maximum_matching(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        adj[e.u() as usize].push(e.v() as usize);
        adj[e.v() as usize].push(e.u() as usize);
    }
    let mut matching = Blossom::new(n, adj).run();
    let mut out = Vec::new();
    for v in 0..n {
        if let Some(w) = matching[v] {
            if v < w {
                out.push(Edge::new(v as u32, w as u32));
                matching[w] = Some(v); // keep consistent (no-op)
            }
        }
    }
    out
}

/// Size of the exact maximum matching.
pub fn maximum_matching_size(n: usize, edges: &[Edge]) -> usize {
    maximum_matching(n, edges).len()
}

/// Edmonds' blossom algorithm state (classic `O(V^3)` formulation).
struct Blossom {
    n: usize,
    adj: Vec<Vec<usize>>,
    matched: Vec<Option<usize>>,
    parent: Vec<usize>,
    base: Vec<usize>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

const NIL: usize = usize::MAX;

impl Blossom {
    fn new(n: usize, adj: Vec<Vec<usize>>) -> Self {
        Blossom {
            n,
            adj,
            matched: vec![None; n],
            parent: vec![NIL; n],
            base: (0..n).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
        }
    }

    fn lca(&self, mut a: usize, mut b: usize) -> usize {
        let mut seen = vec![false; self.n];
        loop {
            a = self.base[a];
            seen[a] = true;
            match self.matched[a] {
                Some(m) if self.parent[m] != NIL => a = self.parent[m],
                _ => break,
            }
        }
        loop {
            b = self.base[b];
            if seen[b] {
                return b;
            }
            b = self.parent[self.matched[b].expect("alternating path invariant")];
        }
    }

    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            let mv = self.matched[v].expect("matched along blossom path");
            self.blossom[self.base[v]] = true;
            self.blossom[self.base[mv]] = true;
            self.parent[v] = child;
            child = mv;
            v = self.parent[mv];
        }
    }

    fn find_path(&mut self, root: usize) -> usize {
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = NIL);
        for i in 0..self.n {
            self.base[i] = i;
        }
        self.used[root] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for idx in 0..self.adj[v].len() {
                let to = self.adj[v][idx];
                if self.base[v] == self.base[to] || self.matched[v] == Some(to) {
                    continue;
                }
                if to == root || matches!(self.matched[to], Some(m) if self.parent[m] != NIL) {
                    // Found a blossom; contract it.
                    let cur_base = self.lca(v, to);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, to);
                    self.mark_path(to, cur_base, v);
                    for i in 0..self.n {
                        if self.blossom[self.base[i]] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to] == NIL {
                    self.parent[to] = v;
                    match self.matched[to] {
                        None => return to, // augmenting path found
                        Some(m) => {
                            self.used[m] = true;
                            queue.push_back(m);
                        }
                    }
                }
            }
        }
        NIL
    }

    fn run(mut self) -> Vec<Option<usize>> {
        for v in 0..self.n {
            if self.matched[v].is_none() {
                let end = self.find_path(v);
                if end != NIL {
                    // Flip the augmenting path root → … → end: walk from
                    // `end` to the root through `parent`, rewiring each
                    // (parent, child) pair and continuing from the
                    // parent's old mate.
                    let mut cur = end;
                    loop {
                        let pv = self.parent[cur];
                        let old_mate = self.matched[pv];
                        self.matched[cur] = Some(pv);
                        self.matched[pv] = Some(cur);
                        match old_mate {
                            Some(next) => cur = next,
                            None => break, // reached the free root
                        }
                    }
                }
            }
        }
        self.matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn components_use_min_vertex_label() {
        let labels = components(6, [e(3, 4), e(4, 5), e(1, 2)]);
        assert_eq!(labels, vec![0, 1, 1, 3, 3, 3]);
        assert_eq!(component_count(6, [e(3, 4), e(4, 5), e(1, 2)]), 3);
    }

    #[test]
    fn kruskal_on_triangle() {
        let edges = [
            WeightedEdge::new(0, 1, 1),
            WeightedEdge::new(1, 2, 2),
            WeightedEdge::new(0, 2, 3),
        ];
        let msf = kruskal_msf(3, edges);
        assert_eq!(msf.len(), 2);
        assert_eq!(msf.iter().map(|we| we.weight).sum::<u64>(), 3);
        assert_eq!(msf_weight(3, edges), 3);
    }

    #[test]
    fn kruskal_disconnected() {
        let edges = [WeightedEdge::new(0, 1, 5), WeightedEdge::new(2, 3, 7)];
        let msf = kruskal_msf(5, edges);
        assert_eq!(msf.len(), 2);
        assert_eq!(msf_weight(5, edges), 12);
    }

    #[test]
    fn bipartite_detection() {
        // Even cycle: bipartite.
        assert!(is_bipartite(4, &[e(0, 1), e(1, 2), e(2, 3), e(3, 0)]));
        // Odd cycle: not bipartite.
        assert!(!is_bipartite(3, &[e(0, 1), e(1, 2), e(2, 0)]));
        // Disconnected with one odd component.
        assert!(!is_bipartite(6, &[e(0, 1), e(3, 4), e(4, 5), e(5, 3)]));
        // Empty graph is bipartite.
        assert!(is_bipartite(3, &[]));
    }

    #[test]
    fn greedy_matching_is_maximal() {
        let edges = [e(0, 1), e(1, 2), e(2, 3), e(3, 4)];
        let m = greedy_maximal_matching(5, edges);
        // Greedy in this order picks {0,1} and {2,3}.
        assert_eq!(m, vec![e(0, 1), e(2, 3)]);
        // Maximality: every edge has a matched endpoint.
        let mut matched = [false; 5];
        for me in &m {
            matched[me.u() as usize] = true;
            matched[me.v() as usize] = true;
        }
        for ee in edges {
            assert!(matched[ee.u() as usize] || matched[ee.v() as usize]);
        }
    }

    /// Exact maximum matching by bitmask DP, for cross-checking the
    /// blossom implementation on small graphs.
    fn max_matching_dp(n: usize, edges: &[Edge]) -> usize {
        assert!(n <= 16);
        let full = 1usize << n;
        // f[mask] = maximum matching within the vertex set `mask`.
        let mut f = vec![0u8; full];
        for mask in 1..full {
            let v = mask.trailing_zeros() as usize;
            // Either v stays unmatched...
            let mut best = f[mask & !(1 << v)];
            // ...or v is matched along some edge inside the mask.
            for &ed in edges {
                let (a, b) = (ed.u() as usize, ed.v() as usize);
                let bits = (1 << a) | (1 << b);
                if (a == v || b == v) && mask & bits == bits {
                    best = best.max(1 + f[mask & !bits]);
                }
            }
            f[mask] = best;
        }
        f[full - 1] as usize
    }

    #[test]
    fn blossom_on_odd_cycle() {
        // 5-cycle: maximum matching is 2.
        let edges = [e(0, 1), e(1, 2), e(2, 3), e(3, 4), e(4, 0)];
        assert_eq!(maximum_matching_size(5, &edges), 2);
    }

    #[test]
    fn blossom_on_petersen_like() {
        // Two triangles joined by an edge: perfect matching of size 3.
        let edges = [
            e(0, 1),
            e(1, 2),
            e(2, 0),
            e(3, 4),
            e(4, 5),
            e(5, 3),
            e(0, 3),
        ];
        assert_eq!(maximum_matching_size(6, &edges), 3);
    }

    #[test]
    fn blossom_matches_dp_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12345);
        for trial in 0..60 {
            let n = rng.gen_range(2..12);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.35) {
                        edges.push(e(a, b));
                    }
                }
            }
            let exact = max_matching_dp(n, &edges);
            let blossom = maximum_matching_size(n, &edges);
            assert_eq!(blossom, exact, "trial {trial}: n={n} edges={edges:?}");
        }
    }

    #[test]
    fn blossom_output_is_valid_matching() {
        let edges = [e(0, 1), e(1, 2), e(2, 3), e(3, 0), e(0, 2)];
        let m = maximum_matching(4, &edges);
        let mut used = [false; 4];
        for me in &m {
            assert!(edges.contains(me));
            assert!(!used[me.u() as usize] && !used[me.v() as usize]);
            used[me.u() as usize] = true;
            used[me.v() as usize] = true;
        }
        assert_eq!(m.len(), 2);
    }
}
