//! Sequential cut oracles: global minimum cut, edge connectivity,
//! and bridges.
//!
//! These are the ground truth for the `mpc-kconn` crate, which
//! implements the k-edge-connectivity extension the paper's
//! conclusion (Section 9) names as an open direction of its
//! streaming-MPC model. The oracles are classical:
//!
//! * [`global_min_cut`] — Stoer–Wagner minimum-cut on a multigraph
//!   view of the edge list (parallel edges add capacity).
//! * [`edge_connectivity`] — `min(λ(G), components-aware)`: the size
//!   of the smallest edge cut, `0` for disconnected graphs.
//! * [`bridges`] — cut edges, via one DFS low-link pass.
//! * [`is_k_edge_connected`] — convenience predicate on top of
//!   [`edge_connectivity`].

use crate::ids::{Edge, VertexId};
use crate::oracle::UnionFind;

/// The value of a global minimum cut of the graph `(V=[n], edges)`,
/// computed with the Stoer–Wagner algorithm in `O(n³)` time.
///
/// Parallel occurrences of an edge in `edges` contribute additively
/// to the cut capacity, so the function is usable on multigraph edge
/// lists (e.g. unions of edge-disjoint forests).
///
/// Returns `0` when the graph is disconnected (including `n <= 1`
/// with no edges; a single vertex has no cut and also returns `0`).
///
/// # Examples
///
/// ```
/// use mpc_graph::cuts::global_min_cut;
/// use mpc_graph::ids::Edge;
///
/// // A 4-cycle: every global cut has at least 2 edges.
/// let cycle = [
///     Edge::new(0, 1),
///     Edge::new(1, 2),
///     Edge::new(2, 3),
///     Edge::new(3, 0),
/// ];
/// assert_eq!(global_min_cut(4, &cycle), 2);
/// ```
pub fn global_min_cut(n: usize, edges: &[Edge]) -> u64 {
    if n <= 1 {
        return 0;
    }
    // Disconnected graphs have an empty cut.
    let mut uf = UnionFind::new(n);
    for e in edges {
        uf.union(e.u(), e.v());
    }
    if uf.component_count() > 1 {
        return 0;
    }
    // Dense capacity matrix; n is small in oracle usage.
    let mut w = vec![vec![0u64; n]; n];
    for e in edges {
        let (a, b) = (e.u() as usize, e.v() as usize);
        if a != b {
            w[a][b] += 1;
            w[b][a] += 1;
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // One minimum-cut phase: maximum-adjacency ordering.
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0u64; n];
        let start = active[0];
        in_a[start] = true;
        for v in &active {
            weight_to_a[*v] = w[start][*v];
        }
        let mut prev = start;
        let mut last = start;
        for _ in 1..active.len() {
            let mut pick = usize::MAX;
            let mut pick_w = 0u64;
            for &v in &active {
                if !in_a[v] && (pick == usize::MAX || weight_to_a[v] > pick_w) {
                    pick = v;
                    pick_w = weight_to_a[v];
                }
            }
            in_a[pick] = true;
            prev = last;
            last = pick;
            for &v in &active {
                if !in_a[v] {
                    weight_to_a[v] += w[pick][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone vs the rest.
        best = best.min(weight_to_a[last]);
        // Merge `last` into `prev`.
        let merged: Vec<u64> = (0..n).map(|v| w[prev][v] + w[last][v]).collect();
        w[prev].copy_from_slice(&merged);
        for (v, val) in merged.into_iter().enumerate() {
            w[v][prev] = val;
        }
        w[prev][prev] = 0;
        active.retain(|&v| v != last);
    }
    best
}

/// The edge connectivity `λ(G)`: the minimum number of edges whose
/// removal disconnects the graph. `0` for disconnected graphs and for
/// `n <= 1`.
///
/// # Examples
///
/// ```
/// use mpc_graph::cuts::edge_connectivity;
/// use mpc_graph::ids::Edge;
///
/// // A path is 1-edge-connected; deleting any edge splits it.
/// let path = [Edge::new(0, 1), Edge::new(1, 2)];
/// assert_eq!(edge_connectivity(3, &path), 1);
/// ```
pub fn edge_connectivity(n: usize, edges: &[Edge]) -> u64 {
    global_min_cut(n, edges)
}

/// `true` iff the graph is `k`-edge-connected (every cut has at
/// least `k` edges). Every graph, including the empty one, is
/// `0`-edge-connected; a single vertex is `k`-edge-connected for all
/// `k` by the usual convention only when `k = 0` here (there is no
/// cut, but there is also no pair to connect — we follow
/// `λ(K_1) = 0`).
///
/// # Examples
///
/// ```
/// use mpc_graph::cuts::is_k_edge_connected;
/// use mpc_graph::ids::Edge;
///
/// let cycle = [
///     Edge::new(0, 1),
///     Edge::new(1, 2),
///     Edge::new(2, 0),
/// ];
/// assert!(is_k_edge_connected(3, &cycle, 2));
/// assert!(!is_k_edge_connected(3, &cycle, 3));
/// ```
pub fn is_k_edge_connected(n: usize, edges: &[Edge], k: u64) -> bool {
    if k == 0 {
        return true;
    }
    edge_connectivity(n, edges) >= k
}

/// All bridges (cut edges) of the graph, via an iterative DFS
/// low-link pass in `O(n + m)` time. Parallel copies of the same
/// edge in `edges` make it a non-bridge, matching the multigraph
/// semantics of [`global_min_cut`].
///
/// The returned edges are sorted.
///
/// # Examples
///
/// ```
/// use mpc_graph::cuts::bridges;
/// use mpc_graph::ids::Edge;
///
/// // Two triangles joined by one edge: only the joint is a bridge.
/// let edges = [
///     Edge::new(0, 1),
///     Edge::new(1, 2),
///     Edge::new(2, 0),
///     Edge::new(2, 3), // bridge
///     Edge::new(3, 4),
///     Edge::new(4, 5),
///     Edge::new(5, 3),
/// ];
/// assert_eq!(bridges(6, &edges), vec![Edge::new(2, 3)]);
/// ```
pub fn bridges(n: usize, edges: &[Edge]) -> Vec<Edge> {
    // Adjacency with edge indices so a parallel edge is not mistaken
    // for the tree edge back to the parent.
    let mut adj: Vec<Vec<(VertexId, usize)>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        if e.u() == e.v() {
            continue;
        }
        adj[e.u() as usize].push((e.v(), i));
        adj[e.v() as usize].push((e.u(), i));
    }
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut out = Vec::new();
    let mut timer: u32 = 0;
    for root in 0..n {
        if disc[root] != u32::MAX {
            continue;
        }
        // Iterative DFS: (vertex, parent edge index, next child slot).
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (v, pe, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let (to, ei) = adj[v][*next];
                *next += 1;
                if ei == pe {
                    continue;
                }
                let to = to as usize;
                if disc[to] == u32::MAX {
                    disc[to] = timer;
                    low[to] = timer;
                    timer += 1;
                    stack.push((to, ei, 0));
                } else {
                    low[v] = low[v].min(disc[to]);
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                    if low[v] > disc[parent] {
                        out.push(edges[pe]);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn min_cut_of_disconnected_graph_is_zero() {
        assert_eq!(global_min_cut(4, &[e(0, 1), e(2, 3)]), 0);
        assert_eq!(global_min_cut(3, &[]), 0);
        assert_eq!(global_min_cut(0, &[]), 0);
        assert_eq!(global_min_cut(1, &[]), 0);
    }

    #[test]
    fn min_cut_of_tree_is_one() {
        let tree = [e(0, 1), e(1, 2), e(1, 3), e(3, 4)];
        assert_eq!(global_min_cut(5, &tree), 1);
        assert_eq!(edge_connectivity(5, &tree), 1);
    }

    #[test]
    fn min_cut_of_complete_graph_is_n_minus_one() {
        for n in 2..7usize {
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    edges.push(e(a, b));
                }
            }
            assert_eq!(global_min_cut(n, &edges), n as u64 - 1, "K_{n}");
        }
    }

    #[test]
    fn min_cut_respects_parallel_edges() {
        // Two vertices joined by three parallel edges: cut = 3.
        let edges = [e(0, 1), e(0, 1), e(0, 1)];
        assert_eq!(global_min_cut(2, &edges), 3);
    }

    #[test]
    fn min_cut_finds_bottleneck_between_cliques() {
        // Two K4's joined by two edges → min cut 2.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                edges.push(e(a, b));
                edges.push(e(a + 4, b + 4));
            }
        }
        edges.push(e(0, 4));
        edges.push(e(1, 5));
        assert_eq!(global_min_cut(8, &edges), 2);
    }

    #[test]
    fn min_cut_matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let n = rng.gen_range(2..9usize);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        edges.push(e(a, b));
                    }
                }
            }
            // Brute force over all 2^(n-1) bipartitions containing 0.
            let mut best = u64::MAX;
            for mask in 0..(1u32 << (n - 1)) {
                let side = |v: u32| -> bool { v == 0 || (mask >> (v - 1)) & 1 == 1 };
                // Skip the trivial partition with everything on 0's side.
                if (0..n as u32).all(side) {
                    continue;
                }
                let cut = edges
                    .iter()
                    .filter(|ed| side(ed.u()) != side(ed.v()))
                    .count() as u64;
                best = best.min(cut);
            }
            // Disconnected graphs: brute force already reports 0.
            assert_eq!(
                global_min_cut(n, &edges),
                best,
                "trial {trial}: n={n} edges={edges:?}"
            );
        }
    }

    #[test]
    fn k_connected_predicate_boundaries() {
        let cycle = [e(0, 1), e(1, 2), e(2, 3), e(3, 0)];
        assert!(is_k_edge_connected(4, &cycle, 0));
        assert!(is_k_edge_connected(4, &cycle, 1));
        assert!(is_k_edge_connected(4, &cycle, 2));
        assert!(!is_k_edge_connected(4, &cycle, 3));
        // Disconnected graph is only 0-edge-connected.
        assert!(is_k_edge_connected(4, &[e(0, 1)], 0));
        assert!(!is_k_edge_connected(4, &[e(0, 1)], 1));
    }

    #[test]
    fn bridges_of_tree_are_all_edges() {
        let tree = [e(0, 1), e(1, 2), e(1, 3)];
        assert_eq!(bridges(4, &tree), vec![e(0, 1), e(1, 2), e(1, 3)]);
    }

    #[test]
    fn bridges_of_cycle_are_empty() {
        let cycle = [e(0, 1), e(1, 2), e(2, 0)];
        assert!(bridges(3, &cycle).is_empty());
    }

    #[test]
    fn parallel_edge_is_not_a_bridge() {
        assert!(bridges(2, &[e(0, 1), e(0, 1)]).is_empty());
        assert_eq!(bridges(2, &[e(0, 1)]), vec![e(0, 1)]);
    }

    #[test]
    fn bridges_in_disconnected_graph() {
        // Component {0,1,2} is a triangle, component {3,4} a bridge.
        let edges = [e(0, 1), e(1, 2), e(2, 0), e(3, 4)];
        assert_eq!(bridges(5, &edges), vec![e(3, 4)]);
    }

    #[test]
    fn bridges_match_deletion_definition_on_random_graphs() {
        use crate::oracle::component_count;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(2..10usize);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.3) {
                        edges.push(e(a, b));
                    }
                }
            }
            let base = component_count(n, edges.iter().copied());
            let found = bridges(n, &edges);
            for (i, cand) in edges.iter().enumerate() {
                let without: Vec<Edge> = edges
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, ed)| *ed)
                    .collect();
                let is_bridge = component_count(n, without.iter().copied()) > base;
                assert_eq!(
                    found.contains(cand),
                    is_bridge,
                    "trial {trial}: edge {cand:?} in {edges:?}"
                );
            }
        }
    }
}
