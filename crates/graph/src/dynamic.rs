//! A checked dynamic-graph harness.
//!
//! [`DynamicGraph`] tracks the live edge set of an evolving graph and
//! *validates the model's assumptions* (paper Section 1.2): the graph
//! stays simple (no duplicate insertions) and deletions only remove
//! existing edges. The test suites and workload generators use it both
//! as ground truth and as a sanity gate in front of the MPC
//! algorithms.

use crate::ids::{Edge, VertexId, WeightedEdge};
use crate::update::{Batch, Update, WeightedBatch, WeightedUpdate};
use std::collections::{BTreeMap, BTreeSet};

/// Error returned when a batch violates the dynamic-graph model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphUpdateError {
    /// Inserting an edge that is already live.
    DuplicateInsert(Edge),
    /// Deleting an edge that is not live.
    MissingDelete(Edge),
    /// An endpoint is out of `[0, n)`.
    VertexOutOfRange(VertexId, usize),
    /// A weighted delete whose weight does not match the live edge.
    WeightMismatch(Edge, u64, u64),
}

impl std::fmt::Display for GraphUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphUpdateError::DuplicateInsert(e) => {
                write!(f, "insert of already-live edge {e}")
            }
            GraphUpdateError::MissingDelete(e) => {
                write!(f, "delete of non-live edge {e}")
            }
            GraphUpdateError::VertexOutOfRange(v, n) => {
                write!(f, "vertex {v} out of range for n={n}")
            }
            GraphUpdateError::WeightMismatch(e, live, got) => {
                write!(f, "delete of {e} with weight {got}, live weight is {live}")
            }
        }
    }
}

impl std::error::Error for GraphUpdateError {}

/// The live edge set of an evolving simple graph on a fixed vertex
/// set, with optional per-edge weights.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use mpc_graph::dynamic::DynamicGraph;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::{Batch, Update};
///
/// let mut g = DynamicGraph::new(4);
/// g.apply(&Batch::from_updates(vec![
///     Update::Insert(Edge::new(0, 1)),
///     Update::Insert(Edge::new(1, 2)),
/// ]))?;
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.contains(Edge::new(0, 1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    n: usize,
    edges: BTreeMap<Edge, u64>,
}

impl DynamicGraph {
    /// Creates an empty graph on `n` vertices (the paper's starting
    /// state).
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            n,
            edges: BTreeMap::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `e` is live.
    pub fn contains(&self, e: Edge) -> bool {
        self.edges.contains_key(&e)
    }

    /// The weight of a live edge, if present (1 for unweighted
    /// insertions).
    pub fn weight(&self, e: Edge) -> Option<u64> {
        self.edges.get(&e).copied()
    }

    /// Iterates over the live edges in normalized order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.keys().copied()
    }

    /// Iterates over the live weighted edges in normalized order.
    pub fn weighted_edges(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.edges
            .iter()
            .map(|(&edge, &weight)| WeightedEdge { edge, weight })
    }

    /// The live neighbor set of `v`.
    pub fn neighbors(&self, v: VertexId) -> BTreeSet<VertexId> {
        // A scan is fine: this type is a test oracle, not a hot path.
        self.edges
            .keys()
            .filter(|e| e.touches(v))
            .map(|e| e.other(v))
            .collect()
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphUpdateError> {
        if (v as usize) < self.n {
            Ok(())
        } else {
            Err(GraphUpdateError::VertexOutOfRange(v, self.n))
        }
    }

    /// Applies a single unweighted update (weight 1).
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the graph unchanged) on duplicate
    /// inserts, missing deletes, or out-of-range vertices.
    pub fn apply_update(&mut self, u: Update) -> Result<(), GraphUpdateError> {
        let e = u.edge();
        self.check_vertex(e.u())?;
        self.check_vertex(e.v())?;
        match u {
            Update::Insert(e) => {
                if self.edges.contains_key(&e) {
                    return Err(GraphUpdateError::DuplicateInsert(e));
                }
                self.edges.insert(e, 1);
            }
            Update::Delete(e) => {
                if self.edges.remove(&e).is_none() {
                    return Err(GraphUpdateError::MissingDelete(e));
                }
            }
        }
        Ok(())
    }

    /// Applies a whole batch in arrival order.
    ///
    /// # Errors
    ///
    /// Stops at the first invalid update; earlier updates in the
    /// batch stay applied (mirroring a streaming system that validates
    /// per update).
    pub fn apply(&mut self, batch: &Batch) -> Result<(), GraphUpdateError> {
        for u in batch.iter() {
            self.apply_update(u)?;
        }
        Ok(())
    }

    /// Applies a single weighted update.
    ///
    /// # Errors
    ///
    /// As [`DynamicGraph::apply_update`], plus a weight-mismatch check
    /// on deletes.
    pub fn apply_weighted_update(&mut self, u: WeightedUpdate) -> Result<(), GraphUpdateError> {
        let we = u.weighted_edge();
        self.check_vertex(we.edge.u())?;
        self.check_vertex(we.edge.v())?;
        match u {
            WeightedUpdate::Insert(we) => {
                if self.edges.contains_key(&we.edge) {
                    return Err(GraphUpdateError::DuplicateInsert(we.edge));
                }
                self.edges.insert(we.edge, we.weight);
            }
            WeightedUpdate::Delete(we) => match self.edges.get(&we.edge) {
                None => return Err(GraphUpdateError::MissingDelete(we.edge)),
                Some(&live) if live != we.weight => {
                    return Err(GraphUpdateError::WeightMismatch(we.edge, live, we.weight))
                }
                Some(_) => {
                    self.edges.remove(&we.edge);
                }
            },
        }
        Ok(())
    }

    /// Applies a whole weighted batch in arrival order.
    ///
    /// # Errors
    ///
    /// Stops at the first invalid update.
    pub fn apply_weighted(&mut self, batch: &WeightedBatch) -> Result<(), GraphUpdateError> {
        for u in batch.iter() {
            self.apply_weighted_update(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn insert_then_delete() {
        let mut g = DynamicGraph::new(3);
        g.apply_update(Update::Insert(e(0, 1))).unwrap();
        assert!(g.contains(e(0, 1)));
        assert_eq!(g.weight(e(0, 1)), Some(1));
        g.apply_update(Update::Delete(e(0, 1))).unwrap();
        assert!(!g.contains(e(0, 1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut g = DynamicGraph::new(3);
        g.apply_update(Update::Insert(e(0, 1))).unwrap();
        assert_eq!(
            g.apply_update(Update::Insert(e(1, 0))),
            Err(GraphUpdateError::DuplicateInsert(e(0, 1)))
        );
    }

    #[test]
    fn missing_delete_rejected() {
        let mut g = DynamicGraph::new(3);
        assert_eq!(
            g.apply_update(Update::Delete(e(0, 1))),
            Err(GraphUpdateError::MissingDelete(e(0, 1)))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = DynamicGraph::new(3);
        assert_eq!(
            g.apply_update(Update::Insert(e(0, 3))),
            Err(GraphUpdateError::VertexOutOfRange(3, 3))
        );
    }

    #[test]
    fn weighted_mismatch_rejected() {
        let mut g = DynamicGraph::new(3);
        g.apply_weighted_update(WeightedUpdate::Insert(WeightedEdge::new(0, 1, 5)))
            .unwrap();
        assert_eq!(
            g.apply_weighted_update(WeightedUpdate::Delete(WeightedEdge::new(0, 1, 6))),
            Err(GraphUpdateError::WeightMismatch(e(0, 1), 5, 6))
        );
        g.apply_weighted_update(WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)))
            .unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbors_track_updates() {
        let mut g = DynamicGraph::new(5);
        for b in [1, 2, 3] {
            g.apply_update(Update::Insert(e(0, b))).unwrap();
        }
        g.apply_update(Update::Delete(e(0, 2))).unwrap();
        assert_eq!(g.neighbors(0), [1, 3].into_iter().collect());
        assert_eq!(g.neighbors(4), BTreeSet::new());
    }

    #[test]
    fn weighted_edges_iterate() {
        let mut g = DynamicGraph::new(4);
        g.apply_weighted(&WeightedBatch::inserting([
            WeightedEdge::new(0, 1, 7),
            WeightedEdge::new(2, 3, 9),
        ]))
        .unwrap();
        let all: Vec<_> = g.weighted_edges().collect();
        assert_eq!(
            all,
            vec![WeightedEdge::new(0, 1, 7), WeightedEdge::new(2, 3, 9)]
        );
    }

    #[test]
    fn errors_display() {
        let err = GraphUpdateError::DuplicateInsert(e(0, 1));
        assert!(format!("{err}").contains("already-live"));
    }
}
