//! Edge updates and update batches.
//!
//! A *batch* is the unit of work of the streaming MPC model: at the
//! start of a phase a batch of up to `Õ(n^φ)` insertions and deletions
//! arrives, and the algorithm must process it in `O(1/φ)` rounds
//! (paper Section 1.2). Following the paper, a mixed batch is
//! processed as its insertions first, then its deletions.

use crate::ids::{Edge, WeightedEdge};

/// A single unweighted edge update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert a (currently absent) edge.
    Insert(Edge),
    /// Delete a (currently present) edge.
    Delete(Edge),
}

impl Update {
    /// The edge this update concerns.
    #[inline]
    pub fn edge(self) -> Edge {
        match self {
            Update::Insert(e) | Update::Delete(e) => e,
        }
    }

    /// Whether this is an insertion.
    #[inline]
    pub fn is_insert(self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

impl std::fmt::Display for Update {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Update::Insert(e) => write!(f, "+{e}"),
            Update::Delete(e) => write!(f, "-{e}"),
        }
    }
}

/// A single weighted edge update (for minimum-spanning-forest
/// workloads, paper Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightedUpdate {
    /// Insert a weighted edge.
    Insert(WeightedEdge),
    /// Delete a weighted edge (the weight must match the live edge).
    Delete(WeightedEdge),
}

impl WeightedUpdate {
    /// The weighted edge this update concerns.
    #[inline]
    pub fn weighted_edge(self) -> WeightedEdge {
        match self {
            WeightedUpdate::Insert(e) | WeightedUpdate::Delete(e) => e,
        }
    }

    /// Whether this is an insertion.
    #[inline]
    pub fn is_insert(self) -> bool {
        matches!(self, WeightedUpdate::Insert(_))
    }

    /// Drops the weight.
    #[inline]
    pub fn unweighted(self) -> Update {
        match self {
            WeightedUpdate::Insert(e) => Update::Insert(e.edge),
            WeightedUpdate::Delete(e) => Update::Delete(e.edge),
        }
    }
}

/// An ordered batch of unweighted updates.
///
/// # Examples
///
/// ```
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::{Batch, Update};
///
/// let batch = Batch::from_updates(vec![
///     Update::Insert(Edge::new(0, 1)),
///     Update::Delete(Edge::new(2, 3)),
/// ]);
/// assert_eq!(batch.insertions().count(), 1);
/// assert_eq!(batch.deletions().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    updates: Vec<Update>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Wraps an update list as a batch.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        Batch { updates }
    }

    /// A pure-insertion batch over the given edges.
    pub fn inserting<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        Batch {
            updates: edges.into_iter().map(Update::Insert).collect(),
        }
    }

    /// A pure-deletion batch over the given edges.
    pub fn deleting<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        Batch {
            updates: edges.into_iter().map(Update::Delete).collect(),
        }
    }

    /// Appends an update.
    pub fn push(&mut self, u: Update) {
        self.updates.push(u);
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = Update> + '_ {
        self.updates.iter().copied()
    }

    /// The inserted edges, in arrival order.
    pub fn insertions(&self) -> impl Iterator<Item = Edge> + '_ {
        self.updates.iter().filter_map(|u| match u {
            Update::Insert(e) => Some(*e),
            _ => None,
        })
    }

    /// The deleted edges, in arrival order.
    pub fn deletions(&self) -> impl Iterator<Item = Edge> + '_ {
        self.updates.iter().filter_map(|u| match u {
            Update::Delete(e) => Some(*e),
            _ => None,
        })
    }
}

impl FromIterator<Update> for Batch {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        Batch {
            updates: iter.into_iter().collect(),
        }
    }
}

impl Extend<Update> for Batch {
    fn extend<T: IntoIterator<Item = Update>>(&mut self, iter: T) {
        self.updates.extend(iter);
    }
}

impl IntoIterator for Batch {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

/// An ordered batch of weighted updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedBatch {
    updates: Vec<WeightedUpdate>,
}

impl WeightedBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WeightedBatch::default()
    }

    /// Wraps an update list as a batch.
    pub fn from_updates(updates: Vec<WeightedUpdate>) -> Self {
        WeightedBatch { updates }
    }

    /// A pure-insertion batch over the given weighted edges.
    pub fn inserting<I: IntoIterator<Item = WeightedEdge>>(edges: I) -> Self {
        WeightedBatch {
            updates: edges.into_iter().map(WeightedUpdate::Insert).collect(),
        }
    }

    /// Appends an update.
    pub fn push(&mut self, u: WeightedUpdate) {
        self.updates.push(u);
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = WeightedUpdate> + '_ {
        self.updates.iter().copied()
    }

    /// The inserted weighted edges, in arrival order.
    pub fn insertions(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.updates.iter().filter_map(|u| match u {
            WeightedUpdate::Insert(e) => Some(*e),
            _ => None,
        })
    }

    /// The deleted weighted edges, in arrival order.
    pub fn deletions(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.updates.iter().filter_map(|u| match u {
            WeightedUpdate::Delete(e) => Some(*e),
            _ => None,
        })
    }

    /// Drops the weights, producing an unweighted batch.
    pub fn unweighted(&self) -> Batch {
        Batch::from_updates(self.updates.iter().map(|u| u.unweighted()).collect())
    }
}

impl FromIterator<WeightedUpdate> for WeightedBatch {
    fn from_iter<T: IntoIterator<Item = WeightedUpdate>>(iter: T) -> Self {
        WeightedBatch {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn batch_partitions_updates() {
        let b = Batch::from_updates(vec![
            Update::Insert(e(0, 1)),
            Update::Insert(e(1, 2)),
            Update::Delete(e(0, 1)),
        ]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.insertions().collect::<Vec<_>>(), vec![e(0, 1), e(1, 2)]);
        assert_eq!(b.deletions().collect::<Vec<_>>(), vec![e(0, 1)]);
    }

    #[test]
    fn batch_collects_and_extends() {
        let mut b: Batch = vec![Update::Insert(e(0, 1))].into_iter().collect();
        b.extend([Update::Delete(e(0, 1))]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.into_iter().count(), 2);
    }

    #[test]
    fn weighted_batch_unweighted_projection() {
        let wb = WeightedBatch::from_updates(vec![
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Delete(WeightedEdge::new(1, 2, 9)),
        ]);
        let b = wb.unweighted();
        assert_eq!(
            b.iter().collect::<Vec<_>>(),
            vec![Update::Insert(e(0, 1)), Update::Delete(e(1, 2))]
        );
        assert_eq!(wb.insertions().count(), 1);
        assert_eq!(wb.deletions().count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Update::Insert(e(0, 1))), "+{0,1}");
        assert_eq!(format!("{}", Update::Delete(e(0, 1))), "-{0,1}");
    }

    #[test]
    fn constructors() {
        let ins = Batch::inserting([e(0, 1), e(2, 3)]);
        assert!(ins.iter().all(|u| u.is_insert()));
        let del = Batch::deleting([e(0, 1)]);
        assert!(del.iter().all(|u| !u.is_insert()));
        let wins = WeightedBatch::inserting([WeightedEdge::new(0, 1, 2)]);
        assert!(wins.iter().all(|u| u.is_insert()));
        assert_eq!(
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 2)).weighted_edge(),
            WeightedEdge::new(0, 1, 2)
        );
    }
}
