//! Fixture-based self-tests: one clean and one dirty source per rule
//! family, asserting the exact rule ids and line numbers the linter
//! reports, plus the end-to-end mutation drill on the *real*
//! accounting context (delete a replay arm, watch rule 1 name the
//! missing primitive).

#![forbid(unsafe_code)]

use mpc_lint::report::{AppliedAllow, Finding, Report};
use mpc_lint::{
    lint_source, RULE_ALLOW_HYGIENE, RULE_DETERMINISM, RULE_EVENT, RULE_IO, RULE_MAINTAIN,
    RULE_NO_PANIC, RULE_UNSAFE,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn run(rel_path: &str, name: &str) -> (Vec<Finding>, Vec<AppliedAllow>) {
    lint_source(rel_path, &fixture(name))
}

/// `(rule, line)` pairs, sorted, for exact comparisons.
fn keys(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    let mut k: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
    k.sort();
    k
}

#[test]
fn events_clean_fixture_passes() {
    let (findings, _) = run("crates/mpc/src/context.rs", "events_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn events_dirty_fixture_reports_every_leg() {
    let (findings, _) = run("crates/mpc/src/context.rs", "events_dirty.rs");
    assert_eq!(
        keys(&findings),
        vec![
            (RULE_EVENT, 3),  // Broadcast never recorded
            (RULE_EVENT, 4),  // Orphan never recorded
            (RULE_EVENT, 17), // fn broadcast records nothing
            (RULE_EVENT, 23), // Broadcast has no replay arm
            (RULE_EVENT, 23), // Orphan has no replay arm
            (RULE_EVENT, 23), // wildcard arm
        ],
        "{findings:?}"
    );
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages
        .iter()
        .any(|m| m.contains("`broadcast` records no MpcEvent")));
    assert!(messages
        .iter()
        .any(|m| m.contains("MpcEvent::Orphan is never recorded")));
    assert!(messages
        .iter()
        .any(|m| m.contains("MpcEvent::Broadcast has no match arm") && m.contains("`broadcast`")));
    assert!(messages.iter().any(|m| m.contains("wildcard")));
}

#[test]
fn panics_clean_fixture_passes() {
    let (findings, _) = run("crates/sketch/src/arena.rs", "panics_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panics_dirty_fixture_reports_exact_lines() {
    let (findings, _) = run("crates/sketch/src/arena.rs", "panics_dirty.rs");
    assert_eq!(
        keys(&findings),
        vec![(RULE_NO_PANIC, 2), (RULE_NO_PANIC, 3), (RULE_NO_PANIC, 8)],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.line == 2 && f.message.contains("`.unwrap(..)`")));
    assert!(findings
        .iter()
        .any(|f| f.line == 3 && f.message.contains("`assert!`")));
    assert!(findings
        .iter()
        .any(|f| f.line == 8 && f.message.contains("`.expect(..)`")));
}

#[test]
fn unsafety_clean_fixture_passes_in_the_executor() {
    let (findings, _) = run("crates/mpc/src/executor.rs", "unsafety_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafety_dirty_fixture_fails_both_ways() {
    // Outside the allowlist: banned outright.
    let (findings, _) = run("crates/core/src/session.rs", "unsafety_dirty.rs");
    assert_eq!(keys(&findings), vec![(RULE_UNSAFE, 2)], "{findings:?}");
    assert!(findings[0].message.contains("allowlist"));
    // Inside the allowlist but undocumented: SAFETY comment required.
    let (findings, _) = run("crates/mpc/src/executor.rs", "unsafety_dirty.rs");
    assert_eq!(keys(&findings), vec![(RULE_UNSAFE, 2)], "{findings:?}");
    assert!(findings[0].message.contains("SAFETY"));
}

#[test]
fn kernels_clean_fixture_passes_inside_the_kernels_directory() {
    let (findings, _) = run(
        "crates/sketch/src/kernels/sse2.rs",
        "unsafety_kernels_clean.rs",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn kernels_dirty_fixture_fails_both_ways() {
    // Inside the allowlisted directory but undocumented: both the
    // `unsafe fn` declaration and the dispatch call site need SAFETY.
    let (findings, _) = run(
        "crates/sketch/src/kernels/sse2.rs",
        "unsafety_kernels_dirty.rs",
    );
    assert_eq!(
        keys(&findings),
        vec![(RULE_UNSAFE, 2), (RULE_UNSAFE, 10)],
        "{findings:?}"
    );
    assert!(findings.iter().all(|f| f.message.contains("SAFETY")));
    // The same source one directory up sits outside the allowlist
    // (the directory entry must not leak onto sibling paths).
    let (findings, _) = run("crates/sketch/src/arena.rs", "unsafety_kernels_dirty.rs");
    assert_eq!(
        keys(&findings),
        vec![(RULE_UNSAFE, 2), (RULE_UNSAFE, 10)],
        "{findings:?}"
    );
    assert!(findings.iter().all(|f| f.message.contains("allowlist")));
}

#[test]
fn determinism_clean_fixture_passes() {
    let (findings, _) = run("crates/core/src/cache.rs", "determinism_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn determinism_dirty_fixture_reports_exact_lines() {
    let (findings, _) = run("crates/core/src/cache.rs", "determinism_dirty.rs");
    assert_eq!(
        keys(&findings),
        vec![
            (RULE_DETERMINISM, 1), // use HashMap
            (RULE_DETERMINISM, 2), // use Instant
            (RULE_DETERMINISM, 5), // Instant::now
            (RULE_DETERMINISM, 6), // HashMap (deduped per line)
            (RULE_DETERMINISM, 7), // thread::spawn
            (RULE_DETERMINISM, 8), // println!
        ],
        "{findings:?}"
    );
}

#[test]
fn maintain_clean_fixture_passes() {
    let (findings, _) = run("crates/msf/src/exact.rs", "maintain_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn maintain_dirty_fixture_names_the_type_and_method() {
    let (findings, _) = run("crates/msf/src/exact.rs", "maintain_dirty.rs");
    assert_eq!(keys(&findings), vec![(RULE_MAINTAIN, 1)], "{findings:?}");
    assert!(findings[0].message.contains("HalfWired"));
    assert!(findings[0].message.contains("`answer`"));
}

#[test]
fn io_clean_fixture_passes() {
    let (findings, _) = run("crates/core/src/cache.rs", "io_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn io_dirty_fixture_reports_exact_lines() {
    let (findings, _) = run("crates/core/src/cache.rs", "io_dirty.rs");
    assert_eq!(
        keys(&findings),
        vec![
            (RULE_IO, 1), // use std::fs::File
            (RULE_IO, 2), // use std::io::Write
            (RULE_IO, 5), // std::fs::write
        ],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.message.contains("mpc-snapshot") && f.message.contains("checkpoint")));
}

#[test]
fn io_dirty_fixture_is_sanctioned_inside_the_snapshot_crate() {
    let (findings, _) = run("crates/mpc-snapshot/src/format.rs", "io_dirty.rs");
    assert!(
        findings.iter().all(|f| f.rule != RULE_IO),
        "snapshot crate must keep its fs access: {findings:?}"
    );
}

#[test]
fn allow_clean_fixture_suppresses_and_records_justifications() {
    let (findings, applied) = run("crates/core/src/cache.rs", "allow_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(applied.len(), 2, "{applied:?}");
    assert!(applied.iter().all(|a| a.rule == RULE_DETERMINISM));
    assert!(applied
        .iter()
        .any(|a| a.justification.contains("never iterated")));
    assert!(applied
        .iter()
        .any(|a| a.justification.contains("length query only")));
}

#[test]
fn allow_dirty_fixture_suppresses_nothing_and_reports_the_allows() {
    let (findings, applied) = run("crates/core/src/cache.rs", "allow_dirty.rs");
    assert!(applied.is_empty(), "{applied:?}");
    assert_eq!(
        keys(&findings),
        vec![
            (RULE_ALLOW_HYGIENE, 1), // missing justification
            (RULE_ALLOW_HYGIENE, 3), // unknown rule
            (RULE_DETERMINISM, 2),   // HashMap survives the bad allow
            (RULE_DETERMINISM, 4),   // Instant survives the bad allow
            (RULE_DETERMINISM, 6),
            (RULE_DETERMINISM, 7),
            (RULE_DETERMINISM, 8),
        ],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("mandatory")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("unknown rule `made-up-rule`")));
}

#[test]
fn json_report_carries_rule_ids_lines_and_allows() {
    let (findings, _) = run("crates/mpc/src/context.rs", "events_dirty.rs");
    let (_, allows) = run("crates/core/src/cache.rs", "allow_clean.rs");
    let mut report = Report {
        findings,
        allows,
        files_scanned: 2,
    };
    report.finalize();
    let json = report.to_json();
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains("\"finding_count\": 6"));
    assert!(json.contains("\"rule\":\"event-completeness\""));
    assert!(json.contains("\"file\":\"crates/mpc/src/context.rs\""));
    assert!(json.contains("\"line\":17"));
    assert!(json.contains("\"rule\":\"determinism-hygiene\""));
    assert!(json.contains("\"justification\":\"seeded-hasher build, keys never iterated\""));
}

/// The acceptance-criteria drill: take the **real** accounting context
/// source, delete one `replay_inner` match arm, and the event rule
/// must fail naming the un-replayed primitive.
#[test]
fn deleting_a_real_replay_arm_names_the_primitive() {
    let path = format!("{}/../mpc/src/context.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    // The genuine source must be clean first.
    let (findings, _) = lint_source("crates/mpc/src/context.rs", &source);
    let events_ok: Vec<_> = findings.iter().filter(|f| f.rule == RULE_EVENT).collect();
    assert!(
        events_ok.is_empty(),
        "real context.rs is not clean: {events_ok:?}"
    );

    let arm = "MpcEvent::Broadcast(w) => self.broadcast(*w),";
    assert!(
        source.contains(arm),
        "replay arm shape changed — update this drill"
    );
    let mutated = source.replace(arm, "");
    let (findings, _) = lint_source("crates/mpc/src/context.rs", &mutated);
    let hit = findings
        .iter()
        .find(|f| f.rule == RULE_EVENT)
        .expect("mutated context must fail event-completeness");
    assert!(
        hit.message.contains("MpcEvent::Broadcast"),
        "{}",
        hit.message
    );
    assert!(hit.message.contains("`broadcast`"), "{}", hit.message);
}

/// The whole real workspace must lint clean — the same gate CI runs
/// via `cargo run -p mpc-lint -- --deny`.
#[test]
fn real_workspace_is_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let report = mpc_lint::lint_workspace(std::path::Path::new(&root)).expect("walk workspace");
    assert!(report.findings.is_empty(), "{}", report.to_json());
    assert!(report.files_scanned > 50, "walker missed the tree");
}

// ----- interprocedural families (call-graph rules) ----------------

use mpc_lint::{
    lint_sources, RULE_ALLOC_HOT, RULE_KERNEL_PARITY, RULE_PANIC_REACH, RULE_PERSIST,
    RULE_QUERY_CHARGE,
};

#[test]
fn panic_reach_clean_fixture_passes() {
    let (findings, _) = run("crates/sketch/src/arena.rs", "panic_reach_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_reach_dirty_fixture_prints_the_two_call_deep_chain() {
    let (findings, _) = run("crates/sketch/src/arena.rs", "panic_reach_dirty.rs");
    assert_eq!(keys(&findings), vec![(RULE_PANIC_REACH, 2)], "{findings:?}");
    let msg = &findings[0].message;
    assert!(msg.contains("apply_batch -> stage -> pick"), "{msg}");
    assert!(msg.contains(".unwrap()"), "{msg}");
    assert!(msg.contains("panic site"), "{msg}");
}

#[test]
fn persist_clean_fixture_passes() {
    let (findings, _) = run("crates/mpc/src/stats.rs", "persist_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn persist_dirty_fixture_reports_kind_drift_and_the_dropped_field() {
    let (findings, _) = run("crates/mpc/src/stats.rs", "persist_dirty.rs");
    let persist: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RULE_PERSIST)
        .collect();
    assert_eq!(persist.len(), 3, "{persist:?}");
    // Wire-kind drift: save writes u32 where load reads the u64 word.
    assert!(
        persist
            .iter()
            .any(|f| f.message.contains("Wire")
                && f.message.contains("(u32) at position 1")
                && f.message.contains("round-trip")),
        "{persist:?}"
    );
    // Length drift plus the missing field, each named.
    assert!(
        persist
            .iter()
            .any(|f| f.message.contains("Ledger") && f.message.contains("never reads")),
        "{persist:?}"
    );
    assert!(
        persist
            .iter()
            .any(|f| f.message.contains("`words`") && f.message.contains("never read by load")),
        "{persist:?}"
    );
}

#[test]
fn query_charge_clean_fixture_passes_with_direct_and_helper_charges() {
    let (findings, _) = run("crates/msf/src/exact.rs", "query_charge_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn query_charge_dirty_fixture_flags_only_the_uncharged_arm() {
    let (findings, _) = run("crates/msf/src/exact.rs", "query_charge_dirty.rs");
    assert_eq!(keys(&findings), vec![(RULE_QUERY_CHARGE, 7)], "{findings:?}");
    assert!(findings[0].message.contains("Estimator"));
    assert!(findings[0].message.contains("ledger"));
}

#[test]
fn alloc_hot_clean_fixture_passes() {
    let (findings, _) = run("crates/sketch/src/kernels/portable.rs", "alloc_hot_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn alloc_hot_dirty_fixture_reports_local_and_transitive_allocations() {
    let (findings, _) = run("crates/sketch/src/kernels/portable.rs", "alloc_hot_dirty.rs");
    // Three findings: the root's local alloc, the transitive edge
    // into `scratch`, and `scratch`'s own local alloc (every fn in
    // the kernels directory is a root).
    assert_eq!(
        keys(&findings),
        vec![(RULE_ALLOC_HOT, 2), (RULE_ALLOC_HOT, 3), (RULE_ALLOC_HOT, 6)],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains(".to_vec()")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("fold_cells -> scratch") && f.message.contains("vec!")));
}

/// Runs the three kernel tier fixtures as one workspace.
fn run_tiers(avx2: &str) -> Vec<Finding> {
    let files = vec![
        (
            "crates/sketch/src/kernels/portable.rs".to_string(),
            fixture("kernel_parity_portable.rs"),
        ),
        (
            "crates/sketch/src/kernels/sse2.rs".to_string(),
            fixture("kernel_parity_sse2.rs"),
        ),
        (
            "crates/sketch/src/kernels/avx2.rs".to_string(),
            fixture(avx2),
        ),
    ];
    lint_sources(&files).0
}

#[test]
fn kernel_parity_clean_tier_set_passes() {
    let findings = run_tiers("kernel_parity_avx2_clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn kernel_parity_dirty_tier_reports_drift_missing_op_and_reference() {
    let findings = run_tiers("kernel_parity_avx2_dirty.rs");
    let parity: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RULE_KERNEL_PARITY)
        .collect();
    assert_eq!(parity.len(), 3, "{parity:?}");
    assert!(parity.iter().all(|f| f.file.ends_with("avx2.rs")));
    assert!(
        parity
            .iter()
            .any(|f| f.message.contains("`top_bit`") && f.message.contains("not in this tier")),
        "{parity:?}"
    );
    assert!(
        parity
            .iter()
            .any(|f| f.message.contains("`fold_cells`")
                && f.message.contains("different signature")),
        "{parity:?}"
    );
    assert!(
        parity
            .iter()
            .any(|f| f.message.contains("scalar reference")),
        "{parity:?}"
    );
}

/// Mutation drill on the **real** stats source: delete one load read
/// from `MaintainerStats` and persist-symmetry must name the field.
#[test]
fn deleting_a_real_persist_load_read_names_the_field() {
    let path = format!("{}/../mpc/src/stats.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let clean = lint_source("crates/mpc/src/stats.rs", &source).0;
    let persist: Vec<_> = clean.iter().filter(|f| f.rule == RULE_PERSIST).collect();
    assert!(persist.is_empty(), "real stats.rs is not clean: {persist:?}");

    let read = "            checkpoint_bytes: Persist::load(r)?,\n";
    assert_eq!(
        source.matches(read).count(),
        1,
        "load read shape changed — update this drill"
    );
    let mutated = source.replace(read, "");
    let findings = lint_source("crates/mpc/src/stats.rs", &mutated).0;
    let hit = findings
        .iter()
        .find(|f| f.rule == RULE_PERSIST)
        .expect("mutated stats must fail persist-symmetry");
    assert!(hit.message.contains("`checkpoint_bytes`"), "{}", hit.message);
    assert!(hit.message.contains("MaintainerStats"), "{}", hit.message);
}

/// Mutation drill on the **real** MSF source: turn a helper's typed
/// error into an `.expect()` and panic-reachability must print the
/// hot-path chain into it.
#[test]
fn hiding_a_panic_in_a_real_helper_prints_the_chain() {
    let path = format!("{}/../msf/src/exact.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let clean = lint_source("crates/msf/src/exact.rs", &source).0;
    let reach: Vec<_> = clean
        .iter()
        .filter(|f| f.rule == RULE_PANIC_REACH)
        .collect();
    assert!(reach.is_empty(), "real exact.rs is not clean: {reach:?}");

    let typed = "let heaviest = heaviest.ok_or(MsfError::NoConvergence)?;";
    assert!(
        source.contains(typed),
        "helper error shape changed — update this drill"
    );
    let mutated = source.replace(typed, "let heaviest = heaviest.expect(\"cycle edge\");");
    let findings = lint_source("crates/msf/src/exact.rs", &mutated).0;
    let hit = findings
        .iter()
        .find(|f| f.rule == RULE_PANIC_REACH)
        .expect("mutated exact must fail panic-reachability");
    assert!(
        hit.message
            .contains("ExactMsf::apply_batch -> ExactMsf::one_iteration"),
        "{}",
        hit.message
    );
    assert!(hit.message.contains(".expect()"), "{}", hit.message);
}

/// A site-level allow at a panic site must both suppress the finding
/// (routing chains around the site) and show up in the applied-allow
/// audit trail with its justification — suppressions are never
/// silent.
#[test]
fn site_allows_are_suppressive_and_audited() {
    let src = "\
impl Arena {
    pub fn merge_copy_into(&mut self, other: &Arena) {
        self.step(other);
    }
    fn step(&mut self, other: &Arena) {
        // lint: allow(panic-reachability): documented precondition — arenas share a layout
        let w = other.words.first().expect(\"layout\");
        self.acc += *w;
    }
}
";
    let (findings, applied) = lint_source("crates/sketch/src/arena.rs", src);
    assert!(
        !findings.iter().any(|f| f.rule == RULE_PANIC_REACH),
        "{findings:?}"
    );
    let site = applied
        .iter()
        .find(|a| a.rule == RULE_PANIC_REACH)
        .expect("site allow must be recorded as applied");
    assert_eq!(site.file, "crates/sketch/src/arena.rs");
    assert_eq!(site.line, 6);
    assert!(
        site.justification.contains("documented precondition"),
        "{site:?}"
    );
}
