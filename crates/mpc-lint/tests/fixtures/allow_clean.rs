// lint: allow(determinism-hygiene): seeded-hasher build, keys never iterated
use std::collections::HashMap;

pub fn lookup_only() -> usize {
    HashMap::<u32, u32>::new().len() // lint: allow(determinism-hygiene): length query only, no iteration order observed
}
