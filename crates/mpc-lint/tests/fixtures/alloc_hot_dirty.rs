pub(crate) fn fold_cells(dst: &mut [u64]) -> u64 {
    let tmp = dst.to_vec();
    tmp.len() as u64 + scratch(dst.len())
}
fn scratch(n: usize) -> u64 {
    let buf = vec![0u64; n];
    buf.len() as u64
}
