pub(crate) fn fold_cells(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}
