impl Persist for Wire {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.epoch);
        w.put_u64(self.total);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Wire {
            epoch: r.take_u64()?,
            total: r.take_u64()?,
        })
    }
}

impl Persist for Ledger {
    fn save(&self, w: &mut SnapshotWriter) {
        self.rounds.save(w);
        self.words.save(w);
        self.queries.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Ledger {
            rounds: Persist::load(r)?,
            queries: Persist::load(r)?,
        })
    }
}
