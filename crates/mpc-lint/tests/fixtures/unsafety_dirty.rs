pub fn sneak(p: *mut u64) -> u64 {
    unsafe { *p }
}
