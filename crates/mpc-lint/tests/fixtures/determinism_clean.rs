use std::collections::BTreeMap;

pub fn stable() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn harness_may_hash_and_print() {
        let m = HashMap::<u32, u32>::new();
        println!("{}", m.len());
    }
}
