impl Maintain for HalfWired {
    fn supports(&self, _q: &QueryRequest) -> bool {
        true
    }
}
