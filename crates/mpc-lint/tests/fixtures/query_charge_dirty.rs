impl Maintain for Estimator {
    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Count | Query::Sum)
    }
    fn answer(&mut self, q: &Query, ctx: &mut MpcContext) -> Result<QueryResponse, MpcError> {
        match q {
            Query::Count => Ok(QueryResponse::Count(self.count)),
            Query::Sum => {
                ctx.broadcast(1);
                Ok(QueryResponse::Sum(self.sum))
            }
            _ => Err(MpcError::Unsupported),
        }
    }
}
