/// Lane-wise fold, shaped like the real SIMD tier entry points.
///
/// # Safety
/// SAFETY: requires SSE2 (callers dispatch only after feature
/// detection); slice lengths must be equal.
#[target_feature(enable = "sse2")]
pub unsafe fn fold(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.wrapping_add(*s);
    }
}

pub fn dispatch(dst: &mut [u64], src: &[u64]) {
    // SAFETY: guarded by the feature check on the line above the call.
    if is_x86_feature_detected!("sse2") {
        unsafe { fold(dst, src) }
    }
}
