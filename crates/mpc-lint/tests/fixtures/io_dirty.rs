use std::fs::File;
use std::io::Write;

pub fn side_channel(path: &str, state: &[u8]) -> bool {
    let ok = std::fs::write(path, state).is_ok();
    drop(File::open(path));
    ok
}
