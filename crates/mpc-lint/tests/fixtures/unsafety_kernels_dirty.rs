#[target_feature(enable = "sse2")]
pub unsafe fn fold(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.wrapping_add(*s);
    }
}

pub fn dispatch(dst: &mut [u64], src: &[u64]) {
    if is_x86_feature_detected!("sse2") {
        unsafe { fold(dst, src) }
    }
}
