/// AVX2 fold with a drifted signature and a missing reference link.
///
/// # Safety
/// SAFETY: requires AVX2 (callers dispatch after feature detection).
pub(crate) unsafe fn fold_cells(dst: &mut [u64], src: &[u64], stride: usize) {
    let _ = stride;
    let _ = (dst, src);
}
