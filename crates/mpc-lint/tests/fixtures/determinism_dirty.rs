use std::collections::HashMap;
use std::time::Instant;

pub fn racy() -> u64 {
    let t = Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    std::thread::spawn(|| {});
    println!("done");
    m.len() as u64 + t.elapsed().as_nanos() as u64
}
