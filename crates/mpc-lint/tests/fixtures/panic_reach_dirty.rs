pub fn apply_batch(xs: &[u32]) -> u32 {
    stage(xs)
}
fn stage(xs: &[u32]) -> u32 {
    pick(xs)
}
fn pick(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
