/// SSE2 fold; reference: `portable::fold_cells`.
///
/// # Safety
/// SAFETY: requires SSE2 (callers dispatch after feature detection).
pub(crate) unsafe fn fold_cells(dst: &mut [u64], src: &[u64]) {
    portable::fold_cells(dst, src);
}

/// SSE2 select; reference: `portable::top_bit`.
///
/// # Safety
/// SAFETY: requires SSE2 (callers dispatch after feature detection).
pub(crate) unsafe fn top_bit(words: &[u64]) -> u64 {
    portable::top_bit(words)
}
