impl Maintain for ExactMsf {
    fn supports(&self, _q: &QueryRequest) -> bool {
        true
    }

    fn answer(&mut self, _q: &QueryRequest) -> QueryResponse {
        QueryResponse::None
    }
}
