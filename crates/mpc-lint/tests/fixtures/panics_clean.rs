pub fn apply_batch(x: Option<u64>) -> Result<u64, ()> {
    let v = x.unwrap_or(0);
    debug_assert!(v < 100, "bounded by the caller");
    Ok(v)
}

pub fn answer(y: Result<u64, ()>) -> Result<u64, ()> {
    let v = y?;
    debug_assert_eq!(v % 2, 0);
    Ok(v)
}

pub fn setup(x: Option<u64>) -> u64 {
    x.unwrap()
}
