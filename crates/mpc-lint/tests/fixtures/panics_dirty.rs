pub fn apply_batch(x: Option<u64>) -> Result<u64, ()> {
    let v = x.unwrap();
    assert!(v < 100);
    Ok(v)
}

pub fn answer(y: Option<u64>) -> u64 {
    y.expect("always present")
}
