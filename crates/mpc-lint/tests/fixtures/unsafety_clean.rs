pub fn claim(slice: &mut [u64], i: usize) -> &mut u64 {
    let base = slice.as_mut_ptr();
    // SAFETY: `i` is claimed by exactly one lane, so no aliasing.
    unsafe { &mut *base.add(i) }
}
