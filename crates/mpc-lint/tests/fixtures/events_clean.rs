pub enum MpcEvent {
    Exchange(u64),
    Broadcast(u64),
}

pub struct MpcContext {
    rounds: u64,
}

impl MpcContext {
    pub fn exchange(&mut self, words: u64) {
        self.record(MpcEvent::Exchange(words));
        self.rounds += 1;
    }

    pub fn broadcast(&mut self, words: u64) {
        self.record(MpcEvent::Broadcast(words));
        self.rounds += 1;
    }

    pub fn broadcast_twice(&mut self, words: u64) {
        self.broadcast(words);
        self.broadcast(words);
    }

    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn record(&mut self, _event: MpcEvent) {}

    fn replay_inner(&mut self, events: &[MpcEvent]) {
        for e in events {
            match e {
                MpcEvent::Exchange(w) => self.exchange(*w),
                MpcEvent::Broadcast(w) => self.broadcast(*w),
            }
        }
    }
}
