// lint: allow(determinism-hygiene)
use std::collections::HashMap;
// lint: allow(made-up-rule): a justification that is long enough
use std::time::Instant;

pub fn f() -> HashMap<u32, u32> {
    let _ = Instant::now();
    HashMap::new()
}
