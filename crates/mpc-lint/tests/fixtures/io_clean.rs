use std::path::Path;

/// Persistence goes through the snapshot plane; a library crate may
/// hold and pass paths, it just may not open them.
pub fn checkpoint_label(path: &Path) -> usize {
    path.as_os_str().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_io_is_test_scoped() {
        // Test code may touch the filesystem freely.
        let meta = std::fs::metadata("Cargo.toml");
        assert!(checkpoint_label(Path::new("x")) == 1 || meta.is_ok());
    }
}
