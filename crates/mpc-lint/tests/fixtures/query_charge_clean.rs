impl Maintain for Estimator {
    fn supports(&self, q: &Query) -> bool {
        matches!(q, Query::Count | Query::Sum)
    }
    fn answer(&mut self, q: &Query, ctx: &mut MpcContext) -> Result<QueryResponse, MpcError> {
        match q {
            Query::Count => {
                ctx.broadcast(1);
                Ok(QueryResponse::Count(self.count))
            }
            Query::Sum => Ok(QueryResponse::Sum(self.charged_sum(ctx))),
            _ => Err(MpcError::Unsupported),
        }
    }
}

impl Estimator {
    fn charged_sum(&self, ctx: &mut MpcContext) -> u64 {
        ctx.gather(1);
        self.sum
    }
}
