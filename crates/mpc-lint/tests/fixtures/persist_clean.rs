impl Persist for Telemetry {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.epoch);
        self.rounds.save(w);
        self.words.save(w);
        w.put_usize(self.log.len());
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let epoch = r.take_u32()?;
        let rounds = Persist::load(r)?;
        let words = Persist::load(r)?;
        let log_len = r.take_usize()?;
        Ok(Telemetry {
            epoch,
            rounds,
            words,
            log: Vec::with_capacity(log_len),
        })
    }
}
