/// Scalar reference fold: XOR-accumulates `src` into `dst`.
pub(crate) fn fold_cells(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// Scalar reference select: first set bit per word.
pub(crate) fn top_bit(words: &[u64]) -> u64 {
    words.iter().map(|w| w.leading_zeros() as u64).sum()
}

fn tier_local_helper(x: u64) -> u64 {
    x
}
