//! Per-function effect summaries over the call graph.
//!
//! Each function gets a *local* fact set — panicking constructs,
//! heap-allocating constructs, accounting-context charge calls, found
//! by the same token patterns the body-local rules use — and a
//! *transitive* effect vector computed to fixpoint over
//! [`Workspace::calls`]: a function panics if its body panics or any
//! callee panics, and likewise for allocation and charging. Rules
//! then ask reachability questions (`does this hot path reach a
//! panic?`) and print the witness chain.
//!
//! A site carrying a justified site-level allow
//! (`// lint: allow(panic-reachability): …` /
//! `// lint: allow(alloc-hot-path): …`) is dropped from the facts
//! *here*, before the fixpoint — the documented precondition assert
//! stops poisoning every transitive caller, while any *other*,
//! unallowed site in the same function still propagates and gets its
//! own witness chain. The body-local rules are unaffected.

use crate::graph::Workspace;
use crate::rules::find_seq;

/// Macros that abort (mirrors `no-panic-hot-path`; `debug_assert!*`
/// are distinct identifiers and stay legal).
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods that abort on the error/none side.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Heap-allocating constructs flagged on kernel-adjacent paths. Each
/// entry is a token pattern for [`find_seq`].
const ALLOC_PATTERNS: &[(&[&str], &str)] = &[
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["Vec", ":", ":", "with_capacity"], "Vec::with_capacity"),
    (&["vec", "!"], "vec!"),
    (&["Box", ":", ":", "new"], "Box::new"),
    (&["String", ":", ":", "new"], "String::new"),
    (&["String", ":", ":", "from"], "String::from"),
    (&["format", "!"], "format!"),
    (&["BTreeMap", ":", ":", "new"], "BTreeMap::new"),
    (&["BTreeSet", ":", ":", "new"], "BTreeSet::new"),
    (&[".", "to_vec", "("], ".to_vec()"),
    (&[".", "to_string", "("], ".to_string()"),
    (&[".", "to_owned", "("], ".to_owned()"),
    (&[".", "collect", "("], ".collect()"),
];

/// `MpcContext` methods that charge rounds/words. Calling any of
/// these (directly or transitively) satisfies `query-charging`.
pub const CHARGE_METHODS: &[&str] = &["exchange", "broadcast", "converge_cast", "sort", "gather"];

/// One construct occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Token index in the defining file.
    pub token: usize,
    /// 1-based line.
    pub line: u32,
    /// Human-readable construct name (`unwrap`, `vec!`, …).
    pub what: String,
}

/// Local facts for one function body.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Panicking constructs in the body.
    pub panic_sites: Vec<Site>,
    /// Heap-allocating constructs in the body.
    pub alloc_sites: Vec<Site>,
    /// Charging-method call tokens in the body.
    pub charge_sites: Vec<usize>,
}

/// Transitive effects of one function.
#[derive(Debug, Default, Clone, Copy)]
pub struct Effects {
    /// Body or any transitive callee can panic.
    pub panics: bool,
    /// Body or any transitive callee heap-allocates.
    pub allocates: bool,
    /// Body or any transitive callee charges the context.
    pub charges: bool,
}

/// Local facts plus fixpoint effects for every workspace function.
pub struct Summaries {
    /// Parallel to [`Workspace::fns`].
    pub facts: Vec<FnFacts>,
    /// Parallel to [`Workspace::fns`].
    pub effects: Vec<Effects>,
    /// Site-level allows that actually gated a panic/alloc site, for
    /// the report's audit trail (deduplicated by file, line, rule).
    pub applied: Vec<crate::report::AppliedAllow>,
}

/// Computes local facts and runs the effect fixpoint.
pub fn compute(ws: &Workspace) -> Summaries {
    let mut facts = Vec::with_capacity(ws.fns.len());
    let mut applied: Vec<crate::report::AppliedAllow> = Vec::new();
    let mut record = |file: &crate::graph::FileIndex, comment_line: u32, rule: &str, just: String| {
        let dup = applied
            .iter()
            .any(|a| a.file == file.rel_path && a.line == comment_line && a.rule == rule);
        if !dup {
            applied.push(crate::report::AppliedAllow {
                rule: rule.to_string(),
                file: file.rel_path.clone(),
                line: comment_line,
                justification: just,
            });
        }
    };
    for f in &ws.fns {
        if f.in_test {
            // Test bodies panic and allocate on purpose and are never
            // call targets of production code.
            facts.push(FnFacts::default());
            continue;
        }
        let file = &ws.files[f.file];
        let tokens = &file.lexed.tokens;
        let mut ff = FnFacts::default();
        for m in PANIC_METHODS {
            for hit in find_seq(tokens, f.body, &[".", m, "("]) {
                if let Some((l, just)) =
                    crate::rules::site_allow(file, tokens[hit].line, crate::RULE_PANIC_REACH)
                {
                    record(file, l, crate::RULE_PANIC_REACH, just);
                    continue;
                }
                ff.panic_sites.push(Site {
                    token: hit,
                    line: tokens[hit].line,
                    what: format!(".{m}()"),
                });
            }
        }
        for m in PANIC_MACROS {
            for hit in find_seq(tokens, f.body, &[m, "!"]) {
                if let Some((l, just)) =
                    crate::rules::site_allow(file, tokens[hit].line, crate::RULE_PANIC_REACH)
                {
                    record(file, l, crate::RULE_PANIC_REACH, just);
                    continue;
                }
                ff.panic_sites.push(Site {
                    token: hit,
                    line: tokens[hit].line,
                    what: format!("{m}!"),
                });
            }
        }
        for (pat, what) in ALLOC_PATTERNS {
            for hit in find_seq(tokens, f.body, pat) {
                if let Some((l, just)) =
                    crate::rules::site_allow(file, tokens[hit].line, crate::RULE_ALLOC_HOT)
                {
                    record(file, l, crate::RULE_ALLOC_HOT, just);
                    continue;
                }
                ff.alloc_sites.push(Site {
                    token: hit,
                    line: tokens[hit].line,
                    what: (*what).to_string(),
                });
            }
        }
        for m in CHARGE_METHODS {
            for hit in find_seq(tokens, f.body, &[".", m, "("]) {
                ff.charge_sites.push(hit);
            }
        }
        ff.panic_sites.sort_by_key(|s| s.token);
        ff.alloc_sites.sort_by_key(|s| s.token);
        facts.push(ff);
    }

    let mut effects: Vec<Effects> = facts
        .iter()
        .map(|f| Effects {
            panics: !f.panic_sites.is_empty(),
            allocates: !f.alloc_sites.is_empty(),
            charges: !f.charge_sites.is_empty(),
        })
        .collect();
    // Fixpoint: propagate callee effects up. Terminates because each
    // pass can only flip flags from false to true.
    loop {
        let mut changed = false;
        for (i, calls) in ws.calls.iter().enumerate() {
            for c in calls {
                let e = effects[c.callee];
                let mine = &mut effects[i];
                if (e.panics && !mine.panics)
                    || (e.allocates && !mine.allocates)
                    || (e.charges && !mine.charges)
                {
                    mine.panics |= e.panics;
                    mine.allocates |= e.allocates;
                    mine.charges |= e.charges;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    drop(record);
    applied.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Summaries { facts, effects, applied }
}

/// Which effect a chain query is about.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Panicking constructs.
    Panic,
    /// Heap-allocating constructs.
    Alloc,
}

impl Summaries {
    /// Shortest call chain from `start` to a function with a local
    /// site of `effect`, as (`fn chain including start`, `site`). The
    /// chain is found by breadth-first search, so the printed witness
    /// is minimal.
    pub fn chain(&self, ws: &Workspace, start: usize, effect: Effect) -> Option<(Vec<usize>, Site)> {
        let local = |f: usize| -> Option<&Site> {
            let ff = &self.facts[f];
            match effect {
                Effect::Panic => ff.panic_sites.first(),
                Effect::Alloc => ff.alloc_sites.first(),
            }
        };
        let mut parent: Vec<Option<usize>> = vec![None; ws.fns.len()];
        let mut seen = vec![false; ws.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(f) = queue.pop_front() {
            if let Some(site) = local(f) {
                let mut path = vec![f];
                let mut cur = f;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some((path, site.clone()));
            }
            for c in &ws.calls[f] {
                if !seen[c.callee] {
                    seen[c.callee] = true;
                    parent[c.callee] = Some(f);
                    queue.push_back(c.callee);
                }
            }
        }
        None
    }

    /// Renders a call chain as `a → b → c` using fn names.
    pub fn render_chain(&self, ws: &Workspace, chain: &[usize]) -> String {
        chain
            .iter()
            .map(|&f| {
                let node = &ws.fns[f];
                match &node.owner {
                    Some(o) => format!("{o}::{}", node.name),
                    None => node.name.clone(),
                }
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![FileIndex::new("crates/a/src/lib.rs", src)])
    }

    fn idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn effects_propagate_through_two_levels() {
        let w = ws("pub fn top() { mid(); }\n\
                    fn mid() { deep(); }\n\
                    fn deep() { x.unwrap(); let v = Vec::new(); }");
        let s = compute(&w);
        let top = idx(&w, "top");
        assert!(s.effects[top].panics && s.effects[top].allocates);
        assert!(!s.effects[top].charges);
        assert!(s.facts[top].panic_sites.is_empty(), "top is clean locally");
        let (chain, site) = s.chain(&w, top, Effect::Panic).unwrap();
        assert_eq!(s.render_chain(&w, &chain), "top -> mid -> deep");
        assert_eq!(site.what, ".unwrap()");
        let (chain, site) = s.chain(&w, top, Effect::Alloc).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(site.what, "Vec::new");
    }

    #[test]
    fn recursion_terminates_and_charges_propagate() {
        let w = ws("pub fn a(ctx: &mut C) { b(ctx); }\n\
                    fn b(ctx: &mut C) { a(ctx); ctx.exchange(1); }");
        let s = compute(&w);
        assert!(s.effects[idx(&w, "a")].charges);
        assert!(s.effects[idx(&w, "b")].charges);
        assert!(!s.effects[idx(&w, "a")].panics);
    }

    #[test]
    fn debug_assert_and_test_bodies_are_not_panics() {
        let w = ws("pub fn a() { debug_assert!(ok()); }\n\
                    #[cfg(test)] mod t { fn boom() { panic!(\"x\"); } }");
        let s = compute(&w);
        assert!(!s.effects[idx(&w, "a")].panics);
        assert!(!s.effects[idx(&w, "boom")].panics, "test fns excluded");
    }
}
