//! `mpc-lint` — an offline workspace invariant linter for accounting
//! completeness, determinism, and unsafe hygiene.
//!
//! The compiler cannot see the invariants this workspace actually
//! rests on: that every mutating [`MpcContext`] primitive is mirrored
//! in the `MpcEvent` record/replay log (or the parallel executor
//! silently drifts from serial accounting), that hot paths stay
//! panic-free, that same-seed runs stay bit-identical across worker
//! counts. `mpc-lint` turns those conventions into machine-enforced
//! rules, the same way the deterministic-MPC line of work (Nowicki,
//! arXiv:1912.04239; Pai–Pemmaraju, arXiv:2205.12686) turns
//! randomized guarantees into failure-free ones. It is clean-room and
//! dependency-free — its own lightweight lexer, no `syn`, no registry
//! access — and runs over the whole workspace in well under a second.
//!
//! [`MpcContext`]: https://docs.rs/mpc-sim (crates/mpc/src/context.rs)
//!
//! # The invariant catalog
//!
//! | rule id | invariant |
//! |---|---|
//! | `event-completeness` | Every mutating `MpcContext` primitive records an `MpcEvent`, every variant is recorded by some primitive, and every variant has an explicit `replay_inner` arm (no wildcard). A gap here is exactly the PR-6-style drift the serial-equivalence suite would only catch dynamically — and only if a test happens to exercise the missing primitive. |
//! | `no-panic-hot-path` | `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`assert!`/`assert_eq!`/`assert_ne!` (but **not** `debug_assert!`) are banned inside `apply_batch`, `answer`, and the arena merge / converge-cast kernels — the PR-3 de-panicking contract. |
//! | `unsafe-hygiene` | `unsafe` is confined to an explicit allowlist — `crates/mpc/src/executor.rs` and the SIMD kernel directory `crates/sketch/src/kernels/`; every `unsafe` there carries a `// SAFETY:` argument within the preceding 8 lines; every other crate root carries `#![forbid(unsafe_code)]` (the sketch root, whose kernels hold module-level allows `forbid` would reject, carries `#![deny(unsafe_code)]` instead). |
//! | `determinism-hygiene` | No `Instant`/`SystemTime`, no default-hasher `HashMap`/`HashSet`, no raw `Mutex`/`RwLock`/`Condvar`/`std::thread::spawn` outside the executor, no `dbg!`/`println!` in library crates. Tool crates (`mpc-bench`, `mpc-lint`) and `#[cfg(test)]` code are out of scope. |
//! | `maintain-completeness` | Every production `impl Maintain` defines both `supports` and `answer` (the pair PR 6 had to retrofit). |
//! | `io-hygiene` | `std::fs`/`std::io` are confined to `crates/mpc-snapshot` (the one sanctioned persistence path — the checksummed snapshot container behind `Session::checkpoint`/`restore`) and the tool crates. |
//! | `allow-hygiene` | Meta rule: every inline allow must name a known rule and carry justification text. |
//! | `panic-reachability` | Interprocedural closure of the PR-3 contract: a hot entry point (`apply_batch`, `answer`, the merge/sample/converge-cast kernels) must not *reach* a panicking construct through any chain of workspace calls, not merely avoid panicking directly. Findings print the shortest witness chain (`ExactMsf::apply_batch -> ExactMsf::one_iteration -> ...`). Site-level allows at the panic site are honored and routed around. |
//! | `persist-symmetry` | Every `impl Persist` pair must round-trip: `save` and `load` agree on the word-kind sequence (`u32` vs 64-bit words), every field `save` writes is read back by `load`, and shared fields appear in the same order — the static mirror of the snapshot suite's byte-stability tests. |
//! | `kernel-parity` | The three SIMD tiers (`portable.rs`, `sse2.rs`, `avx2.rs`) expose the same op surface with token-identical signatures, and every SIMD op names its scalar reference (`portable::<op>` in the body or the doc comment) — the static mirror of the tier bit-identity suite. |
//! | `query-charging` | Every `Ok`-returning arm of `Maintain::answer` charges the accounting context (`exchange`/`broadcast`/`converge_cast`/`sort`/`gather`), directly or through a helper on the call graph — answering free of charge is an accounting leak. |
//! | `alloc-hot-path` | The zero-alloc merge path (`merge_copy_into` and the SIMD kernels) must not allocate (`Vec::new`/`with_capacity`/`vec!`/`to_vec`/`collect`/`Box::new`), directly or transitively; the stealing variant is exempt (it owns its scratch). |
//!
//! # The interprocedural phase
//!
//! The first seven rules are per-file. The last five run over a
//! workspace-wide symbol table and call graph ([`graph::Workspace`]):
//! every function is indexed with its owner `impl`, receiver, and
//! arity; call sites resolve by name with receiver/arity ranking
//! (dot-calls never resolve to associated functions), and unresolvable
//! names over-approximate to every candidate. On top of the graph,
//! [`summary`] computes per-function effect summaries — panics,
//! allocates, charges — to a fixpoint, so a panic hidden two helpers
//! deep is reported at the hot entry point with the shortest witness
//! chain.
//!
//! # The allowlist syntax
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // lint: allow(determinism-hygiene): lookup-only map keyed by edge,
//! let cache: HashMap<Edge, u64> = HashMap::new();
//! ```
//!
//! The justification after the closing parenthesis is **mandatory**
//! (≥ 10 characters); an allow without one, or naming an unknown
//! rule, suppresses nothing and is itself reported under
//! `allow-hygiene`. Every allow that fires is listed with its
//! justification in the JSON report, so suppressions stay auditable.
//!
//! # Scope
//!
//! The linter walks every `.rs` file under the workspace root except
//! `target/`, `vendor/` (clean-room stand-ins for external crates),
//! and `fixtures/` (the linter's own seeded-violation test inputs).
//! Rules then scope themselves by path: `event-completeness` reads
//! `crates/mpc/src/context.rs`; `no-panic-hot-path` and
//! `maintain-completeness` cover library sources; `determinism-
//! hygiene` covers library sources minus the tool crates;
//! `io-hygiene` covers library sources minus the tool crates and the
//! snapshot crate; `unsafe-hygiene` covers everything walked.
//!
//! # Runtime counterparts
//!
//! Two invariants are beyond source analysis and are instead audited
//! at runtime in debug builds: `WorkerPool::steal_each` asserts each
//! element is claimed by exactly one lane, and both parallel `Session`
//! fan-outs assert that a replayed branch charges exactly the rounds
//! and words its fork recorded (the differential fork/replay audit).
//! Conversely, two of the interprocedural rules are static mirrors of
//! existing runtime suites: `persist-symmetry` mirrors the snapshot
//! byte-stability tests (a drifted `save`/`load` pair fails both, but
//! the lint names the field without running anything), and
//! `kernel-parity` mirrors the SIMD tier bit-identity suite the same
//! way.
//!
//! # CLI
//!
//! ```text
//! cargo run -p mpc-lint --              # warn mode: report, exit 0
//! cargo run -p mpc-lint -- --deny       # CI mode: exit 2 on findings
//! cargo run -p mpc-lint -- --json       # machine-readable report
//! cargo run -p mpc-lint -- --explain event-completeness
//! ```

#![forbid(unsafe_code)]

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod summary;

use graph::{FileIndex, Workspace};
use report::{AppliedAllow, Finding, Report};
use rules::FileCtx;
use std::path::{Path, PathBuf};

/// Rule id: `MpcContext` ↔ `MpcEvent` ↔ `replay_inner` completeness.
pub const RULE_EVENT: &str = "event-completeness";
/// Rule id: panic-free ingest/query/merge hot paths.
pub const RULE_NO_PANIC: &str = "no-panic-hot-path";
/// Rule id: `unsafe` confinement + `// SAFETY:` + `forbid(unsafe_code)`.
pub const RULE_UNSAFE: &str = "unsafe-hygiene";
/// Rule id: no wall-clock / default hashers / raw threads / prints.
pub const RULE_DETERMINISM: &str = "determinism-hygiene";
/// Rule id: `supports`/`answer` implemented together.
pub const RULE_MAINTAIN: &str = "maintain-completeness";
/// Rule id: `std::fs`/`std::io` confined to the snapshot crate.
pub const RULE_IO: &str = "io-hygiene";
/// Meta rule id: well-formed, justified allow comments.
pub const RULE_ALLOW_HYGIENE: &str = "allow-hygiene";
/// Rule id: hot paths cannot reach a panic through helpers.
pub const RULE_PANIC_REACH: &str = "panic-reachability";
/// Rule id: `Persist::save`/`load` mirror each other field-for-field.
pub const RULE_PERSIST: &str = "persist-symmetry";
/// Rule id: kernel ops exist at all tiers with matching signatures.
pub const RULE_KERNEL_PARITY: &str = "kernel-parity";
/// Rule id: `Maintain::answer` charges the context before `Ok`.
pub const RULE_QUERY_CHARGE: &str = "query-charging";
/// Rule id: no heap allocation reachable from kernel folds.
pub const RULE_ALLOC_HOT: &str = "alloc-hot-path";

/// Every rule id with a one-paragraph explanation (`--explain`).
pub const RULES: &[(&str, &str)] = &[
    (
        RULE_EVENT,
        "Cross-references the mutating methods of MpcContext against the MpcEvent enum \
         variants, the self.record(..) call sites, and the replay_inner match arms. The \
         parallel executor reproduces branch accounting by replaying event logs; a primitive \
         missing any leg of that triangle (no record call, orphaned variant, missing replay \
         arm, or a wildcard arm) makes parallel accounting drift from serial without a \
         compile error. This is the rule that would have caught a PR-6-style drift before \
         the equivalence suite did.",
    ),
    (
        RULE_NO_PANIC,
        "Bans unwrap/expect/panic!/todo!/unimplemented!/assert!/assert_eq!/assert_ne! (but \
         not debug_assert!*) inside the hot-path bodies: apply_batch, answer, and the \
         sketch-arena merge / converge-cast kernels. These paths return Result by the PR-3 \
         contract and run inside worker lanes where a panic becomes a lost branch instead \
         of a typed error.",
    ),
    (
        RULE_UNSAFE,
        "Confines `unsafe` to the reviewed allowlist — crates/mpc/src/executor.rs (the \
         work-stealing executor) and crates/sketch/src/kernels/ (the #[target_feature] \
         SIMD tiers, allowlisted as a directory) — requires a `// SAFETY:` comment within \
         8 lines above every unsafe use there, and requires `#![forbid(unsafe_code)]` on \
         every other crate root so the confinement is also compiler-enforced. The sketch \
         crate root is the one exception to `forbid`: its kernels carry module-level \
         allows that `forbid` cannot be overridden by, so that root must carry \
         `#![deny(unsafe_code)]` instead, which the rule verifies explicitly.",
    ),
    (
        RULE_DETERMINISM,
        "Bans nondeterminism sources from maintainer/accounting crates: Instant/SystemTime \
         (host time), default-hasher HashMap/HashSet (RandomState randomizes iteration \
         order per process), raw Mutex/RwLock/Condvar/std::thread::spawn outside the \
         executor (unordered host concurrency), and dbg!/println!-family macros in library \
         crates. Tool crates (mpc-bench, mpc-lint) and #[cfg(test)] code are exempt.",
    ),
    (
        RULE_MAINTAIN,
        "Every production `impl Maintain` must define both `supports` and `answer`. The \
         trait defaults exist so new maintainers compile early, but a shipped maintainer \
         with only one of the pair breaks the query plane's charge-free probe contract \
         (supports decides before charging; answer does the charged work).",
    ),
    (
        RULE_IO,
        "Confines `std::fs`/`std::io` to crates/mpc-snapshot (the one sanctioned \
         persistence path: the checksummed, versioned snapshot container behind \
         Session::checkpoint / Session::restore) and the tool crates (mpc-bench, \
         mpc-lint). File I/O anywhere else is either a second, unversioned persistence \
         path that restore would silently drop, or a hidden host dependency in code \
         that must stay a pure function of its seeds. Test code is exempt.",
    ),
    (
        RULE_ALLOW_HYGIENE,
        "Meta rule for the allowlist mechanism itself: `// lint: allow(<rule>)` must name a \
         known rule and carry mandatory justification text (>= 10 chars). Malformed allows \
         suppress nothing and are reported.",
    ),
    (
        RULE_PANIC_REACH,
        "The transitive closure of no-panic-hot-path: walks the workspace call graph from \
         every hot root (apply_batch, answer, the arena merge/sample kernels, everything in \
         crates/sketch/src/kernels/) and reports any call edge into a function whose effect \
         summary says it can reach unwrap/expect/panic!/assert! (debug_assert!* stays \
         legal), printing the shortest witness chain. The body rule sees a panic *in* the \
         hot function; this rule sees the one hidden two helpers deep, which loses a worker \
         branch at runtime exactly the same way.",
    ),
    (
        RULE_PERSIST,
        "The static twin of the snapshot byte-stability property suite: inside each \
         `impl Persist`, save's ordered write stream (w.put_*/field.save) and load's \
         ordered read stream (r.take_*/T::load with recovered binding names) must mirror \
         each other — same primitive wire kinds in the same sequence (u64 and usize share \
         a wire word; skipped for enum impls that branch via match), every named field \
         written by save read back by load, and shared field names in the same order. \
         Derived writes (self.pow.len()) and reconstructed load-side fields \
         (KernelKind::selected()) are exempt by construction.",
    ),
    (
        RULE_KERNEL_PARITY,
        "The static twin of the kernel tier bit-identity tests: every op visible in at \
         least two of crates/sketch/src/kernels/{portable,sse2,avx2}.rs must exist in all \
         three tiers with token-identical signatures (tier-local private helpers are \
         exempt), and every SSE2/AVX2 op must name its scalar reference — portable::<op> \
         in the body or portable::<op>/KernelKind::<op> in its docs — so the behavioral \
         contract stays navigable from the intrinsics.",
    ),
    (
        RULE_QUERY_CHARGE,
        "Maintained answers are 'O(1) rounds' only because every Maintain::answer charges \
         the accounting context; an arm returning Ok without a charge is not faster, it is \
         unaccounted, and the rounds/words ledger silently undercounts. The rule splits \
         each production answer body into match arms and requires a charge point — \
         exchange/broadcast/converge_cast/sort/gather directly, or a call into a helper \
         whose transitive summary charges — before every Ok return (a charge before the \
         match covers all arms; Err arms are exempt).",
    ),
    (
        RULE_ALLOC_HOT,
        "Kernel tier bodies and merge_copy_into run inside the converge-cast inner loop \
         with preallocated scratch; any Vec::new/vec!/collect()/to_vec()/format!-style \
         heap allocation there — or reachable from there through workspace helpers — is a \
         latency regression the E20 soak would surface later. Flagged unless justified \
         with `// lint: allow(alloc-hot-path): …` at the reported line. The stealing merge \
         allocates span partials by design and is not a root.",
    ),
];

/// The explanation paragraph for `rule`, if the id is known.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULES.iter().find(|(id, _)| *id == rule).map(|(_, e)| *e)
}

/// Which rule families apply to a workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileRoles {
    /// `event-completeness` (the accounting context source only).
    pub events: bool,
    /// `no-panic-hot-path`.
    pub panics: bool,
    /// `determinism-hygiene`.
    pub determinism: bool,
    /// `maintain-completeness`.
    pub maintain: bool,
    /// `io-hygiene`.
    pub io: bool,
    /// This file is the sanctioned executor (lock/spawn exemption and
    /// the `// SAFETY:` regime instead of an outright unsafe ban).
    pub is_executor: bool,
}

/// Resolves rule scoping for one workspace-relative path
/// (`/`-separated).
pub fn roles_for(rel_path: &str) -> FileRoles {
    let in_crate_src = (rel_path.starts_with("crates/") && rel_path.contains("/src/"))
        || rel_path.starts_with("src/");
    let tool_crate =
        rel_path.starts_with("crates/bench/") || rel_path.starts_with("crates/mpc-lint/");
    FileRoles {
        events: rel_path == "crates/mpc/src/context.rs",
        panics: in_crate_src && !tool_crate,
        determinism: in_crate_src && !tool_crate,
        maintain: in_crate_src && !tool_crate,
        io: in_crate_src && !tool_crate && !rel_path.starts_with("crates/mpc-snapshot/"),
        is_executor: rel_path == "crates/mpc/src/executor.rs",
    }
}

/// Lints one source text as if it lived at `rel_path`, applying the
/// allowlist mechanism. Returns surviving findings and applied
/// allows. Interprocedural rules run over the one-file workspace;
/// this is the entry point most fixture self-tests drive.
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Finding>, Vec<AppliedAllow>) {
    lint_sources(&[(rel_path.to_string(), source.to_string())])
}

/// Lints a set of `(rel_path, source)` files as one workspace: the
/// per-file rules run on each file, then the symbol table / call
/// graph is built across all of them and the interprocedural rules
/// (panic-reachability, persist-symmetry, kernel-parity,
/// query-charging, alloc-hot-path) run over the whole set. Allow
/// comments suppress findings of both phases.
pub fn lint_sources(files: &[(String, String)]) -> (Vec<Finding>, Vec<AppliedAllow>) {
    // Phase 1: per-file rules, with each file's parsed allows kept
    // for post-hoc application to interprocedural findings.
    let mut indexed = Vec::with_capacity(files.len());
    let mut per_file_allows = Vec::with_capacity(files.len());
    let mut findings = Vec::new();
    let mut meta = Vec::new();
    let rule_ids: Vec<&'static str> = RULES.iter().map(|(id, _)| *id).collect();
    for (rel_path, source) in files {
        let file = FileIndex::new(rel_path, source);
        let ctx = FileCtx {
            rel_path,
            lexed: &file.lexed,
            test_ranges: &file.test_ranges,
        };
        let roles = roles_for(rel_path);
        if roles.events {
            findings.extend(rules::events::check(&ctx));
        }
        if roles.panics {
            findings.extend(rules::panics::check(&ctx));
        }
        if roles.determinism {
            findings.extend(rules::determinism::check(&ctx, roles.is_executor));
        }
        if roles.maintain {
            findings.extend(rules::maintain::check(&ctx));
        }
        if roles.io {
            findings.extend(rules::io_hygiene::check(&ctx));
        }
        findings.extend(rules::unsafety::check(&ctx));
        per_file_allows.push(allow::collect(
            &file.lexed.line_comments,
            &rule_ids,
            rel_path,
            &mut meta,
        ));
        indexed.push(file);
    }

    // Phase 2: the workspace-wide symbol table, call graph, and
    // effect summaries feed the interprocedural rules.
    let ws = Workspace::build(indexed);
    let sums = summary::compute(&ws);
    findings.extend(rules::panic_reach::check(&ws, &sums));
    findings.extend(rules::persist::check(&ws));
    findings.extend(rules::kernel_parity::check(&ws));
    findings.extend(rules::query_charge::check(&ws, &sums));
    findings.extend(rules::alloc_hot::check(&ws, &sums));

    // Allows apply per file, to findings of either phase.
    let mut applied = Vec::new();
    let mut kept = Vec::new();
    for (fi, (rel_path, _)) in files.iter().enumerate() {
        let mine: Vec<Finding> = findings
            .iter()
            .filter(|f| f.file == *rel_path)
            .cloned()
            .collect();
        kept.extend(allow::apply(
            mine,
            &per_file_allows[fi],
            rel_path,
            &mut applied,
        ));
    }
    // Findings anchored to files outside the set (none today, but a
    // rule bug should not silently drop reports).
    kept.extend(
        findings
            .into_iter()
            .filter(|f| !files.iter().any(|(p, _)| *p == f.file)),
    );
    kept.extend(meta);
    // Site-level allows consumed inside the effect fixpoint are part
    // of the same audit trail as per-file ones.
    applied.extend(sums.applied);
    (kept, applied)
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every
/// `crates/<name>/src/lib.rs` except mpc-sim's (the executor is
/// allowlisted) and mpc-sketch's (see [`needs_deny`]), plus the
/// facade.
fn needs_forbid(rel_path: &str) -> bool {
    if rel_path == "src/lib.rs" {
        return true;
    }
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    rest.ends_with("/src/lib.rs") && !rest.starts_with("mpc/") && !rest.starts_with("sketch/")
}

/// Crate roots that must carry `#![deny(unsafe_code)]` instead of
/// `forbid`: only mpc-sketch's, whose allowlisted `kernels` modules
/// hold `#![allow(unsafe_code)]` that `forbid` could not be
/// overridden by.
fn needs_deny(rel_path: &str) -> bool {
    rel_path == "crates/sketch/src/lib.rs"
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        sources.push((rel.replace('\\', "/"), source));
    }
    let mut report = Report::default();
    let mut saw_context = false;
    // One pass over the whole set, so the interprocedural rules see
    // every cross-crate call edge.
    let (findings, applied) = lint_sources(&sources);
    report.findings.extend(findings);
    report.allows.extend(applied);
    for (rel, source) in &sources {
        saw_context |= rel == "crates/mpc/src/context.rs";
        if needs_forbid(rel) || needs_deny(rel) {
            let lexed = lexer::lex(source);
            let ctx = FileCtx {
                rel_path: rel,
                lexed: &lexed,
                test_ranges: &[],
            };
            if needs_forbid(rel) {
                report.findings.extend(rules::unsafety::check_forbid(&ctx));
            } else {
                report.findings.extend(rules::unsafety::check_deny(&ctx));
            }
        }
        report.files_scanned += 1;
    }
    if !saw_context {
        report.findings.push(Finding {
            rule: RULE_EVENT,
            file: "crates/mpc/src/context.rs".to_string(),
            line: 1,
            message: "accounting context source not found — event-completeness could not run"
                .to_string(),
        });
    }
    report.finalize();
    Ok(report)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", ".github"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Resolves the workspace root for the CLI: an explicit argument, the
/// current directory if it looks like the workspace, or the crate's
/// own manifest dir walked two levels up.
pub fn resolve_root(arg: Option<PathBuf>) -> PathBuf {
    if let Some(p) = arg {
        return p;
    }
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.parent().and_then(Path::parent) {
            return ws.to_path_buf();
        }
    }
    cwd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_scope_rules_by_path() {
        let ctx = roles_for("crates/mpc/src/context.rs");
        assert!(ctx.events && ctx.determinism && !ctx.is_executor);
        let exec = roles_for("crates/mpc/src/executor.rs");
        assert!(exec.is_executor && !exec.events);
        let bench = roles_for("crates/bench/src/experiments/micro.rs");
        assert!(!bench.determinism && !bench.panics);
        let lint = roles_for("crates/mpc-lint/src/main.rs");
        assert!(!lint.determinism);
        let test = roles_for("tests/determinism.rs");
        assert!(!test.determinism && !test.panics && !test.maintain && !test.io);
        let facade = roles_for("src/lib.rs");
        assert!(facade.determinism && facade.io);
        let snap = roles_for("crates/mpc-snapshot/src/format.rs");
        assert!(
            snap.determinism && !snap.io,
            "snapshot crate may touch disk"
        );
        assert!(roles_for("crates/core/src/session.rs").io);
        assert!(!roles_for("crates/bench/src/experiments/micro.rs").io);
    }

    #[test]
    fn forbid_required_everywhere_but_mpc_sim_and_sketch() {
        assert!(needs_forbid("crates/graph/src/lib.rs"));
        assert!(needs_forbid("src/lib.rs"));
        assert!(needs_forbid("crates/mpc-lint/src/lib.rs"));
        assert!(!needs_forbid("crates/mpc/src/lib.rs"));
        assert!(!needs_forbid("crates/graph/src/ids.rs"));
        // The sketch root trades `forbid` for `deny` so its kernels'
        // module-level allows can exist; `deny` is then mandatory.
        assert!(!needs_forbid("crates/sketch/src/lib.rs"));
        assert!(needs_deny("crates/sketch/src/lib.rs"));
        assert!(!needs_deny("crates/graph/src/lib.rs"));
        assert!(!needs_deny("crates/sketch/src/arena.rs"));
    }

    #[test]
    fn explain_knows_every_rule() {
        for (id, _) in RULES {
            assert!(explain(id).is_some());
        }
        assert!(explain("nope").is_none());
    }

    /// Drift guard for the rule registry: every `RULE_*` constant must
    /// appear in [`RULES`] exactly once with a non-empty explanation.
    /// `--list` and `--explain` both read [`RULES`], so this pins all
    /// three surfaces to the same set — adding a rule id without
    /// registering it (or vice versa) fails here, not in the field.
    #[test]
    fn rule_registry_is_complete_and_unique() {
        let consts = [
            RULE_EVENT,
            RULE_NO_PANIC,
            RULE_UNSAFE,
            RULE_DETERMINISM,
            RULE_MAINTAIN,
            RULE_IO,
            RULE_ALLOW_HYGIENE,
            RULE_PANIC_REACH,
            RULE_PERSIST,
            RULE_KERNEL_PARITY,
            RULE_QUERY_CHARGE,
            RULE_ALLOC_HOT,
        ];
        assert_eq!(consts.len(), RULES.len(), "registry size drifted");
        for id in consts {
            let hits = RULES.iter().filter(|(r, _)| *r == id).count();
            assert_eq!(hits, 1, "rule `{id}` must be registered exactly once");
        }
        for (id, text) in RULES {
            assert!(!text.trim().is_empty(), "rule `{id}` has no explanation");
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id `{id}` is not kebab-case"
            );
        }
    }

    #[test]
    fn lint_source_applies_allows_and_reports_malformed_ones() {
        let src = "\
// lint: allow(determinism-hygiene): lookup-only, never iterated anywhere
use std::collections::HashMap;
// lint: allow(determinism-hygiene)
use std::time::Instant;
";
        let (findings, applied) = lint_source("crates/core/src/x.rs", src);
        assert_eq!(applied.len(), 1, "justified allow fired: {applied:?}");
        // Surviving: the Instant finding (unjustified allow does not
        // suppress) plus the allow-hygiene meta finding.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.rule == RULE_DETERMINISM));
        assert!(findings.iter().any(|f| f.rule == RULE_ALLOW_HYGIENE));
    }
}
