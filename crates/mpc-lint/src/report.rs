//! Findings, applied allows, and the machine-readable JSON report.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (e.g. `event-completeness`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One *applied* `// lint: allow(rule): justification` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedAllow {
    /// The rule that was suppressed.
    pub rule: String,
    /// Workspace-relative path of the allow comment.
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// The mandatory justification text.
    pub justification: String,
}

/// The result of linting a workspace (or a single source).
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Every allow comment that actually suppressed a finding.
    pub allows: Vec<AppliedAllow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings and applied allows into a stable order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"finding_count\": {},", self.findings.len());
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\":{},\"file\":{},\"line\":{},\"justification\":{}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.justification)
            );
            s.push_str(if i + 1 < self.allows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "b-rule",
                    file: "z.rs".into(),
                    line: 2,
                    message: "has \"quotes\"\nand newline".into(),
                },
                Finding {
                    rule: "a-rule",
                    file: "a.rs".into(),
                    line: 9,
                    message: "m".into(),
                },
            ],
            allows: vec![],
            files_scanned: 2,
        };
        r.finalize();
        assert_eq!(r.findings[0].file, "a.rs");
        let json = r.to_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"finding_count\": 2"));
    }
}
