//! A minimal Rust lexer: just enough structure for invariant linting.
//!
//! The linter deliberately avoids `syn` (this environment has no
//! registry access) and full parsing: every rule in this crate needs
//! only a comment-and-literal-free token stream with line numbers,
//! plus the line comments themselves (for `// SAFETY:` and
//! `// lint: allow(...)` detection). The lexer therefore handles the
//! parts of Rust lexical structure that would otherwise produce false
//! positives — nested block comments, string/raw-string/byte-string
//! literals, char literals vs. lifetimes — and flattens everything
//! else to identifiers and single-character punctuation.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// A single punctuation character (`{`, `!`, `:`, …).
    Punct(char),
    /// A string/char/number literal (contents discarded).
    Literal,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }
}

/// A lexed source file: the token stream plus its line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` for every `//` comment, text excluding the
    /// leading slashes (doc comments included).
    pub line_comments: Vec<(u32, String)>,
}

impl Lexed {
    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.line_comments
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
    }
}

/// Lexes `source` into tokens and line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let count_newlines = |s: &[u8]| s.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < n {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != b'\n' {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                out.line_comments.push((line, text));
                i = j;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                let (j, newlines) = skip_string(bytes, i);
                line += newlines;
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let start_line = line;
                let (j, newlines) = skip_raw_or_byte_string(bytes, i);
                line += newlines;
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: start_line,
                });
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime.
                if i + 1 < n && bytes[i + 1] == b'\\' {
                    // Escaped char literal: scan to the closing quote.
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped character itself
                    }
                    while j < n && bytes[j] != b'\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    i = (j + 1).min(n);
                } else if i + 1 < n && is_ident_start(bytes[i + 1]) {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    if j < n && bytes[j] == b'\'' {
                        // 'a' — a char literal.
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            line,
                        });
                        i = j + 1;
                    } else {
                        // 'a — a lifetime; keep the name as an ident
                        // so no source text is silently swallowed.
                        let text = String::from_utf8_lossy(&bytes[i + 1..j]).into_owned();
                        out.tokens.push(Token {
                            kind: TokenKind::Ident(text),
                            line,
                        });
                        i = j;
                    }
                } else if i + 1 < n {
                    // Non-identifier char literal like '(' or '0'.
                    let mut j = i + 1;
                    while j < n && bytes[j] != b'\'' {
                        line += count_newlines(&bytes[j..j + 1]);
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    i = (j + 1).min(n);
                } else {
                    i += 1;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                let mut j = i + 1;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                out.tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
                i = j;
            }
            b'0'..=b'9' => {
                // Number literal; suffixes and hex digits ride along,
                // `.` deliberately excluded so ranges stay punctuation.
                let mut j = i + 1;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether position `i` starts a raw string (`r"`, `r#"`), byte
/// string (`b"`), or raw byte string (`br#"`).
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= n {
            return false;
        }
    }
    if j < n && bytes[j] == b'r' {
        j += 1;
        while j < n && bytes[j] == b'#' {
            j += 1;
        }
    }
    j < n && bytes[j] == b'"' && j > i
}

/// Skips a plain string literal starting at the opening quote.
/// Returns `(index past the closing quote, newlines crossed)`.
fn skip_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let n = bytes.len();
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Skips a raw/byte/raw-byte string starting at `r`/`b`.
fn skip_raw_or_byte_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = j < n && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && bytes[j] == b'"');
    j += 1; // opening quote
    let mut newlines = 0u32;
    while j < n {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if !raw && bytes[j] == b'\\' {
            j += 2;
        } else if bytes[j] == b'"' {
            // A raw string closes only on `"` followed by its hashes.
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (n, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // unsafe in a comment
            /* HashMap in /* a nested */ block */
            let s = "unsafe HashMap";
            let r = r#"panic! inside "raw" string"#;
            let c = '\'';
            let lt: &'static str = "x";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(
            ids.contains(&"static".to_string()),
            "lifetime ident kept out of literals: {ids:?}"
        );
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "fn a() {}\n/* x\ny */\nfn b() {}\n";
        let l = lex(src);
        let b_line = l
            .tokens
            .iter()
            .find(|t| t.is_ident("b"))
            .map(|t| t.line)
            .unwrap_or(0);
        assert_eq!(b_line, 4);
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "let x = 1; // SAFETY: fine\n// lint: allow(x): because\n";
        let l = lex(src);
        assert_eq!(l.line_comments.len(), 2);
        assert!(l.comment_on(1).unwrap().contains("SAFETY:"));
        assert!(l.comment_on(2).unwrap().contains("lint: allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, c: char) -> &'a str { let _y = 'z'; x }";
        let l = lex(src);
        // The trailing content after 'z' must still lex: `x` before `}`.
        let last_ident = l.tokens.iter().rev().find_map(|t| t.ident());
        assert_eq!(last_ident, Some("x"));
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let src = "for i in 0..n {}";
        let l = lex(src);
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
