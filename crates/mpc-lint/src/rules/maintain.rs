//! Rule `maintain-completeness`: every `impl Maintain` provides both
//! `supports` and `answer`.
//!
//! The trait ships defaults (`supports` → `false`, `answer` →
//! `Unsupported`) so new maintainers compile before their query plane
//! is wired up — but a shipped maintainer with only one of the pair
//! is a contract bug: `supports` deciding *before charging* and
//! `answer` doing the charged work must agree, and PR 6 had to
//! retrofit exactly this pair. Any production `impl Maintain` must
//! therefore define both explicitly (test doubles in `#[cfg(test)]`
//! code are exempt).

use super::FileCtx;
use crate::report::Finding;
use crate::scan;
use crate::RULE_MAINTAIN;

/// The method pair every maintainer must define together.
const REQUIRED: &[&str] = &["supports", "answer"];

/// Checks every `impl ... Maintain for Type` block in the file.
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let tokens = &ctx.lexed.tokens;
    let fns = scan::functions(ctx.lexed);
    for im in scan::impls(ctx.lexed) {
        if scan::in_ranges(ctx.test_ranges, im.line) {
            continue;
        }
        let header: Vec<&str> = tokens[im.header.0..im.header.1]
            .iter()
            .filter_map(|t| t.ident())
            .collect();
        let Some(for_pos) = header.iter().position(|&h| h == "for") else {
            continue;
        };
        if header[..for_pos].last().is_none_or(|&h| h != "Maintain") {
            continue;
        }
        let ty = header.get(for_pos + 1).copied().unwrap_or("?");
        let defined: Vec<&str> = fns
            .iter()
            .filter(|f| f.body.0 > im.body.0 && f.body.1 <= im.body.1)
            .map(|f| f.name.as_str())
            .collect();
        for need in REQUIRED {
            if !defined.contains(need) {
                out.push(Finding {
                    rule: RULE_MAINTAIN,
                    file: ctx.rel_path.to_string(),
                    line: im.line,
                    message: format!(
                        "`impl Maintain for {ty}` does not define `{need}` — the \
                         `supports`/`answer` pair must be implemented together so the \
                         charge-free probe and the charged answer agree (the contract \
                         PR 6 had to retrofit)"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path: "crates/msf/src/x.rs",
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    #[test]
    fn complete_impl_passes_including_path_qualified() {
        let src = "impl mpc_stream_core::Maintain for Foo {\n    fn supports(&self, q: &Q) -> bool { true }\n    fn answer(&mut self) -> R { R }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn missing_answer_is_flagged_with_type_name() {
        let src = "impl Maintain for Foo {\n    fn supports(&self, q: &Q) -> bool { true }\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Foo"));
        assert!(f[0].message.contains("`answer`"));
    }

    #[test]
    fn unrelated_impls_and_test_doubles_are_ignored() {
        let src = "impl Display for Foo { }\nimpl MaintainerStats { }\n#[cfg(test)]\nmod tests {\n    impl Maintain for Fake { }\n}";
        assert!(run(src).is_empty());
    }
}
