//! The rule catalog. Each rule lives in its own module and produces
//! [`Finding`](crate::report::Finding)s; scoping (which rules see
//! which files) is decided by [`crate::lint_source`].

pub mod determinism;
pub mod events;
pub mod io_hygiene;
pub mod maintain;
pub mod panics;
pub mod unsafety;

use crate::lexer::Lexed;

/// Everything a per-file rule needs to know about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// The lexed source.
    pub lexed: &'a Lexed,
    /// `#[cfg(test)]`/`#[test]` line ranges (rules skip these).
    pub test_ranges: &'a [(u32, u32)],
}

/// Searches `tokens[range]` for the token sequence `pattern`, where
/// each pattern element matches an identifier (`"name"`) or a single
/// punctuation character (`"."`, `"!"`, …). Returns matching start
/// indices.
pub(crate) fn find_seq(
    tokens: &[crate::lexer::Token],
    range: (usize, usize),
    pattern: &[&str],
) -> Vec<usize> {
    let mut out = Vec::new();
    let (lo, hi) = range;
    if pattern.is_empty() || hi > tokens.len() {
        return out;
    }
    'outer: for i in lo..hi.saturating_sub(pattern.len() - 1) {
        for (k, p) in pattern.iter().enumerate() {
            let t = &tokens[i + k];
            let ok = if p.len() == 1
                && !p.chars().next().unwrap().is_ascii_alphanumeric()
                && *p != "_"
            {
                t.is_punct(p.chars().next().unwrap())
            } else {
                t.is_ident(p)
            };
            if !ok {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

/// `snake_case` → `CamelCase` (for primitive → event-variant names).
pub(crate) fn camel(name: &str) -> String {
    name.split('_')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// `CamelCase` → `snake_case` (for event-variant → primitive names).
pub(crate) fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_conversions_roundtrip() {
        assert_eq!(camel("converge_cast"), "ConvergeCast");
        assert_eq!(snake("ConvergeCast"), "converge_cast");
        assert_eq!(camel("sort"), "Sort");
        assert_eq!(snake("ParallelBegin"), "parallel_begin");
    }

    #[test]
    fn find_seq_matches_idents_and_puncts() {
        let l = crate::lexer::lex("self.record(MpcEvent::Sort(w));");
        let hits = find_seq(
            &l.tokens,
            (0, l.tokens.len()),
            &["self", ".", "record", "(", "MpcEvent", ":", ":", "Sort"],
        );
        assert_eq!(hits.len(), 1);
    }
}
