//! The rule catalog. Each rule lives in its own module and produces
//! [`Finding`](crate::report::Finding)s; scoping (which rules see
//! which files) is decided by [`crate::lint_source`].

pub mod alloc_hot;
pub mod determinism;
pub mod events;
pub mod io_hygiene;
pub mod kernel_parity;
pub mod maintain;
pub mod panic_reach;
pub mod panics;
pub mod persist;
pub mod query_charge;
pub mod unsafety;

use crate::lexer::Lexed;

/// Everything a per-file rule needs to know about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// The lexed source.
    pub lexed: &'a Lexed,
    /// `#[cfg(test)]`/`#[test]` line ranges (rules skip these).
    pub test_ranges: &'a [(u32, u32)],
}

/// Searches `tokens[range]` for the token sequence `pattern`, where
/// each pattern element matches an identifier (`"name"`) or a single
/// punctuation character (`"."`, `"!"`, …). Returns matching start
/// indices.
pub(crate) fn find_seq(
    tokens: &[crate::lexer::Token],
    range: (usize, usize),
    pattern: &[&str],
) -> Vec<usize> {
    let mut out = Vec::new();
    let (lo, hi) = range;
    if pattern.is_empty() || hi > tokens.len() {
        return out;
    }
    'outer: for i in lo..hi.saturating_sub(pattern.len() - 1) {
        for (k, p) in pattern.iter().enumerate() {
            let t = &tokens[i + k];
            let ok = if p.len() == 1
                && !p.chars().next().unwrap().is_ascii_alphanumeric()
                && *p != "_"
            {
                t.is_punct(p.chars().next().unwrap())
            } else {
                t.is_ident(p)
            };
            if !ok {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

/// The justified `// lint: allow(<rule>): …` comment sitting on
/// `line` or the line above in `file`, as (comment line,
/// justification), if any.
///
/// The per-file allow machinery suppresses findings in the file they
/// are *anchored* in; the interprocedural rules use this to also
/// honor an allow at the **site** end of a witness chain — the file
/// holding the panic/alloc — which is usually a different file from
/// the hot root. A documented precondition assert deep in a library
/// is justified once, where it lives, instead of at every hot caller.
/// The returned justification feeds the report's applied-allow list,
/// so site allows stay as auditable as per-file ones.
pub(crate) fn site_allow(
    file: &crate::graph::FileIndex,
    line: u32,
    rule: &str,
) -> Option<(u32, String)> {
    let needle = format!("lint: allow({rule})");
    file.lexed.line_comments.iter().find_map(|(l, text)| {
        if (*l != line && *l + 1 != line) || text.starts_with('/') || text.starts_with('!') {
            return None;
        }
        let pos = text.find(&needle)?;
        let just = text[pos + needle.len()..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        (just.chars().count() >= crate::allow::MIN_JUSTIFICATION)
            .then(|| (*l, just.to_string()))
    })
}

/// `snake_case` → `CamelCase` (for primitive → event-variant names).
pub(crate) fn camel(name: &str) -> String {
    name.split('_')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// `CamelCase` → `snake_case` (for event-variant → primitive names).
pub(crate) fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_conversions_roundtrip() {
        assert_eq!(camel("converge_cast"), "ConvergeCast");
        assert_eq!(snake("ConvergeCast"), "converge_cast");
        assert_eq!(camel("sort"), "Sort");
        assert_eq!(snake("ParallelBegin"), "parallel_begin");
    }

    #[test]
    fn find_seq_matches_idents_and_puncts() {
        let l = crate::lexer::lex("self.record(MpcEvent::Sort(w));");
        let hits = find_seq(
            &l.tokens,
            (0, l.tokens.len()),
            &["self", ".", "record", "(", "MpcEvent", ":", ":", "Sort"],
        );
        assert_eq!(hits.len(), 1);
    }
}
