//! Rule `determinism-hygiene`: nondeterminism sources are banned from
//! maintainer and accounting crates.
//!
//! Same-seed runs must stay bit-identical across worker counts (the
//! property the determinism suite checks dynamically). Statically,
//! that means library crates must not consult host wall-clock time,
//! must not iterate default-hasher maps (`RandomState` randomizes
//! iteration order per process), must not spawn raw threads or share
//! state through locks outside the executor (ordering races), and
//! must not print (output interleaving under the worker pool, and a
//! smell for debugging leftovers). Tool crates (`mpc-bench`,
//! `mpc-lint`) and test/bench/example code are exempt by scope.

use super::{find_seq, FileCtx};
use crate::report::Finding;
use crate::scan;
use crate::RULE_DETERMINISM;
use std::collections::BTreeSet;

/// Checks one library source file. `is_executor` exempts the worker
/// pool from the raw-thread/lock sub-rule (it is the one sanctioned
/// home for host concurrency).
pub fn check(ctx: &FileCtx, is_executor: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    // One finding per (line, offender) even if a line repeats it.
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let tokens = &ctx.lexed.tokens;
    let mut push = |seen: &mut BTreeSet<(u32, &'static str)>,
                    line: u32,
                    offender: &'static str,
                    message: String| {
        if seen.insert((line, offender)) {
            out.push(Finding {
                rule: RULE_DETERMINISM,
                file: ctx.rel_path.to_string(),
                line,
                message,
            });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if scan::in_ranges(ctx.test_ranges, t.line) {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        match id {
            "Instant" | "SystemTime" => {
                let offender = if id == "Instant" {
                    "Instant"
                } else {
                    "SystemTime"
                };
                push(
                    &mut seen,
                    t.line,
                    offender,
                    format!(
                        "host wall-clock (`{id}`) in a deterministic crate — time must \
                         never influence maintainer behavior; measure in mpc-bench instead"
                    ),
                );
            }
            "HashMap" | "HashSet" => {
                let offender = if id == "HashMap" {
                    "HashMap"
                } else {
                    "HashSet"
                };
                push(
                    &mut seen,
                    t.line,
                    offender,
                    format!(
                        "default-hasher `{id}` — `RandomState` randomizes iteration order \
                         per process; use `BTreeMap`/`BTreeSet` or a deterministically \
                         seeded hasher"
                    ),
                );
            }
            "Mutex" | "RwLock" | "Condvar" if !is_executor => {
                let offender = match id {
                    "Mutex" => "Mutex",
                    "RwLock" => "RwLock",
                    _ => "Condvar",
                };
                push(
                    &mut seen,
                    t.line,
                    offender,
                    format!(
                        "raw `{id}` outside the executor — host synchronization lives in \
                         crates/mpc/src/executor.rs only; route parallelism through the \
                         WorkerPool"
                    ),
                );
            }
            "thread"
                if !is_executor
                    && !find_seq(
                        tokens,
                        (i, (i + 4).min(tokens.len())),
                        &["thread", ":", ":", "spawn"],
                    )
                    .is_empty() =>
            {
                push(
                    &mut seen,
                    t.line,
                    "spawn",
                    "raw `std::thread::spawn` outside the executor — unscoped threads \
                     escape the pool's panic containment and shutdown join"
                        .to_string(),
                );
            }
            "dbg" | "println" | "print" | "eprintln" | "eprint"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                push(
                    &mut seen,
                    t.line,
                    "print",
                    format!(
                        "`{id}!` in a library crate — output interleaves \
                         nondeterministically under the worker pool; return data or use \
                         the bench/report plumbing"
                    ),
                );
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, is_executor: bool) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(
            &FileCtx {
                rel_path: "crates/core/src/x.rs",
                lexed: &lexed,
                test_ranges: &ranges,
            },
            is_executor,
        )
    }

    #[test]
    fn flags_each_offender_once_per_line() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, HashMap<u32, u32>> = HashMap::new(); }";
        let f = run(src, false);
        assert_eq!(f.len(), 2, "line 1 once, line 2 once: {f:?}");
    }

    #[test]
    fn flags_time_locks_threads_prints() {
        let src = "fn f() {\n    let t = Instant::now();\n    let m = Mutex::new(0);\n    std::thread::spawn(|| {});\n    println!(\"x\");\n}";
        let f = run(src, false);
        assert_eq!(f.len(), 4);
        assert!(f.iter().any(|x| x.message.contains("wall-clock")));
        assert!(f.iter().any(|x| x.message.contains("Mutex")));
        assert!(f.iter().any(|x| x.message.contains("thread::spawn")));
        assert!(f.iter().any(|x| x.message.contains("interleaves")));
    }

    #[test]
    fn executor_may_lock_and_spawn_but_not_tell_time() {
        let src = "fn f() {\n    let m = Mutex::new(0);\n    std::thread::spawn(|| {});\n    let t = Instant::now();\n}";
        let f = run(src, true);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wall-clock"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { println!(\"ok\"); }\n}";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn btree_collections_pass() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }";
        assert!(run(src, false).is_empty());
    }
}
