//! Rule `query-charging`: every `Maintain::answer` arm that returns
//! `Ok` must charge the accounting context first.
//!
//! The paper's guarantee is that maintained answers cost O(1) rounds
//! — a claim the workspace makes *measurable* by charging every
//! answer through `MpcContext` (`exchange`/`broadcast`/
//! `converge_cast`/`sort`/`gather`). An `answer` arm that returns
//! `Ok(..)` without a charge isn't faster, it's unaccounted: the
//! rounds/words ledger silently undercounts and every experiment
//! comparing maintained vs. recompute cost reads wrong. This rule
//! splits each production `impl Maintain`'s `answer` body into match
//! arms and requires a charge point — a direct charging call or a
//! call into a helper whose transitive summary charges — in the
//! pre-`match` prefix or anywhere in each `Ok`-returning arm (a
//! charging helper inside the `Ok(..)` expression itself counts).
//! `Err` arms are exempt by construction (they contain no `Ok`).

use crate::graph::Workspace;
use crate::lexer::Token;
use crate::report::Finding;
use crate::rules::find_seq;
use crate::scan;
use crate::summary::Summaries;
use crate::RULE_QUERY_CHARGE;

/// `(pattern_end, body_range)` for each arm of the match whose `{` is
/// at `open`; arm bodies are token ranges.
fn match_arms(tokens: &[Token], open: usize) -> Vec<(usize, usize)> {
    let close = scan::matching_brace(tokens, open);
    let mut arms = Vec::new();
    let mut i = open + 1;
    let mut depth = 0i32;
    while i < close {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && t.is_punct('=')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('>'))
        {
            // Arm body: a braced block to its matching `}`, else up
            // to the next depth-0 `,` (or the match's `}`).
            let body_start = i + 2;
            let body_end = if tokens.get(body_start).is_some_and(|n| n.is_punct('{')) {
                scan::matching_brace(tokens, body_start) + 1
            } else {
                let mut j = body_start;
                let mut d = 0i32;
                while j < close {
                    let u = &tokens[j];
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                        d += 1;
                    } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                        d -= 1;
                    } else if d == 0 && u.is_punct(',') {
                        break;
                    }
                    j += 1;
                }
                j
            };
            arms.push((body_start, body_end));
            i = body_end;
            continue;
        }
        i += 1;
    }
    arms
}

/// The token index of the first depth-0 `match` in `body`, if any.
fn top_level_match(tokens: &[Token], body: (usize, usize)) -> Option<usize> {
    let mut depth = 0i32;
    for i in body.0..body.1 {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("match") {
            return Some(i);
        }
    }
    None
}

/// Whether function `f` has a charge point with a token index in
/// `[lo, hi)`: a direct charging call, or a call edge into a
/// transitively charging workspace function.
fn charged_in(ws: &Workspace, sums: &Summaries, f: usize, lo: usize, hi: usize) -> bool {
    sums.facts[f].charge_sites.iter().any(|&t| lo <= t && t < hi)
        || ws
            .calls_in_range(f, lo, hi)
            .any(|c| sums.effects[c.callee].charges)
}

/// Checks every production `Maintain::answer` body.
pub fn check(ws: &Workspace, sums: &Summaries) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !crate::roles_for(&file.rel_path).maintain {
            continue;
        }
        let tokens = &file.lexed.tokens;
        for im in &ws.impls[fi] {
            if im.trait_name.as_deref() != Some("Maintain")
                || scan::in_ranges(&file.test_ranges, im.line)
            {
                continue;
            }
            let ty = im.type_name.clone().unwrap_or_else(|| "?".to_string());
            for (ai, node) in ws.fns.iter().enumerate() {
                if node.file != fi
                    || node.name != "answer"
                    || !(im.body.0 <= node.sig.0 && node.sig.0 < im.body.1)
                {
                    continue;
                }
                // Segments: (pre-match prefix, arm body) pairs; with
                // no top-level match the whole body is one segment.
                let segments: Vec<(usize, usize)> = match top_level_match(tokens, node.body) {
                    Some(m) => {
                        let Some(open) = (m..node.body.1).find(|&j| tokens[j].is_punct('{'))
                        else {
                            continue;
                        };
                        match_arms(tokens, open)
                    }
                    None => vec![node.body],
                };
                let prefix_end = top_level_match(tokens, node.body).unwrap_or(node.body.0);
                for (alo, ahi) in segments {
                    for ok_at in find_seq(tokens, (alo, ahi), &["Ok", "("]) {
                        // A charge anywhere in the arm counts — the
                        // common shapes are a charge statement before
                        // the return *and* a charging helper inside
                        // the `Ok(..)` expression itself
                        // (`Ok(Count(self.count(ctx)))`).
                        let charged = charged_in(ws, sums, ai, node.body.0, prefix_end)
                            || charged_in(ws, sums, ai, alo, ahi);
                        if !charged {
                            out.push(Finding {
                                rule: RULE_QUERY_CHARGE,
                                file: file.rel_path.clone(),
                                line: tokens[ok_at].line,
                                message: format!(
                                    "`answer` for `{ty}` returns `Ok` without charging the \
                                     accounting context in this arm — maintained answers must \
                                     stay on the rounds/words ledger (exchange/broadcast/\
                                     converge_cast/sort/gather, directly or via a helper)",
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;
    use crate::summary;

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace::build(vec![FileIndex::new("crates/msf/src/x.rs", src)]);
        let sums = summary::compute(&ws);
        check(&ws, &sums)
    }

    const CHARGED: &str = "impl Maintain for ExactMsf {\n\
         fn answer(&mut self, ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
             match q {\n\
                 Query::Weight => { ctx.exchange(2); Ok(QueryResponse::W(self.w)) }\n\
                 Query::Count => { self.charge(ctx); Ok(QueryResponse::C(self.n)) }\n\
                 _ => Err(unsupported(q)),\n\
             }\n\
         }\n\
     }\n\
     impl ExactMsf { fn charge(&self, ctx: &mut MpcContext) { ctx.gather(1); } }";

    #[test]
    fn direct_and_helper_charges_both_satisfy_the_rule() {
        assert!(run(CHARGED).is_empty());
    }

    #[test]
    fn an_uncharged_arm_is_flagged_even_when_siblings_charge() {
        let src = "impl Maintain for Half {\n\
             fn answer(&mut self, ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
                 match q {\n\
                     Query::A => { ctx.sort(self.n); Ok(QueryResponse::A) }\n\
                     Query::B => Ok(QueryResponse::B),\n\
                     _ => Err(unsupported(q)),\n\
                 }\n\
             }\n\
         }";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("Half"));
    }

    #[test]
    fn a_charging_helper_inside_the_ok_expression_counts() {
        // The workspace idiom: `Ok(Count(self.count(ctx) as u64))`
        // where the helper itself charges.
        let src = "impl Maintain for Inline {\n\
             fn answer(&mut self, ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
                 match q {\n\
                     Query::Count => Ok(QueryResponse::C(self.count(ctx) as u64)),\n\
                     _ => Err(unsupported(q)),\n\
                 }\n\
             }\n\
         }\n\
         impl Inline { fn count(&self, ctx: &mut MpcContext) -> usize { ctx.sort(2); 0 } }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn a_charge_before_the_match_covers_every_arm() {
        let src = "impl Maintain for Pre {\n\
             fn answer(&mut self, ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
                 ctx.broadcast(1);\n\
                 match q { Query::A => Ok(QueryResponse::A), _ => Err(unsupported(q)) }\n\
             }\n\
         }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn matchless_bodies_and_err_only_arms_are_handled() {
        let free = "impl Maintain for Free {\n\
             fn answer(&mut self, _ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
                 Ok(QueryResponse::N)\n\
             }\n\
         }";
        assert_eq!(run(free).len(), 1);
        let err_only = "impl Maintain for Never {\n\
             fn answer(&mut self, _ctx: &mut MpcContext, q: &Query) -> Result<QueryResponse, E> {\n\
                 Err(unsupported(q))\n\
             }\n\
         }";
        assert!(run(err_only).is_empty());
    }
}
