//! Rule `persist-symmetry`: `Persist::save` and `Persist::load` must
//! mirror each other, field for field, in order.
//!
//! The snapshot container gives byte-stability (save → load → save is
//! bit-identical) a *runtime* property suite; this rule is its static
//! twin. Each `impl Persist` body is scanned for its ordered event
//! streams:
//!
//! * save side — `w.put_u32(self.field)` primitive writes and
//!   `self.field.save(w)` / `T::save(..)` nested writes;
//! * load side — `r.take_u32()?` primitive reads and `T::load(r)?`
//!   nested reads, with the bound name recovered from the surrounding
//!   `let name = …` / `name: …` struct-literal key / `*name = …`
//!   assignment.
//!
//! Three checks run over the streams: the primitive *kind sequence*
//! must match one-to-one (`u64` and `usize` are the same wire word;
//! skipped when either body branches via `match`, where the flat
//! stream interleaves arms); field *names* written by save must each
//! be read by load; and the shared names must appear in the same
//! order. Name checks only run when the two sides share at least one
//! name — impls that rename through locals (`let v = …; Ok(M61(v))`)
//! opt out of name matching but still get the kind check. Derived
//! writes (`w.put_usize(self.pow.len())`) and reconstructed load
//! fields (`kernel: KernelKind::selected()`) are deliberately
//! nameless/eventless and never reported.

use crate::graph::Workspace;
use crate::lexer::Token;
use crate::report::Finding;
use crate::scan;
use crate::RULE_PERSIST;

/// One save-side write or load-side read event.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Ev {
    /// Wire kind: a canonicalized primitive suffix (`u8`, `u32`,
    /// `w64`, …) or `nested` for a `Persist` sub-object.
    pub kind: String,
    /// The field/binding name, when one is recoverable.
    pub name: Option<String>,
    /// 1-based line.
    pub line: u32,
}

/// `u64` and `usize` share the on-wire word encoding.
fn canonical_kind(suffix: &str) -> String {
    match suffix {
        "u64" | "usize" => "w64".to_string(),
        other => other.to_string(),
    }
}

/// The argument tokens of the call whose `(` is at `open`
/// (exclusive), truncated at a trailing `as` cast.
fn call_args(tokens: &[Token], open: usize) -> &[Token] {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let args = &tokens[open + 1..j.min(tokens.len())];
    match args.iter().position(|t| t.is_ident("as")) {
        Some(cast) => &args[..cast],
        None => args,
    }
}

/// Field name from a primitive-write argument list: `self.field`,
/// `field`, or `*field` name the field; anything longer (method
/// calls, arithmetic, whole expressions) is a derived write.
fn write_arg_name(args: &[Token]) -> Option<String> {
    match args {
        [a, b, c] if a.is_ident("self") && b.is_punct('.') => c.ident().map(str::to_string),
        [a, b] if a.is_punct('*') => b.ident().map(str::to_string),
        [a] => a.ident().map(str::to_string),
        _ => None,
    }
}

/// Token indices `{';', '{', '}', ',', '('}` bound a statement /
/// struct-literal field / argument position.
fn is_boundary(t: &Token) -> bool {
    t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') || t.is_punct('(')
}

/// Recovers the binding name for a read whose expression starts at
/// token `start`: scans back to the nearest boundary and matches
/// `let [mut] name [..] =`, `name:` (struct-literal key), `*name =`,
/// or `name =`.
fn read_binding_name(tokens: &[Token], body_lo: usize, start: usize) -> Option<String> {
    let mut b = start;
    while b > body_lo && !is_boundary(&tokens[b - 1]) {
        b -= 1;
    }
    let seg = &tokens[b..start];
    if let Some(let_pos) = seg.iter().position(|t| t.is_ident("let")) {
        return seg[let_pos + 1..]
            .iter()
            .find(|t| t.ident().is_some_and(|s| s != "mut"))
            .and_then(|t| t.ident())
            .map(str::to_string);
    }
    match seg {
        [k, c] if c.is_punct(':') => k.ident().map(str::to_string),
        [.., s, n, e] if s.is_punct('*') && e.is_punct('=') => n.ident().map(str::to_string),
        [.., n, e] if e.is_punct('=') && n.ident().is_some() => n.ident().map(str::to_string),
        _ => None,
    }
}

/// Extracts the ordered save-side event stream from a body range.
pub(crate) fn save_events(tokens: &[Token], body: (usize, usize)) -> Vec<Ev> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        let open = i + 1;
        if !tokens.get(open).is_some_and(|t| t.is_punct('(')) || open >= body.1 {
            continue;
        }
        if let Some(suffix) = name.strip_prefix("put_") {
            if i > 0 && tokens[i - 1].is_punct('.') {
                out.push(Ev {
                    kind: canonical_kind(suffix),
                    name: write_arg_name(call_args(tokens, open)),
                    line: tokens[i].line,
                });
            }
        } else if name == "save" {
            if i > 0 && tokens[i - 1].is_punct('.') {
                // `self.field.save(w)` / `field.save(w)`.
                let recv = (i >= 2).then(|| &tokens[i - 2]).and_then(|t| t.ident());
                out.push(Ev {
                    kind: "nested".to_string(),
                    name: recv.filter(|r| *r != "self").map(str::to_string),
                    line: tokens[i].line,
                });
            } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                // `T::save(self, w)` (the Arc forwarding idiom).
                out.push(Ev {
                    kind: "nested".to_string(),
                    name: None,
                    line: tokens[i].line,
                });
            }
        }
    }
    out
}

/// First token of the path ending at the `load` ident at `load_idx`
/// (which the caller has verified is preceded by `::`). Walks back
/// over `ident::` segments *and* turbofish `::<…>::` groups, so
/// `BTreeMap::<TourId, Shard>::load` starts at `BTreeMap` — a lone
/// `:` (struct key, type ascription) is never a path separator, and
/// the commas inside the turbofish stay out of the binding scan.
fn path_start(tokens: &[Token], load_idx: usize) -> usize {
    let mut p = load_idx;
    loop {
        if p < 3 || !tokens[p - 1].is_punct(':') || !tokens[p - 2].is_punct(':') {
            return p;
        }
        if tokens[p - 3].ident().is_some() {
            p -= 3;
        } else if tokens[p - 3].is_punct('>') {
            // Skip the `<…>` group back to its matching `<`.
            let mut depth = 0i32;
            let mut q = p - 3;
            loop {
                if tokens[q].is_punct('>') {
                    depth += 1;
                } else if tokens[q].is_punct('<') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == 0 {
                    return p;
                }
                q -= 1;
            }
            // Turbofish: the group is itself preceded by `ident::`.
            if q >= 3
                && tokens[q - 1].is_punct(':')
                && tokens[q - 2].is_punct(':')
                && tokens[q - 3].ident().is_some()
            {
                p = q - 3;
            } else {
                return p;
            }
        } else {
            return p;
        }
    }
}

/// Extracts the ordered load-side event stream from a body range.
pub(crate) fn load_events(tokens: &[Token], body: (usize, usize)) -> Vec<Ev> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        let open = i + 1;
        if !tokens.get(open).is_some_and(|t| t.is_punct('(')) || open >= body.1 {
            continue;
        }
        if let Some(suffix) = name.strip_prefix("take_") {
            if i > 0 && tokens[i - 1].is_punct('.') {
                // `r.take_u32()?` — the expression starts at the
                // receiver token.
                let expr_start = i.saturating_sub(2);
                out.push(Ev {
                    kind: canonical_kind(suffix),
                    name: read_binding_name(tokens, body.0, expr_start),
                    line: tokens[i].line,
                });
            }
        } else if name == "load" && i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':')
        {
            out.push(Ev {
                kind: "nested".to_string(),
                name: read_binding_name(tokens, body.0, path_start(tokens, i)),
                line: tokens[i].line,
            });
        }
    }
    out
}

/// First-occurrence order of the named events' names.
fn name_order(evs: &[Ev]) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    for e in evs {
        if let Some(n) = &e.name {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
    }
    out
}

fn describe(ev: &Ev) -> String {
    match &ev.name {
        Some(n) => format!("`{n}` ({})", ev.kind),
        None => format!("unnamed {}", ev.kind),
    }
}

/// Runs the symmetry checks for one `impl Persist for <ty>`.
pub(crate) fn check_impl(
    file: &str,
    ty: &str,
    tokens: &[Token],
    save_body: (usize, usize),
    load_body: (usize, usize),
    impl_line: u32,
) -> Vec<Finding> {
    let saves = save_events(tokens, save_body);
    let loads = load_events(tokens, load_body);
    if saves.is_empty() && loads.is_empty() {
        return Vec::new(); // macro bodies, forwarding impls
    }
    let mut out = Vec::new();
    let finding = |line: u32, message: String| Finding {
        rule: RULE_PERSIST,
        file: file.to_string(),
        line,
        message,
    };

    let branching = tokens[save_body.0..save_body.1]
        .iter()
        .chain(&tokens[load_body.0..load_body.1])
        .any(|t| t.is_ident("match"));
    if !branching {
        // Check 1: the wire-kind sequences must agree one-to-one.
        let mut diverged = false;
        for (k, (s, l)) in saves.iter().zip(loads.iter()).enumerate() {
            if s.kind != l.kind {
                out.push(finding(
                    l.line,
                    format!(
                        "`Persist` for `{ty}`: save writes {} at position {} but load reads \
                         {} — the snapshot byte stream cannot round-trip",
                        describe(s),
                        k + 1,
                        describe(l),
                    ),
                ));
                diverged = true;
                break;
            }
        }
        if !diverged && saves.len() != loads.len() {
            if saves.len() > loads.len() {
                let extra = &saves[loads.len()];
                out.push(finding(
                    extra.line,
                    format!(
                        "`Persist` for `{ty}`: save writes {} but load never reads it — \
                         trailing snapshot bytes would be misparsed by the next field",
                        describe(extra),
                    ),
                ));
            } else {
                let extra = &loads[saves.len()];
                out.push(finding(
                    extra.line,
                    format!(
                        "`Persist` for `{ty}`: load reads {} that save never writes — \
                         load would consume the next object's bytes",
                        describe(extra),
                    ),
                ));
            }
        }
    }

    let save_names = name_order(&saves);
    let load_names = name_order(&loads);
    let shared: Vec<&str> = save_names
        .iter()
        .copied()
        .filter(|n| load_names.contains(n))
        .collect();
    if !shared.is_empty() {
        // Check 2: every named save field is read back.
        for s in &saves {
            if let Some(n) = &s.name {
                if !load_names.contains(&n.as_str())
                    && !out.iter().any(|f| f.message.contains(&format!("`{n}`")))
                {
                    out.push(finding(
                        s.line,
                        format!(
                            "`Persist` for `{ty}`: field `{n}` is written by save but never \
                             read by load — the byte-stability property suite would catch \
                             this only for inputs that exercise `{n}`",
                        ),
                    ));
                }
            }
        }
        // Check 3: shared names keep their order.
        let load_shared: Vec<&str> = load_names
            .iter()
            .copied()
            .filter(|n| shared.contains(n))
            .collect();
        if shared != load_shared {
            let (pos, (s, l)) = shared
                .iter()
                .zip(load_shared.iter())
                .enumerate()
                .find(|(_, (s, l))| s != l)
                .map(|(k, (s, l))| (k, (*s, *l)))
                .unwrap_or((0, (shared[0], load_shared[0])));
            out.push(finding(
                impl_line,
                format!(
                    "`Persist` for `{ty}`: save and load disagree on field order at \
                     position {} (save: `{s}`, load: `{l}`) — snapshot bytes land in the \
                     wrong fields",
                    pos + 1,
                ),
            ));
        }
    }
    out
}

/// Checks every production `impl Persist` in the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !crate::roles_for(&file.rel_path).maintain {
            continue; // same scope: library sources, tools exempt
        }
        let tokens = &file.lexed.tokens;
        for im in &ws.impls[fi] {
            if im.trait_name.as_deref() != Some("Persist")
                || scan::in_ranges(&file.test_ranges, im.line)
            {
                continue;
            }
            let ty = im.type_name.clone().unwrap_or_else(|| "?".to_string());
            let mut save_body = None;
            let mut load_body = None;
            for node in &ws.fns {
                if node.file != fi || !(im.body.0 <= node.sig.0 && node.sig.0 < im.body.1) {
                    continue;
                }
                match node.name.as_str() {
                    "save" => save_body = Some(node.body),
                    "load" => load_body = Some(node.body),
                    _ => {}
                }
            }
            let (Some(sb), Some(lb)) = (save_body, load_body) else {
                continue; // partial impls do not compile; not ours
            };
            out.extend(check_impl(&file.rel_path, &ty, tokens, sb, lb, im.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace::build(vec![FileIndex::new("crates/etf/src/x.rs", src)]);
        check(&ws)
    }

    const SYMMETRIC: &str = "impl Persist for DistEtf {\n\
         fn save(&self, w: &mut SnapshotWriter) {\n\
             w.put_u32(self.k);\n\
             w.put_u64(self.rounds);\n\
             self.seed.save(w);\n\
             w.put_usize(self.levels.len());\n\
         }\n\
         fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {\n\
             let k = r.take_u32()?;\n\
             let rounds = r.take_u64()?;\n\
             let seed = M61::load(r)?;\n\
             let blocks = r.take_usize()?;\n\
             Ok(DistEtf { k, rounds, seed, levels: rebuild(blocks) })\n\
         }\n\
     }";

    #[test]
    fn a_symmetric_impl_with_derived_writes_is_clean() {
        assert!(run(SYMMETRIC).is_empty(), "{:?}", run(SYMMETRIC));
    }

    #[test]
    fn a_dropped_load_read_names_the_field() {
        let src = SYMMETRIC.replace("let rounds = r.take_u64()?;\n", "");
        let f = run(&src);
        assert!(!f.is_empty(), "deleting a read must fire");
        assert!(
            f.iter().any(|x| x.message.contains("`rounds`")),
            "names the dropped field: {f:?}"
        );
    }

    #[test]
    fn swapped_load_order_is_reported() {
        let src = "impl Persist for Pair {\n\
             fn save(&self, w: &mut SnapshotWriter) {\n\
                 w.put_u32(self.a);\n\
                 w.put_u32(self.b);\n\
             }\n\
             fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {\n\
                 let b = r.take_u32()?;\n\
                 let a = r.take_u32()?;\n\
                 Ok(Pair { a, b })\n\
             }\n\
         }";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("field order"));
    }

    #[test]
    fn enum_match_impls_check_names_but_not_flat_kinds() {
        // The flattened kind streams interleave arms and differ
        // legitimately; the per-field name check still applies.
        let src = "impl Persist for Tester {\n\
             fn save(&self, w: &mut SnapshotWriter) {\n\
                 match self {\n\
                     Tester::Off => w.put_u8(0),\n\
                     Tester::On { alpha, beta } => {\n\
                         w.put_u8(1);\n\
                         alpha.save(w);\n\
                         w.put_u64(*beta);\n\
                     }\n\
                 }\n\
             }\n\
             fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {\n\
                 Ok(match r.take_u8()? {\n\
                     0 => Tester::Off,\n\
                     _ => Tester::On { alpha: M61::load(r)?, beta: r.take_u64()? },\n\
                 })\n\
             }\n\
         }";
        assert!(run(src).is_empty(), "{:?}", run(src));
        let broken = src.replace("beta: r.take_u64()?", "beta: fixed_beta()");
        let f = run(&broken);
        assert!(f.iter().any(|x| x.message.contains("`beta`")), "{f:?}");
    }

    #[test]
    fn turbofish_loads_recover_their_binding_names() {
        // Mirrors the real `DistEtf`/`Fingerprint` impls: two-parameter
        // turbofish paths (with a comma inside the generics) and a
        // struct-literal key in front of a turbofish path.
        let src = "impl Persist for DistEtf {\n\
             fn save(&self, w: &mut SnapshotWriter) {\n\
                 self.shards.save(w);\n\
                 self.family.save(w);\n\
             }\n\
             fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {\n\
                 let shards = BTreeMap::<TourId, Shard>::load(r)?;\n\
                 Ok(DistEtf { shards, family: Arc::<FingerprintFamily>::load(r)? })\n\
             }\n\
         }";
        assert!(run(src).is_empty(), "{:?}", run(src));
        let broken = src.replace("let shards = BTreeMap::<TourId, Shard>::load(r)?;\n", "");
        let f = run(&broken);
        assert!(f.iter().any(|x| x.message.contains("`shards`")), "{f:?}");
    }

    #[test]
    fn renamed_locals_skip_name_checks_but_keep_kinds() {
        let src = "impl Persist for M61 {\n\
             fn save(&self, w: &mut SnapshotWriter) { w.put_u64(self.0); }\n\
             fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {\n\
                 let v = r.take_u64()?;\n\
                 Ok(M61(v))\n\
             }\n\
         }";
        assert!(run(src).is_empty());
        let broken = src.replace("take_u64", "take_u32");
        assert_eq!(run(&broken).len(), 1, "kind mismatch still caught");
    }
}
