//! Rule `io-hygiene`: host file I/O is confined to the snapshot
//! crate.
//!
//! Durability is `mpc-snapshot`'s whole job: every byte that reaches
//! disk goes through its checksummed, versioned container, and
//! `Session::checkpoint` is the one sanctioned write path. A stray
//! `std::fs`/`std::io` call anywhere else is either a second,
//! unversioned persistence path (state that restore would silently
//! drop) or a hidden host dependency in code that must stay a pure
//! function of its seeds. Tool crates (`mpc-bench`, `mpc-lint`) and
//! test/bench/example code are exempt by scope.

use super::{find_seq, FileCtx};
use crate::report::Finding;
use crate::scan;
use crate::RULE_IO;
use std::collections::BTreeSet;

/// Checks one library source file for `std::fs` / `std::io` paths.
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    // One finding per (line, module) even if a line repeats it.
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let tokens = &ctx.lexed.tokens;
    for module in ["fs", "io"] {
        for i in find_seq(tokens, (0, tokens.len()), &["std", ":", ":", module]) {
            let line = tokens[i].line;
            if scan::in_ranges(ctx.test_ranges, line) {
                continue;
            }
            if seen.insert((line, module)) {
                out.push(Finding {
                    rule: RULE_IO,
                    file: ctx.rel_path.to_string(),
                    line,
                    message: format!(
                        "`std::{module}` in a library crate — host I/O is confined to \
                         crates/mpc-snapshot (the checksummed snapshot container) and the \
                         tool crates; persist through `Session::checkpoint` instead"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel_path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path,
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    #[test]
    fn flags_fs_and_io_paths_once_per_line() {
        let src = "use std::fs::File;\nfn f() -> std::io::Result<()> { std::io::stdout(); Ok(()) }";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2, "fs on line 1, io once on line 2: {f:?}");
        assert!(f[0].message.contains("std::fs"));
        assert!(f[1].message.contains("std::io"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::fs;\n    fn t() { let _ = std::io::sink(); }\n}";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unrelated_idents_pass() {
        let src = "fn f(fs: u32, io: u32) -> u32 { fs + io }\nmod io { pub fn g() {} }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
