//! Rule `unsafe-hygiene`: `unsafe` is confined to an explicit
//! allowlist, and every use carries a `// SAFETY:` argument.
//!
//! The workspace has exactly two modules with a legitimate need for
//! `unsafe` — the work-stealing executor (`crates/mpc/src/executor.rs`),
//! whose lifetime-erasure and disjoint-claim tricks are documented
//! and runtime-audited, and the sketch arena's SIMD kernel tier
//! (`crates/sketch/src/kernels/`), whose `#[target_feature]`
//! intrinsics are inherently unsafe to call and are gated behind
//! runtime CPU detection. Everywhere else `unsafe` is banned outright
//! (and statically excluded via `#![forbid(unsafe_code)]`, which this
//! rule also verifies on every crate root except `mpc-sim`'s and
//! `mpc-sketch`'s — the sketch root instead carries
//! `#![deny(unsafe_code)]`, verified by [`check_deny`], because
//! `forbid` cannot be overridden by the kernels' module-level allows).

use super::FileCtx;
use crate::report::Finding;
use crate::RULE_UNSAFE;

/// The only places allowed to contain `unsafe` code. An entry ending
/// in `/` allowlists every file under that directory; any other entry
/// names a single file exactly.
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/mpc/src/executor.rs", "crates/sketch/src/kernels/"];

/// Whether `rel_path` falls inside [`UNSAFE_ALLOWLIST`].
pub fn is_allowlisted(rel_path: &str) -> bool {
    UNSAFE_ALLOWLIST.iter().any(|entry| {
        if let Some(dir) = entry.strip_suffix('/') {
            rel_path
                .strip_prefix(dir)
                .is_some_and(|rest| rest.starts_with('/'))
        } else {
            rel_path == *entry
        }
    })
}

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (comment blocks directly above the statement count).
const SAFETY_LOOKBACK: u32 = 8;

/// Checks one file for unsafe placement and SAFETY comments.
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let allowed = is_allowlisted(ctx.rel_path);
    for t in &ctx.lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`unsafe` outside the reviewed allowlist ({}) — extend the \
                     allowlist deliberately or find a safe formulation",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_LOOKBACK);
        let documented = ctx
            .lexed
            .line_comments
            .iter()
            .any(|(l, text)| *l >= lo && *l <= t.line && text.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_LOOKBACK} lines — every unsafe block must argue its soundness \
                     in place"
                ),
            });
        }
    }
    out
}

/// Verifies a crate-root `#![<lint_level>(unsafe_code)]` attribute and
/// returns a finding carrying `message` when it is absent.
fn check_opt_out(ctx: &FileCtx, lint_level: &str, message: &str) -> Option<Finding> {
    let hit = super::find_seq(
        &ctx.lexed.tokens,
        (0, ctx.lexed.tokens.len()),
        &["#", "!", "[", lint_level, "(", "unsafe_code", ")", "]"],
    );
    if hit.is_empty() {
        Some(Finding {
            rule: RULE_UNSAFE,
            file: ctx.rel_path.to_string(),
            line: 1,
            message: message.to_string(),
        })
    } else {
        None
    }
}

/// Verifies that a crate root opts out of unsafe code entirely.
/// Returns a finding when `#![forbid(unsafe_code)]` is absent.
pub fn check_forbid(ctx: &FileCtx) -> Option<Finding> {
    check_opt_out(
        ctx,
        "forbid",
        "crate root is missing `#![forbid(unsafe_code)]` — every crate except mpc-sim and \
         mpc-sketch forbids unsafe at the compiler level",
    )
}

/// Verifies that a crate root denies unsafe code by default, the
/// weakest compiler-level opt-out that module-level allows (the SIMD
/// kernels) can still override. Returns a finding when
/// `#![deny(unsafe_code)]` is absent.
pub fn check_deny(ctx: &FileCtx) -> Option<Finding> {
    check_opt_out(
        ctx,
        "deny",
        "crate root is missing `#![deny(unsafe_code)]` — the sketch crate must deny unsafe \
         by default so only the kernels' explicit module-level allows escape it",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path: path,
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    #[test]
    fn allowlist_matches_files_exactly_and_directories_by_prefix() {
        assert!(is_allowlisted("crates/mpc/src/executor.rs"));
        assert!(is_allowlisted("crates/sketch/src/kernels/sse2.rs"));
        assert!(is_allowlisted("crates/sketch/src/kernels/mod.rs"));
        // An exact-file entry does not allowlist its siblings, and a
        // directory entry does not match lookalike directory names.
        assert!(!is_allowlisted("crates/mpc/src/executor2.rs"));
        assert!(!is_allowlisted("crates/mpc/src/context.rs"));
        assert!(!is_allowlisted("crates/sketch/src/kernels.rs"));
        assert!(!is_allowlisted("crates/sketch/src/kernels_extra/x.rs"));
        assert!(!is_allowlisted("crates/sketch/src/arena.rs"));
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let f = run("crates/core/src/session.rs", "fn f() { unsafe { g() } }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("allowlist"));
        let f = run("crates/sketch/src/arena.rs", "fn f() { unsafe { g() } }");
        assert_eq!(f.len(), 1, "sketch outside kernels/ stays banned");
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let dirty = "fn f() {\n    let x = unsafe { g() };\n}";
        let clean = "fn f() {\n    // SAFETY: g is sound here because reasons.\n    let x = unsafe { g() };\n}";
        for path in [
            "crates/mpc/src/executor.rs",
            "crates/sketch/src/kernels/avx2.rs",
        ] {
            let f = run(path, dirty);
            assert_eq!(f.len(), 1, "{path}");
            assert!(f[0].message.contains("SAFETY"), "{path}");
            assert!(run(path, clean).is_empty(), "{path}");
        }
    }

    fn opt_out_ctx(src: &str) -> (crate::lexer::Lexed, &'static str) {
        (lex(src), "crates/graph/src/lib.rs")
    }

    #[test]
    fn forbid_attribute_is_required() {
        let (lexed, rel_path) = opt_out_ctx("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path,
            lexed: &lexed,
            test_ranges: &[],
        };
        assert!(check_forbid(&ctx).is_none());
        let (lexed, rel_path) = opt_out_ctx("//! docs\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path,
            lexed: &lexed,
            test_ranges: &[],
        };
        assert!(check_forbid(&ctx).is_some());
    }

    #[test]
    fn deny_attribute_check_accepts_deny_but_not_forbid() {
        let (lexed, rel_path) = opt_out_ctx("//! docs\n#![deny(unsafe_code)]\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path,
            lexed: &lexed,
            test_ranges: &[],
        };
        assert!(check_deny(&ctx).is_none());
        // `forbid` is not `deny`: the sketch root pairing with
        // module-level allows would not even compile under forbid, so
        // the check looks for the exact attribute.
        let (lexed, rel_path) = opt_out_ctx("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path,
            lexed: &lexed,
            test_ranges: &[],
        };
        let f = check_deny(&ctx).expect("forbid does not satisfy the deny check");
        assert!(f.message.contains("deny(unsafe_code)"));
    }
}
