//! Rule `unsafe-hygiene`: `unsafe` is confined to the executor, and
//! every use carries a `// SAFETY:` argument.
//!
//! The workspace has exactly one module with a legitimate need for
//! `unsafe` — the work-stealing executor (`crates/mpc/src/executor.rs`),
//! whose lifetime-erasure and disjoint-claim tricks are documented
//! and runtime-audited. Everywhere else `unsafe` is banned outright
//! (and statically excluded via `#![forbid(unsafe_code)]`, which this
//! rule also verifies on every crate root except `mpc-sim`).

use super::FileCtx;
use crate::report::Finding;
use crate::RULE_UNSAFE;

/// The only file allowed to contain `unsafe` code.
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/mpc/src/executor.rs"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (comment blocks directly above the statement count).
const SAFETY_LOOKBACK: u32 = 8;

/// Checks one file for unsafe placement and SAFETY comments.
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let allowed = UNSAFE_ALLOWLIST.contains(&ctx.rel_path);
    for t in &ctx.lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`unsafe` outside the executor allowlist ({}) — add the crate to \
                     the reviewed allowlist or find a safe formulation",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_LOOKBACK);
        let documented = ctx
            .lexed
            .line_comments
            .iter()
            .any(|(l, text)| *l >= lo && *l <= t.line && text.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: RULE_UNSAFE,
                file: ctx.rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding \
                     {SAFETY_LOOKBACK} lines — every unsafe block must argue its soundness \
                     in place"
                ),
            });
        }
    }
    out
}

/// Verifies that a crate root opts out of unsafe code entirely.
/// Returns a finding when `#![forbid(unsafe_code)]` is absent.
pub fn check_forbid(ctx: &FileCtx) -> Option<Finding> {
    let hit = super::find_seq(
        &ctx.lexed.tokens,
        (0, ctx.lexed.tokens.len()),
        &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
    );
    if hit.is_empty() {
        Some(Finding {
            rule: RULE_UNSAFE,
            file: ctx.rel_path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]` — every crate except \
                      mpc-sim forbids unsafe at the compiler level"
                .to_string(),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path: path,
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    #[test]
    fn unsafe_outside_executor_is_flagged() {
        let f = run("crates/core/src/session.rs", "fn f() { unsafe { g() } }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("allowlist"));
    }

    #[test]
    fn executor_unsafe_needs_safety_comment() {
        let dirty = "fn f() {\n    let x = unsafe { g() };\n}";
        let f = run("crates/mpc/src/executor.rs", dirty);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));

        let clean = "fn f() {\n    // SAFETY: g is sound here because reasons.\n    let x = unsafe { g() };\n}";
        assert!(run("crates/mpc/src/executor.rs", clean).is_empty());
    }

    #[test]
    fn forbid_attribute_is_required() {
        let lexed = lex("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path: "crates/graph/src/lib.rs",
            lexed: &lexed,
            test_ranges: &[],
        };
        assert!(check_forbid(&ctx).is_none());
        let lexed = lex("//! docs\npub fn f() {}\n");
        let ctx = FileCtx {
            rel_path: "crates/graph/src/lib.rs",
            lexed: &lexed,
            test_ranges: &[],
        };
        assert!(check_forbid(&ctx).is_some());
    }
}
