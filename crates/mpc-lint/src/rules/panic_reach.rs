//! Rule `panic-reachability`: the transitive closure of
//! `no-panic-hot-path`.
//!
//! The body-local rule bans panicking constructs *inside* hot-path
//! bodies, but a hot path that delegates to a helper that unwraps two
//! calls deep is exactly as broken — a worker lane loses the branch
//! instead of returning a typed error — and the body rule cannot see
//! it. This rule walks the call graph from every hot root
//! (`apply_batch`, `answer`, the arena merge/sample kernels, and
//! everything in the SIMD kernel directory) and reports each call
//! edge into a function whose transitive effect summary says it can
//! panic, with the shortest witness chain printed so the fix is
//! obvious.
//!
//! Suppression is site-anchored: a justified
//! `// lint: allow(panic-reachability): …` **at the panic site**
//! (typically a documented precondition assert, e.g. "# Panics"
//! API contracts) removes that site from the effect summaries — one
//! justification where the invariant lives, not one per hot caller —
//! while any other, unallowed site in the same function still
//! propagates and prints its own witness chain.

use crate::graph::Workspace;
use crate::report::Finding;
use crate::rules::panics::HOT_FNS;
use crate::summary::{Effect, Summaries};
use crate::RULE_PANIC_REACH;

/// Whether `rel_path` is inside the SIMD kernel directory, whose
/// functions are hot roots wholesale.
pub(crate) fn in_kernels_dir(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sketch/src/kernels/")
}

/// Whether workspace function `f` is a hot root for reachability.
pub(crate) fn is_hot_root(ws: &Workspace, f: usize) -> bool {
    let node = &ws.fns[f];
    if node.in_test {
        return false;
    }
    let path = ws.files[node.file].rel_path.as_str();
    let roles = crate::roles_for(path);
    if !roles.panics {
        return false;
    }
    HOT_FNS.contains(&node.name.as_str()) || in_kernels_dir(path)
}

/// Checks every hot root's call edges against the panic summaries.
pub fn check(ws: &Workspace, sums: &Summaries) -> Vec<Finding> {
    let mut out = Vec::new();
    for root in 0..ws.fns.len() {
        if !is_hot_root(ws, root) {
            continue;
        }
        // One finding per distinct panicking callee: the first call
        // site is the anchor, the chain names the rest.
        let mut reported: Vec<usize> = Vec::new();
        for call in &ws.calls[root] {
            if !sums.effects[call.callee].panics || reported.contains(&call.callee) {
                continue;
            }
            reported.push(call.callee);
            let Some((chain, site)) = sums.chain(ws, call.callee, Effect::Panic) else {
                continue; // effect bit without a witness: stale edge
            };
            let mut full = vec![root];
            full.extend(chain);
            let site_file = &ws.files[ws.fns[*full.last().unwrap()].file].rel_path;
            out.push(Finding {
                rule: RULE_PANIC_REACH,
                file: ws.files[ws.fns[root].file].rel_path.clone(),
                line: call.line,
                message: format!(
                    "hot path `{}` can reach `{}` through {} (panic site {}:{}) — every \
                     function on this chain must surface failures as errors, not aborts",
                    ws.fns[root].name,
                    site.what,
                    sums.render_chain(ws, &full),
                    site_file,
                    site.line,
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;
    use crate::summary;

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace::build(vec![FileIndex::new("crates/core/src/x.rs", src)]);
        let sums = summary::compute(&ws);
        check(&ws, &sums)
    }

    #[test]
    fn two_call_deep_panic_is_reported_with_chain() {
        let src = "pub fn apply_batch(xs: &[u32]) -> u32 { stage(xs) }\n\
                   fn stage(xs: &[u32]) -> u32 { pick(xs) }\n\
                   fn pick(xs: &[u32]) -> u32 { *xs.first().unwrap() }";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("apply_batch -> stage -> pick"));
        assert!(f[0].message.contains(".unwrap()"));
    }

    #[test]
    fn a_justified_allow_at_the_panic_site_silences_every_chain() {
        let src = "pub fn apply_batch(xs: &[u32]) -> u32 { stage(xs) }\n\
                   pub fn answer(xs: &[u32]) -> u32 { stage(xs) }\n\
                   fn stage(xs: &[u32]) -> u32 {\n\
                       // lint: allow(panic-reachability): documented precondition, callers check\n\
                       assert!(!xs.is_empty());\n\
                       xs[0]\n\
                   }";
        assert!(run(src).is_empty(), "{:?}", run(src));
        // An unjustified allow does not suppress.
        let bare = src.replace(": documented precondition, callers check", "");
        assert_eq!(run(&bare).len(), 2, "both roots report the chain");
    }

    #[test]
    fn local_panics_are_left_to_the_body_rule() {
        let src = "pub fn answer(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run(src).is_empty(), "body rule owns local sites");
    }

    #[test]
    fn clean_helpers_and_cold_callers_are_fine() {
        let src = "pub fn apply_batch(xs: &[u32]) -> u32 { total(xs) }\n\
                   fn total(xs: &[u32]) -> u32 { xs.iter().sum() }\n\
                   pub fn setup(xs: &[u32]) -> u32 { risky(xs) }\n\
                   fn risky(xs: &[u32]) -> u32 { xs[0] + panic_on_empty(xs) }\n\
                   fn panic_on_empty(xs: &[u32]) -> u32 { assert!(!xs.is_empty()); 0 }";
        assert!(run(src).is_empty(), "setup is not a hot root");
    }
}
