//! Rule `kernel-parity`: the three SIMD kernel tiers stay op-for-op
//! interchangeable.
//!
//! `KernelKind` dispatches each op to `portable`, `sse2`, or `avx2`
//! by tier; the bit-identity contract only means anything if every op
//! *exists* in every tier with the same shape. This rule compares the
//! visible (`pub`/`pub(crate)`) functions of the three tier files:
//! any op defined in at least two tiers must exist in all three with
//! token-identical signatures (modulo the `unsafe` that
//! `#[target_feature]` forces on the intrinsic tiers, which sits
//! outside the `fn … (` span compared here). Private helpers
//! (`m61_add_lanes`, carry propagation) are tier-local by design and
//! exempt. Additionally, every visible SSE2/AVX2 op must *name its
//! scalar reference* — `portable::<op>` in the body (tail delegation)
//! or `portable::<op>` / `KernelKind::<op>` in its doc comment — so
//! the behavioral contract is navigable from the intrinsics. This is
//! the static twin of the tier bit-identity property tests.

use crate::graph::Workspace;
use crate::report::Finding;
use crate::rules::find_seq;
use crate::RULE_KERNEL_PARITY;

/// The three tier files, by basename, in reporting order.
const TIERS: &[&str] = &["portable.rs", "sse2.rs", "avx2.rs"];

/// The kernel directory all three tiers live in.
const KERNELS_DIR: &str = "crates/sketch/src/kernels/";

/// Joined token text of a signature range, skipping the `fn` keyword
/// and the name (so `unsafe`/`pub(crate)` prefixes are outside, and
/// parameter lists + return types are compared exactly).
fn sig_text(ws: &Workspace, f: usize) -> String {
    let node = &ws.fns[f];
    let tokens = &ws.files[node.file].lexed.tokens;
    let span = &tokens[node.sig.0 + 2..node.sig.1];
    let mut texts: Vec<String> = Vec::with_capacity(span.len());
    for (k, t) in span.iter().enumerate() {
        // Rustfmt's trailing comma before `)` is layout, not shape —
        // a one-line and a broken-across-lines list compare equal.
        if t.is_punct(',') && span.get(k + 1).is_some_and(|n| n.is_punct(')')) {
            continue;
        }
        texts.push(match &t.kind {
            crate::lexer::TokenKind::Ident(s) => s.clone(),
            crate::lexer::TokenKind::Punct(c) => c.to_string(),
            crate::lexer::TokenKind::Literal => "<lit>".to_string(),
        });
    }
    texts.join(" ")
}

/// Whether the SSE2/AVX2 op at fn index `f` names its scalar
/// reference: `portable::<name>` in the body, or `portable::<name>` /
/// `KernelKind::<name>` in a comment within the 14 lines above the
/// `fn` (its doc block).
fn names_scalar_reference(ws: &Workspace, f: usize) -> bool {
    let node = &ws.fns[f];
    let file = &ws.files[node.file];
    let tokens = &file.lexed.tokens;
    if !find_seq(tokens, node.body, &["portable", ":", ":", &node.name]).is_empty() {
        return true;
    }
    let scalar_ref = format!("portable::{}", node.name);
    let dispatch_ref = format!("KernelKind::{}", node.name);
    file.lexed.line_comments.iter().any(|(line, text)| {
        *line < node.line
            && node.line - *line <= 14
            && (text.contains(&scalar_ref) || text.contains(&dispatch_ref))
    })
}

/// Compares the tier files present in the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    // tier index (0..3) → file index, where present.
    let mut tier_files: [Option<usize>; 3] = [None; 3];
    for (fi, file) in ws.files.iter().enumerate() {
        if let Some(base) = file.rel_path.strip_prefix(KERNELS_DIR) {
            if let Some(t) = TIERS.iter().position(|n| *n == base) {
                tier_files[t] = Some(fi);
            }
        }
    }
    let present: Vec<usize> = (0..3).filter(|&t| tier_files[t].is_some()).collect();
    if present.len() < 2 {
        return Vec::new(); // nothing to compare (single-file lints)
    }

    // Visible ops per tier: name → fn index.
    let mut ops: Vec<Vec<(String, usize)>> = vec![Vec::new(); 3];
    for &t in &present {
        let fi = tier_files[t].unwrap();
        for (i, node) in ws.fns.iter().enumerate() {
            if node.file == fi && !node.in_test && node.visible {
                ops[t].push((node.name.clone(), i));
            }
        }
    }

    let mut out = Vec::new();
    // Every op visible in ≥ 2 tiers must exist in all present tiers
    // with the same signature.
    let mut all_names: Vec<&str> = Vec::new();
    for &t in &present {
        for (n, _) in &ops[t] {
            if !all_names.contains(&n.as_str()) {
                all_names.push(n);
            }
        }
    }
    for name in all_names {
        let holders: Vec<usize> = present
            .iter()
            .copied()
            .filter(|&t| ops[t].iter().any(|(n, _)| n == name))
            .collect();
        if holders.len() < 2 {
            continue; // tier-local helper (e.g. portable::m61_add_raw)
        }
        for &t in &present {
            let Some(&(_, f0)) = ops[holders[0]].iter().find(|(n, _)| n == name) else {
                continue;
            };
            match ops[t].iter().find(|(n, _)| n == name) {
                None => out.push(Finding {
                    rule: RULE_KERNEL_PARITY,
                    file: ws.files[tier_files[t].unwrap()].rel_path.clone(),
                    line: 1,
                    message: format!(
                        "kernel op `{name}` exists in {} but not in this tier — every \
                         dispatched op must be implemented at all tiers (bit-identity \
                         contract)",
                        TIERS[holders[0]],
                    ),
                }),
                Some(&(_, f)) => {
                    if sig_text(ws, f) != sig_text(ws, f0) {
                        out.push(Finding {
                            rule: RULE_KERNEL_PARITY,
                            file: ws.files[ws.fns[f].file].rel_path.clone(),
                            line: ws.fns[f].line,
                            message: format!(
                                "kernel op `{name}` has a different signature here than in \
                                 {} — tiers must be call-compatible",
                                TIERS[holders[0]],
                            ),
                        });
                    }
                }
            }
        }
    }

    // SSE2/AVX2 ops must name their scalar reference.
    for &t in &present {
        if TIERS[t] == "portable.rs" {
            continue;
        }
        for (name, f) in &ops[t] {
            if !names_scalar_reference(ws, *f) {
                out.push(Finding {
                    rule: RULE_KERNEL_PARITY,
                    file: ws.files[ws.fns[*f].file].rel_path.clone(),
                    line: ws.fns[*f].line,
                    message: format!(
                        "intrinsic kernel op `{name}` does not name its scalar reference — \
                         link `portable::{name}` or `KernelKind::{name}` in its docs (or \
                         delegate the tail to `portable::{name}`) so the behavioral \
                         contract is navigable",
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| FileIndex::new(&format!("{KERNELS_DIR}{p}"), s))
                .collect(),
        );
        check(&ws)
    }

    const CLEAN_PORTABLE: &str = "pub(crate) fn fold(dst: &mut [u64], src: &[u64]) {}\n\
                                  pub(crate) fn scan(xs: &[u64]) -> Option<usize> { None }\n\
                                  pub(crate) fn helper_only_here(x: u64) -> u64 { x }";
    const CLEAN_SSE2: &str = "/// Mirrors [`fold`](super::KernelKind::fold).\n\
                              pub(crate) unsafe fn fold(dst: &mut [u64], src: &[u64]) {}\n\
                              pub(crate) unsafe fn scan(xs: &[u64]) -> Option<usize> {\n\
                                  portable::scan(xs)\n\
                              }";
    const CLEAN_AVX2: &str = "/// See [`fold`](super::KernelKind::fold).\n\
                              pub(crate) unsafe fn fold(dst: &mut [u64], src: &[u64]) {}\n\
                              /// Wide scan; reference: portable::scan.\n\
                              pub(crate) unsafe fn scan(xs: &[u64]) -> Option<usize> { None }";

    #[test]
    fn matching_tiers_with_references_are_clean() {
        let f = run(&[
            ("portable.rs", CLEAN_PORTABLE),
            ("sse2.rs", CLEAN_SSE2),
            ("avx2.rs", CLEAN_AVX2),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_ops_signature_drift_and_unreferenced_intrinsics_fire() {
        let avx2_missing_scan = "/// See [`fold`](super::KernelKind::fold).\n\
                                 pub(crate) unsafe fn fold(dst: &mut [u64], src: &[i64]) {}";
        let f = run(&[
            ("portable.rs", CLEAN_PORTABLE),
            ("sse2.rs", "pub(crate) unsafe fn fold(dst: &mut [u64], src: &[u64]) {}\n\
                         pub(crate) unsafe fn scan(xs: &[u64]) -> Option<usize> { None }"),
            ("avx2.rs", avx2_missing_scan),
        ]);
        // avx2: scan missing + fold signature drift; sse2: fold and
        // scan never name their scalar reference.
        assert!(
            f.iter()
                .any(|x| x.file.ends_with("avx2.rs") && x.message.contains("`scan`")),
            "{f:?}"
        );
        assert!(f
            .iter()
            .any(|x| x.file.ends_with("avx2.rs") && x.message.contains("different signature")));
        assert_eq!(
            f.iter()
                .filter(|x| x.file.ends_with("sse2.rs")
                    && x.message.contains("scalar reference"))
                .count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn a_trailing_comma_in_a_multiline_signature_is_not_drift() {
        let f = run(&[
            ("portable.rs", "pub(crate) fn scan(vs: &[i64], below: usize) -> Option<usize> { None }"),
            (
                "avx2.rs",
                "/// Wide scan; reference: portable::scan.\n\
                 pub(crate) unsafe fn scan(\n    vs: &[i64],\n    below: usize,\n) -> Option<usize> { None }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn private_helpers_and_partial_workspaces_are_exempt() {
        assert!(run(&[("portable.rs", CLEAN_PORTABLE)]).is_empty());
        let f = run(&[
            ("portable.rs", "pub(crate) fn fold(x: u64) -> u64 { x }\nfn local(x: u64) -> u64 { x }"),
            ("sse2.rs", "/// See portable::fold for the reference.\n\
                         pub(crate) unsafe fn fold(x: u64) -> u64 { x }\nfn local2(x: u64) -> u64 { x }"),
            ("avx2.rs", "/// See portable::fold for the reference.\n\
                         pub(crate) unsafe fn fold(x: u64) -> u64 { x }"),
        ]);
        assert!(f.is_empty(), "private helpers are tier-local: {f:?}");
    }
}
