//! Rule `alloc-hot-path`: no heap allocation reachable from the
//! kernel folds or the interleaved merged-copy fold.
//!
//! The SIMD kernel tiers and `merge_copy_into` sit inside the
//! converge-cast inner loop; an allocation there shows up directly in
//! the per-merge latency the E20 soak and `sketch/merged_copy`
//! microbench track. Scratch buffers are preallocated by design
//! (`new_scratch`, the SoA columns), so any `Vec::new`/`vec!`/
//! `collect()`/`to_vec()`/… in a kernel body — or in anything a
//! kernel body calls — is either a regression or needs an explicit
//! `// lint: allow(alloc-hot-path): …` justification at the reported
//! line. The stealing merge (`merge_copy_into_stealing`) is *not* a
//! root: its span partials are allocated once per steal scope on
//! purpose.

use crate::graph::Workspace;
use crate::report::Finding;
use crate::rules::panic_reach::in_kernels_dir;
use crate::summary::{Effect, Summaries};
use crate::RULE_ALLOC_HOT;

/// Function names that are allocation-free roots wherever they are
/// defined (the serial interleaved fold of the converge-cast loop).
const ROOT_FNS: &[&str] = &["merge_copy_into"];

/// Whether workspace function `f` is an allocation-free root.
fn is_alloc_root(ws: &Workspace, f: usize) -> bool {
    let node = &ws.fns[f];
    if node.in_test {
        return false;
    }
    let path = ws.files[node.file].rel_path.as_str();
    if !crate::roles_for(path).panics {
        return false; // tool crates / tests are out of scope
    }
    ROOT_FNS.contains(&node.name.as_str()) || in_kernels_dir(path)
}

/// Reports local allocations in root bodies and call edges into
/// transitively allocating helpers.
pub fn check(ws: &Workspace, sums: &Summaries) -> Vec<Finding> {
    let mut out = Vec::new();
    for root in 0..ws.fns.len() {
        if !is_alloc_root(ws, root) {
            continue;
        }
        let file = ws.files[ws.fns[root].file].rel_path.clone();
        for site in &sums.facts[root].alloc_sites {
            out.push(Finding {
                rule: RULE_ALLOC_HOT,
                file: file.clone(),
                line: site.line,
                message: format!(
                    "`{}` allocates (`{}`) inside the kernel-adjacent hot path — use the \
                     preallocated scratch, or justify with `// lint: allow(alloc-hot-path): …`",
                    ws.fns[root].name, site.what,
                ),
            });
        }
        let mut reported: Vec<usize> = Vec::new();
        for call in &ws.calls[root] {
            if !sums.effects[call.callee].allocates || reported.contains(&call.callee) {
                continue;
            }
            reported.push(call.callee);
            let Some((chain, site)) = sums.chain(ws, call.callee, Effect::Alloc) else {
                continue;
            };
            let mut full = vec![root];
            full.extend(chain);
            let site_file = &ws.files[ws.fns[*full.last().unwrap()].file].rel_path;
            out.push(Finding {
                rule: RULE_ALLOC_HOT,
                file: file.clone(),
                line: call.line,
                message: format!(
                    "`{}` reaches a heap allocation (`{}`) through {} (alloc site {}:{}) — \
                     kernel-adjacent paths run inside the converge-cast inner loop",
                    ws.fns[root].name,
                    site.what,
                    sums.render_chain(ws, &full),
                    site_file,
                    site.line,
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileIndex;
    use crate::summary;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| FileIndex::new(p, s))
                .collect(),
        );
        let sums = summary::compute(&ws);
        check(&ws, &sums)
    }

    #[test]
    fn local_and_transitive_allocations_in_roots_are_flagged() {
        let f = run(&[(
            "crates/sketch/src/arena.rs",
            "pub fn merge_copy_into(dst: &mut [u64], src: &[u64]) -> usize {\n\
                 let staged = stage(src);\n\
                 let direct: Vec<u64> = src.to_vec();\n\
                 staged.len() + direct.len()\n\
             }\n\
             fn stage(src: &[u64]) -> Vec<u64> { src.iter().copied().collect() }",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.line == 3 && x.message.contains(".to_vec()")));
        assert!(f
            .iter()
            .any(|x| x.line == 2 && x.message.contains("merge_copy_into -> stage")));
    }

    #[test]
    fn kernel_dir_fns_are_roots_but_stealing_merge_is_not() {
        let dirty = run(&[(
            "crates/sketch/src/kernels/portable.rs",
            "pub(crate) fn fold_cells(dst: &mut [u64]) { let t = vec![0u64; dst.len()]; }",
        )]);
        assert_eq!(dirty.len(), 1);
        let stealing = run(&[(
            "crates/sketch/src/arena.rs",
            "pub fn merge_copy_into_stealing(n: usize) -> Vec<u64> { vec![0; n] }",
        )]);
        assert!(stealing.is_empty(), "span partials allocate by design");
    }
}
