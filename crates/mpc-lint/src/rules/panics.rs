//! Rule `no-panic-hot-path`: the ingest and query hot paths must not
//! contain panicking constructs.
//!
//! The PR-3 de-panicking contract: `apply_batch` and `answer` return
//! `Result` and must surface failures as errors, never aborts — a
//! panic inside a worker lane is contained by the pool but shows up
//! as a lost branch, not a typed error. The sketch-arena merge and
//! converge-cast kernels are on the same list because they run inside
//! work-stealing scopes. `debug_assert!` (and friends) stay legal:
//! they vanish in release builds and are the documented way to state
//! invariants on these paths.

use super::{find_seq, FileCtx};
use crate::report::Finding;
use crate::scan;
use crate::RULE_NO_PANIC;

/// Function names whose bodies are hot paths.
pub const HOT_FNS: &[&str] = &[
    "apply_batch",
    "answer",
    "merge_into",
    "merge_into_stealing",
    "merge_copy_into",
    "merge_copy_into_stealing",
    "sample_merged",
    "sample_scratch",
    "converge_cast",
];

/// Macros banned in hot paths (`debug_assert!*` deliberately absent).
const BANNED_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods banned in hot paths (`unwrap_or*` are different
/// identifiers and stay legal).
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

/// Checks every hot-path function body in the file.
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let tokens = &ctx.lexed.tokens;
    for f in scan::functions(ctx.lexed) {
        if !HOT_FNS.contains(&f.name.as_str()) || scan::in_ranges(ctx.test_ranges, f.line) {
            continue;
        }
        for m in BANNED_METHODS {
            for hit in find_seq(tokens, f.body, &[".", m, "("]) {
                out.push(Finding {
                    rule: RULE_NO_PANIC,
                    file: ctx.rel_path.to_string(),
                    line: tokens[hit].line,
                    message: format!(
                        "`.{m}(..)` in hot path `{}` — this path is panic-free by contract \
                         (PR-3); surface the failure as an error instead",
                        f.name
                    ),
                });
            }
        }
        for m in BANNED_MACROS {
            for hit in find_seq(tokens, f.body, &[m, "!"]) {
                out.push(Finding {
                    rule: RULE_NO_PANIC,
                    file: ctx.rel_path.to_string(),
                    line: tokens[hit].line,
                    message: format!(
                        "`{m}!` in hot path `{}` — this path is panic-free by contract \
                         (PR-3); use `debug_assert!` for invariants or return an error",
                        f.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path: "crates/core/src/x.rs",
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    #[test]
    fn unwrap_in_apply_batch_is_flagged_but_unwrap_or_is_not() {
        let src =
            "fn apply_batch(&mut self) {\n    let a = x.unwrap();\n    let b = y.unwrap_or(0);\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn debug_assert_is_legal_assert_is_not() {
        let src = "fn answer(&self) {\n    debug_assert!(ok());\n    assert!(ok());\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`assert!`"));
    }

    #[test]
    fn cold_functions_and_test_code_may_panic() {
        let src = "fn setup() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn apply_batch() { panic!(\"in tests\"); }\n}";
        assert!(run(src).is_empty());
    }
}
