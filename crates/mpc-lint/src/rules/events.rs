//! Rule `event-completeness`: every mutating `MpcContext` primitive
//! must be mirrored in the `MpcEvent` record/replay machinery.
//!
//! The parallel executor runs maintainer branches against *forked*
//! contexts and reproduces their accounting on the master by
//! replaying each fork's event log. That round-trip is only exact if
//! three sets stay in lock-step:
//!
//! 1. every `&mut self` primitive of `MpcContext` records an
//!    `MpcEvent` (or delegates to one that does),
//! 2. every `MpcEvent` variant is recorded by some primitive,
//! 3. every `MpcEvent` variant has a dedicated arm in `replay_inner`
//!    (and the match has **no wildcard arm** that could silently
//!    swallow a new variant).
//!
//! A primitive missing any leg of the triangle makes parallel
//! accounting drift from serial accounting without any test noticing
//! until the equivalence suite happens to exercise it — this rule
//! fails the build instead, naming the primitive.

use super::{camel, find_seq, snake, FileCtx};
use crate::report::Finding;
use crate::scan;
use crate::RULE_EVENT;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that are part of the record/replay machinery itself (or
/// host-execution glue) and legitimately mutate without recording.
const INFRA_METHODS: &[&str] = &["record", "replay", "replay_inner", "take_log", "set_pool"];

/// Checks the accounting-context source (`crates/mpc/src/context.rs`
/// in the real workspace).
pub fn check(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let tokens = &ctx.lexed.tokens;
    let mk = |line: u32, message: String| Finding {
        rule: RULE_EVENT,
        file: ctx.rel_path.to_string(),
        line,
        message,
    };

    // --- leg 0: locate the three structures --------------------------
    let Some(variants) = enum_variants(ctx) else {
        out.push(mk(
            1,
            "no `enum MpcEvent` found in the context source".into(),
        ));
        return out;
    };
    let fns = scan::functions(ctx.lexed);
    let impl_methods: Vec<&scan::FnSpan> = scan::impls(ctx.lexed)
        .into_iter()
        .filter(|im| {
            let header: Vec<&str> = tokens[im.header.0..im.header.1]
                .iter()
                .filter_map(|t| t.ident())
                .collect();
            header == ["MpcContext"]
        })
        .flat_map(|im| {
            fns.iter()
                .filter(move |f| f.body.0 > im.body.0 && f.body.1 <= im.body.1)
                .collect::<Vec<_>>()
        })
        .collect();
    if impl_methods.is_empty() {
        out.push(mk(1, "no inherent `impl MpcContext` block found".into()));
        return out;
    }
    let Some(replay) = impl_methods.iter().find(|f| f.name == "replay_inner") else {
        out.push(mk(
            1,
            "no `fn replay_inner` found — recorded events have nowhere to be re-charged".into(),
        ));
        return out;
    };

    // --- leg 1: what does each mutating primitive record? ------------
    let mut recorded_by: BTreeMap<String, String> = BTreeMap::new(); // variant -> method
    let mut recording_methods: BTreeSet<String> = BTreeSet::new();
    for f in &impl_methods {
        for hit in find_seq(
            tokens,
            f.body,
            &["self", ".", "record", "(", "MpcEvent", ":", ":"],
        ) {
            if let Some(variant) = tokens.get(hit + 7).and_then(|t| t.ident()) {
                recorded_by
                    .entry(variant.to_string())
                    .or_insert_with(|| f.name.clone());
                recording_methods.insert(f.name.clone());
            }
        }
    }

    for f in &impl_methods {
        if !takes_mut_self(ctx, f) || INFRA_METHODS.contains(&f.name.as_str()) {
            continue;
        }
        if recording_methods.contains(&f.name) {
            continue;
        }
        // Delegators are fine: `alloc_vertex` charges through `alloc`.
        let delegates = recording_methods
            .iter()
            .any(|m| !find_seq(tokens, f.body, &["self", ".", m.as_str(), "("]).is_empty());
        if !delegates {
            out.push(mk(
                f.line,
                format!(
                    "mutating primitive `{}` records no MpcEvent — a parallel fork would \
                     silently drop its accounting on replay; record `MpcEvent::{}` (or \
                     delegate to a recording primitive)",
                    f.name,
                    camel(&f.name)
                ),
            ));
        }
    }

    // --- legs 2+3: every variant recorded and replayed ---------------
    let arm_variants: BTreeSet<String> = find_seq(tokens, replay.body, &["MpcEvent", ":", ":"])
        .into_iter()
        .filter_map(|hit| tokens.get(hit + 3).and_then(|t| t.ident()))
        .map(str::to_string)
        .collect();
    for (variant, line) in &variants {
        if !recorded_by.contains_key(variant) {
            out.push(mk(
                *line,
                format!(
                    "MpcEvent::{variant} is never recorded by any MpcContext primitive — \
                     dead variant or missing `self.record(...)` call in `{}`",
                    snake(variant)
                ),
            ));
        }
        if !arm_variants.contains(variant) {
            let primitive = recorded_by
                .get(variant)
                .cloned()
                .unwrap_or_else(|| snake(variant));
            out.push(mk(
                replay.line,
                format!(
                    "MpcEvent::{variant} has no match arm in `replay_inner` — primitive \
                     `{primitive}` would not be re-charged when a parallel branch's log is \
                     replayed, so parallel accounting would drift from serial"
                ),
            ));
        }
    }
    if !find_seq(tokens, replay.body, &["_", "=", ">"]).is_empty() {
        out.push(mk(
            replay.line,
            "`replay_inner` has a wildcard `_ =>` arm — it would silently swallow newly \
             added MpcEvent variants instead of forcing an explicit replay decision"
                .into(),
        ));
    }
    out
}

/// The `MpcEvent` variants with their lines, or `None` if the enum is
/// absent.
fn enum_variants(ctx: &FileCtx) -> Option<Vec<(String, u32)>> {
    let tokens = &ctx.lexed.tokens;
    let start = find_seq(tokens, (0, tokens.len()), &["enum", "MpcEvent", "{"])
        .into_iter()
        .next()?;
    let open = start + 2;
    let close = scan::matching_brace(tokens, open);
    let mut variants = Vec::new();
    let mut depth = 0i32; // paren/bracket/brace depth inside the body
    let mut expect_variant = true;
    for t in &tokens[(open + 1)..close] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                expect_variant = true;
            } else if expect_variant {
                if let Some(name) = t.ident() {
                    variants.push((name.to_string(), t.line));
                    expect_variant = false;
                }
            }
        }
    }
    Some(variants)
}

/// Whether the signature contains `&mut self`.
fn takes_mut_self(ctx: &FileCtx, f: &scan::FnSpan) -> bool {
    !find_seq(&ctx.lexed.tokens, f.sig, &["mut", "self"]).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ranges = scan::test_line_ranges(&lexed);
        check(&FileCtx {
            rel_path: "crates/mpc/src/context.rs",
            lexed: &lexed,
            test_ranges: &ranges,
        })
    }

    const CLEAN: &str = r#"
pub enum MpcEvent {
    Exchange(u64),
    Sort(u64),
}
impl MpcContext {
    pub fn exchange(&mut self, words: u64) {
        self.record(MpcEvent::Exchange(words));
    }
    pub fn sort(&mut self, words: u64) {
        self.record(MpcEvent::Sort(words));
    }
    pub fn exchange_twice(&mut self, words: u64) {
        self.exchange(words);
        self.exchange(words);
    }
    pub fn rounds(&self) -> u64 { 0 }
    fn record(&mut self, e: MpcEvent) {}
    fn replay_inner(&mut self, events: &[MpcEvent]) {
        for e in events {
            match e {
                MpcEvent::Exchange(w) => self.exchange(*w),
                MpcEvent::Sort(w) => self.sort(*w),
            }
        }
    }
}
"#;

    #[test]
    fn clean_context_passes() {
        assert!(run(CLEAN).is_empty(), "{:?}", run(CLEAN));
    }

    #[test]
    fn missing_replay_arm_names_the_primitive() {
        let src = CLEAN.replace("MpcEvent::Sort(w) => self.sort(*w),", "");
        let f = run(&src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("MpcEvent::Sort"));
        assert!(f[0].message.contains("`sort`"));
    }

    #[test]
    fn unrecorded_primitive_is_flagged() {
        let src = CLEAN.replace(
            "self.record(MpcEvent::Sort(words));",
            "let _ = words; // forgot to record",
        );
        let f = run(&src);
        assert!(
            f.iter()
                .any(|f| f.message.contains("`sort` records no MpcEvent")),
            "{f:?}"
        );
        // Sort is now also an orphaned variant with no replay source.
        assert!(f.iter().any(|f| f.message.contains("never recorded")));
    }

    #[test]
    fn wildcard_arm_is_flagged() {
        let src = CLEAN.replace(
            "MpcEvent::Sort(w) => self.sort(*w),",
            "MpcEvent::Sort(w) => self.sort(*w),\n                _ => {}",
        );
        let f = run(&src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wildcard"));
    }
}
