//! The workspace symbol table and call graph.
//!
//! Interprocedural rules (panic-reachability, query-charging,
//! alloc-hot-path) need to see *through* calls: a hot path that
//! delegates to a panicking helper is just as broken as one that
//! unwraps inline. This module indexes every function item in the
//! workspace — name, owning `impl` type, crate, visibility, body span
//! — and resolves call sites by name, the same clean-room way the
//! rest of the linter works: no `syn`, no type inference, just the
//! token stream plus the workspace's own naming conventions.
//!
//! # Resolution policy
//!
//! A call site resolves only to functions *defined in this
//! workspace*; `.push(..)`, `.iter()` and friends that match nothing
//! produce no edge. Candidates are ranked the way Rust's own name
//! lookup would find them:
//!
//! * `Type::name(..)` — functions owned by `impl Type`; `Self::`
//!   maps to the enclosing impl's type; a lowercase qualifier is
//!   treated as a module path and preferred to functions defined in a
//!   file of that name (`portable::fold_cells_soa`).
//! * `self.name(..)` — methods of the enclosing impl's type first.
//! * `.name(..)` on any other receiver — methods anywhere, same
//!   crate preferred, then `pub` methods across crates. Only
//!   functions with a `self` receiver qualify: dot syntax cannot
//!   dispatch to an associated function, so `counter.load(Ordering)`
//!   never resolves to a `Persist::load` constructor.
//! * bare `name(..)` — free functions, same crate preferred, then
//!   `pub` across crates. Uppercase bare calls are tuple-struct /
//!   enum-variant constructors, never function calls, and are
//!   skipped.
//!
//! Where several candidates survive ranking the edge goes to **all**
//! of them — reachability rules over-approximate rather than miss a
//! path. One exception narrows instead of widening: when the call
//! site's argument count matches *some* candidate's parameter count,
//! candidates with a different arity are dropped (`cfg.capacity()`
//! must not resolve to a one-argument builder setter of the same
//! name). If no candidate matches the computed arity — closures,
//! macros and shift operators can confuse the comma counter — the
//! filter backs off and every ranked candidate keeps its edge.

use crate::lexer::{Lexed, Token};
use crate::scan;
use std::collections::BTreeMap;

/// One lexed workspace file, ready for indexing.
pub struct FileIndex {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The lexed source.
    pub lexed: Lexed,
    /// `#[cfg(test)]`/`#[test]` line ranges.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileIndex {
    /// Lexes `source` as the file at `rel_path`.
    pub fn new(rel_path: &str, source: &str) -> Self {
        let lexed = crate::lexer::lex(source);
        let test_ranges = scan::test_line_ranges(&lexed);
        FileIndex {
            rel_path: rel_path.to_string(),
            lexed,
            test_ranges,
        }
    }
}

/// One function item in the workspace symbol table.
pub struct FnNode {
    /// The function name.
    pub name: String,
    /// The `impl` type that owns this method, if any.
    pub owner: Option<String>,
    /// The crate this function lives in (`crates/<k>/…` → `k`).
    pub krate: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with bare `pub` (visible across crates).
    pub cross_pub: bool,
    /// Declared with any `pub` marker, including `pub(crate)`.
    pub visible: bool,
    /// Token range of the signature (`fn` up to the body `{`).
    pub sig: (usize, usize),
    /// Parameter count, excluding any `self` receiver.
    pub arity: usize,
    /// Takes a `self` receiver (dot calls dispatch only to these).
    pub has_self: bool,
    /// Token range of the body, excluding the outer braces.
    pub body: (usize, usize),
    /// Defined inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// One `impl` block, with its trait and self-type names resolved.
pub struct ImplInfo {
    /// Trait being implemented (`impl Trait for T`), if any.
    pub trait_name: Option<String>,
    /// The self type `T` (first path segment).
    pub type_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token range of the body, excluding the outer braces.
    pub body: (usize, usize),
}

/// One resolved call edge out of a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the callee in [`Workspace::fns`].
    pub callee: usize,
    /// Token index of the callee-name token in the caller's file.
    pub token: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The indexed workspace: files, functions, impls, and call edges.
pub struct Workspace {
    /// Every indexed file.
    pub files: Vec<FileIndex>,
    /// Every function item, across all files.
    pub fns: Vec<FnNode>,
    /// `impl` blocks per file (parallel to [`Workspace::files`]).
    pub impls: Vec<Vec<ImplInfo>>,
    /// Resolved call edges per function (parallel to
    /// [`Workspace::fns`]).
    pub calls: Vec<Vec<CallSite>>,
}

/// Keywords that look like `name(` call sites but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "unsafe", "box", "await", "impl", "where", "pub", "use", "mod", "crate", "super", "mut",
    "ref", "dyn", "break", "continue", "struct", "enum", "union", "trait", "type", "static",
    "const", "self",
];

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> &str {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(rest)
    } else {
        // The facade (`src/lib.rs`) and stray roots.
        "mpc_stream"
    }
}

/// Extracts `(trait, type)` names from an `impl` header token range:
/// `impl<G> Maintain for ExactMsf<G>` → `(Some("Maintain"),
/// Some("ExactMsf"))`; `impl SketchArena` → `(None,
/// Some("SketchArena"))`.
fn impl_names(tokens: &[Token], header: (usize, usize)) -> (Option<String>, Option<String>) {
    let (mut i, hi) = header;
    // Skip leading generic parameters `<...>`.
    if i < hi && tokens[i].is_punct('<') {
        let mut depth = 0i32;
        while i < hi {
            if tokens[i].is_punct('<') && !(i > header.0 && tokens[i - 1].is_punct('-')) {
                depth += 1;
            } else if tokens[i].is_punct('>') && !(i > header.0 && tokens[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let idents: Vec<&str> = tokens[i..hi].iter().filter_map(|t| t.ident()).collect();
    if let Some(pos) = idents.iter().position(|s| *s == "for") {
        let trait_name = pos.checked_sub(1).map(|p| idents[p].to_string());
        let type_name = idents.get(pos + 1).map(|s| s.to_string());
        (trait_name, type_name)
    } else {
        (None, idents.first().map(|s| s.to_string()))
    }
}

/// Visibility of the tokens immediately before `fn` (at
/// `sig_start`): `(any pub marker, bare cross-crate pub)` —
/// `pub(crate)` and friends set only the first flag.
fn visibility(tokens: &[Token], sig_start: usize) -> (bool, bool) {
    let mut j = sig_start;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        let modifier = matches!(
            t.ident(),
            Some("unsafe" | "const" | "async" | "extern" | "default" | "crate" | "super" | "in")
        ) || t.is_punct('(')
            || t.is_punct(')')
            || matches!(t.kind, crate::lexer::TokenKind::Literal);
        if t.is_ident("pub") {
            return (true, !tokens.get(j + 1).is_some_and(|n| n.is_punct('(')));
        }
        if !modifier {
            return (false, false);
        }
    }
    (false, false)
}

/// Counts comma-separated items between the `(` at `open` and its
/// matching `)`, nesting-aware for `()[]{}<>` and closure pipes.
/// Returns `None` when the parens never close inside `hi`.
fn count_args(tokens: &[Token], open: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32; // () [] {}
    let mut angle = 0i32; // <>, clamped: `a < b` never closes
    let mut in_closure = false;
    let mut items = 0usize;
    let mut item_has_tokens = false;
    let mut i = open;
    while i < hi {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if item_has_tokens {
                    items += 1;
                }
                return Some(items);
            }
        } else if depth == 1 && angle == 0 {
            if t.is_punct('|') {
                in_closure = !in_closure;
            } else if t.is_punct('<') && !tokens.get(i + 1).is_some_and(|n| n.is_punct('-')) {
                angle += 1;
            } else if t.is_punct(',') && !in_closure {
                items += 1;
                item_has_tokens = false;
                i += 1;
                continue;
            }
        } else if depth == 1 && angle > 0 {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
                angle -= 1;
            }
        }
        if i > open && depth >= 1 {
            item_has_tokens = true;
        }
        i += 1;
    }
    None
}

/// Parameter count of the signature range (excluding a `self`
/// receiver) plus whether a receiver is present. Falls back to
/// `(usize::MAX, true)` — an arity that matches nothing, so the
/// filter backs off, and a receiver bit that keeps the function a
/// dot-call candidate — when the parameter list cannot be found.
fn count_params(tokens: &[Token], sig: (usize, usize)) -> (usize, bool) {
    // `fn name` then either `(` or a generic `<...>` group first —
    // skipped whole, so an `Fn(u32)` bound is not taken for the
    // parameter list.
    let mut open = sig.0 + 2;
    if open < sig.1 && tokens[open].is_punct('<') {
        let mut angle = 0i32;
        while open < sig.1 {
            let t = &tokens[open];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(open > 0 && tokens[open - 1].is_punct('-')) {
                angle -= 1;
                if angle == 0 {
                    open += 1;
                    break;
                }
            }
            open += 1;
        }
    }
    if open >= sig.1 || !tokens[open].is_punct('(') {
        return (usize::MAX, true);
    }
    let Some(n) = count_args(tokens, open, sig.1) else {
        return (usize::MAX, true);
    };
    // A receiver is a first parameter mentioning `self` before any
    // top-level `,` — `&self`, `&'a mut self`, `self: Arc<Self>`.
    let mut depth = 0i32;
    for i in open..sig.1 {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_punct(',') {
            break;
        } else if t.is_ident("self") {
            return (n.saturating_sub(1), true);
        }
    }
    (n, false)
}

impl Workspace {
    /// Indexes `files` and resolves every call site.
    pub fn build(files: Vec<FileIndex>) -> Workspace {
        let mut fns = Vec::new();
        let mut impls = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let tokens = &file.lexed.tokens;
            let file_impls: Vec<ImplInfo> = scan::impls(&file.lexed)
                .into_iter()
                .map(|im| {
                    let (trait_name, type_name) = impl_names(tokens, im.header);
                    ImplInfo {
                        trait_name,
                        type_name,
                        line: im.line,
                        body: im.body,
                    }
                })
                .collect();
            for f in scan::functions(&file.lexed) {
                let owner = file_impls
                    .iter()
                    .find(|im| im.body.0 <= f.sig.0 && f.sig.0 < im.body.1)
                    .and_then(|im| im.type_name.clone());
                let (visible, cross_pub) = visibility(tokens, f.sig.0);
                let (arity, has_self) = count_params(tokens, f.sig);
                fns.push(FnNode {
                    name: f.name.clone(),
                    owner,
                    krate: crate_of(&file.rel_path).to_string(),
                    file: fi,
                    line: f.line,
                    cross_pub,
                    visible,
                    sig: f.sig,
                    arity,
                    has_self,
                    body: f.body,
                    in_test: scan::in_ranges(&file.test_ranges, f.line),
                });
            }
            impls.push(file_impls);
        }

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }

        let mut calls = vec![Vec::new(); fns.len()];
        for (ci, caller) in fns.iter().enumerate() {
            let file = &files[caller.file];
            let tokens = &file.lexed.tokens;
            let (lo, hi) = caller.body;
            for i in lo..hi {
                let Some(name) = tokens[i].ident() else {
                    continue;
                };
                if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) || i + 1 >= hi {
                    continue;
                }
                let Some(candidates) = by_name.get(name) else {
                    continue;
                };
                let prev = (i > 0).then(|| &tokens[i - 1]);
                let resolved: Vec<usize> = if prev.is_some_and(|p| p.is_punct('.')) {
                    // Method call: `recv.name(..)`.
                    let recv_self = i >= 2 && tokens[i - 2].is_ident("self");
                    rank_methods(&fns, candidates, caller, recv_self)
                } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                    // Qualified call: `Qual::name(..)`.
                    let qual = (i >= 3).then(|| &tokens[i - 3]).and_then(|t| t.ident());
                    rank_qualified(&fns, &files, candidates, caller, qual)
                } else {
                    // Bare call: `name(..)` — skip keywords, macro-ish
                    // positions, and constructor casing.
                    if NON_CALL_KEYWORDS.contains(&name)
                        || name.starts_with(|c: char| c.is_ascii_uppercase())
                        || prev.is_some_and(|p| p.is_ident("fn") || p.is_punct(':'))
                    {
                        continue;
                    }
                    rank_free(&fns, candidates, caller)
                };
                // Arity filter: if the argument count matches some
                // candidate, drop the mismatched ones; otherwise the
                // counter was confused and every candidate stays.
                let resolved = match count_args(tokens, i + 1, tokens.len()) {
                    Some(n) if resolved.iter().any(|&c| fns[c].arity == n) => resolved
                        .into_iter()
                        .filter(|&c| fns[c].arity == n)
                        .collect(),
                    _ => resolved,
                };
                for callee in resolved {
                    if callee == ci {
                        continue; // self-recursion adds nothing
                    }
                    calls[ci].push(CallSite {
                        callee,
                        token: i,
                        line: tokens[i].line,
                    });
                }
            }
        }

        Workspace {
            files,
            fns,
            impls,
            calls,
        }
    }

    /// Call edges of function `f` whose name token falls in
    /// `[lo, hi)` (token indices of `f`'s file).
    pub fn calls_in_range(&self, f: usize, lo: usize, hi: usize) -> impl Iterator<Item = &CallSite> {
        self.calls[f]
            .iter()
            .filter(move |c| lo <= c.token && c.token < hi)
    }
}

/// Keeps the best-ranked non-empty candidate tier: same crate first,
/// then cross-crate `pub`.
fn prefer_same_crate(fns: &[FnNode], candidates: Vec<usize>, krate: &str) -> Vec<usize> {
    let same: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| fns[c].krate == krate)
        .collect();
    if !same.is_empty() {
        return same;
    }
    candidates
        .into_iter()
        .filter(|&c| fns[c].cross_pub)
        .collect()
}

fn rank_methods(
    fns: &[FnNode],
    candidates: &[usize],
    caller: &FnNode,
    recv_self: bool,
) -> Vec<usize> {
    let methods: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| fns[c].owner.is_some() && fns[c].has_self && !fns[c].in_test)
        .collect();
    if recv_self {
        if let Some(owner) = &caller.owner {
            let own: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&c| fns[c].owner.as_deref() == Some(owner))
                .collect();
            if !own.is_empty() {
                return prefer_same_crate(fns, own, &caller.krate);
            }
        }
    }
    prefer_same_crate(fns, methods, &caller.krate)
}

fn rank_qualified(
    fns: &[FnNode],
    files: &[FileIndex],
    candidates: &[usize],
    caller: &FnNode,
    qual: Option<&str>,
) -> Vec<usize> {
    let Some(qual) = qual else {
        return Vec::new();
    };
    let qual = if qual == "Self" {
        match &caller.owner {
            Some(t) => t.as_str(),
            None => return Vec::new(),
        }
    } else {
        qual
    };
    if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
        let owned: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| fns[c].owner.as_deref() == Some(qual) && !fns[c].in_test)
            .collect();
        return prefer_same_crate(fns, owned, &caller.krate);
    }
    // Lowercase qualifier: a module path. Prefer free functions whose
    // defining file is named after the last path segment.
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| fns[c].owner.is_none() && !fns[c].in_test)
        .collect();
    let in_module: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| {
            files[fns[c].file]
                .rel_path
                .rsplit('/')
                .next()
                .is_some_and(|stem| stem == format!("{qual}.rs"))
        })
        .collect();
    if !in_module.is_empty() {
        return prefer_same_crate(fns, in_module, &caller.krate);
    }
    prefer_same_crate(fns, free, &caller.krate)
}

fn rank_free(fns: &[FnNode], candidates: &[usize], caller: &FnNode) -> Vec<usize> {
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| fns[c].owner.is_none() && !fns[c].in_test)
        .collect();
    prefer_same_crate(fns, free, &caller.krate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| FileIndex::new(p, s))
                .collect(),
        )
    }

    fn fn_idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    fn callee_names(ws: &Workspace, caller: &str) -> Vec<String> {
        let ci = fn_idx(ws, caller);
        let mut names: Vec<String> = ws.calls[ci]
            .iter()
            .map(|c| ws.fns[c.callee].name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    #[test]
    fn free_calls_resolve_same_crate_then_pub() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); cross(); std_only(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "pub fn cross() {}\nfn hidden() {}"),
        ]);
        assert_eq!(callee_names(&w, "entry"), vec!["cross", "helper"]);
    }

    #[test]
    fn self_method_prefers_enclosing_impl_type() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        )]);
        let go = fn_idx(&w, "go");
        assert_eq!(w.calls[go].len(), 1);
        assert_eq!(w.fns[w.calls[go][0].callee].owner.as_deref(), Some("A"));
    }

    #[test]
    fn qualified_calls_use_owner_and_module_stems() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { B::make(); portable::fold(); Self_less(); }\n\
                 struct B; impl B { pub fn make() {} }\n\
                 fn Self_less() {}",
            ),
            ("crates/a/src/portable.rs", "pub(crate) fn fold() {}"),
            ("crates/a/src/avx2.rs", "pub(crate) fn fold() {}"),
        ]);
        let entry = fn_idx(&w, "entry");
        let folds: Vec<&str> = w.calls[entry]
            .iter()
            .filter(|c| w.fns[c.callee].name == "fold")
            .map(|c| w.files[w.fns[c.callee].file].rel_path.as_str())
            .collect();
        assert_eq!(folds, vec!["crates/a/src/portable.rs"]);
        assert!(callee_names(&w, "entry").contains(&"make".to_string()));
    }

    #[test]
    fn constructors_keywords_and_test_fns_produce_no_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn entry(x: Option<u32>) -> u32 { if check(x) { Wrapper(3).0 } else { 0 } }\n\
             fn check(_x: Option<u32>) -> bool { true }\n\
             struct Wrapper(u32);\n\
             fn Wrapper_like() {}\n\
             #[cfg(test)] mod tests { pub fn check(_x: Option<u32>) -> bool { false } }",
        )]);
        assert_eq!(callee_names(&w, "entry"), vec!["check"]);
        let entry = fn_idx(&w, "entry");
        for c in &w.calls[entry] {
            assert!(!w.fns[c.callee].in_test);
        }
    }

    #[test]
    fn impl_headers_resolve_trait_and_type() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl<G: Graph> Maintain for ExactMsf<G> { fn answer(&mut self) {} }\n\
             impl SketchArena { fn tidy(&mut self) {} }",
        )]);
        let im = &w.impls[0];
        assert_eq!(im[0].trait_name.as_deref(), Some("Maintain"));
        assert_eq!(im[0].type_name.as_deref(), Some("ExactMsf"));
        assert_eq!(im[1].trait_name, None);
        assert_eq!(im[1].type_name.as_deref(), Some("SketchArena"));
        assert_eq!(
            ws(&[("crates/a/src/x.rs", "impl Persist for Vec<T> { }")]).impls[0][0]
                .trait_name
                .as_deref(),
            Some("Persist")
        );
    }

    #[test]
    fn arity_filters_same_name_candidates_and_backs_off_when_confused() {
        // A zero-argument getter and a one-argument builder setter
        // share the name `capacity`; only the matching arity gets an
        // edge from each call.
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Cfg; struct Builder;\n\
             impl Cfg { fn capacity(&self) -> u64 { 4 } }\n\
             impl Builder { fn capacity(mut self, words: u64) -> Self { self } }\n\
             struct User; impl User {\n\
               fn read(&self) -> u64 { self.cfg.capacity() }\n\
               fn write(&self, b: Builder) -> Builder { b.capacity(8) }\n\
             }",
        )]);
        let read = fn_idx(&w, "read");
        let owners: Vec<&str> = w.calls[read]
            .iter()
            .map(|c| w.fns[c.callee].owner.as_deref().unwrap())
            .collect();
        assert_eq!(owners, vec!["Cfg"]);
        let write = fn_idx(&w, "write");
        let owners: Vec<&str> = w.calls[write]
            .iter()
            .map(|c| w.fns[c.callee].owner.as_deref().unwrap())
            .collect();
        assert_eq!(owners, vec!["Builder"]);
        // Closure pipes keep their commas out of the count; a bitwise
        // `|` confuses the toggle, and the filter backs off to the
        // ranked candidates instead of dropping the real callee.
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn apply(f: impl Fn(u64, u64) -> u64) -> u64 { f(1, 2) }\n\
             fn two(a: u64, b: u64) -> u64 { a + b }\n\
             fn run() -> u64 { apply(|a, b| a + b) + two(1 | 2, 3) }",
        )]);
        let run = fn_idx(&w, "run");
        assert_eq!(callee_names(&w, "run"), vec!["apply", "two"]);
        assert_eq!(w.calls[run].len(), 2);
    }

    #[test]
    fn dot_calls_never_resolve_to_associated_functions() {
        // `counter.load(Ordering)` must not pick up a `Persist::load`
        // constructor: dot syntax needs a `self` receiver.
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Cfg; impl Cfg { pub fn load(r: u64) -> Cfg { Cfg } }\n\
             struct Cell; impl Cell { pub fn load(&self, o: u64) -> u64 { o } }\n\
             pub fn poll(c: &Cell) -> u64 { c.load(1) }\n\
             pub fn restore() -> Cfg { Cfg::load(7) }",
        )]);
        let poll = fn_idx(&w, "poll");
        let owners: Vec<&str> = w.calls[poll]
            .iter()
            .map(|c| w.fns[c.callee].owner.as_deref().unwrap())
            .collect();
        assert_eq!(owners, vec!["Cell"]);
        let restore = fn_idx(&w, "restore");
        let owners: Vec<&str> = w.calls[restore]
            .iter()
            .map(|c| w.fns[c.callee].owner.as_deref().unwrap())
            .collect();
        assert_eq!(owners, vec!["Cfg"], "path calls still reach it");
    }

    #[test]
    fn visibility_and_crates_are_recorded() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\npub unsafe fn d() {}",
        )]);
        let vis: Vec<bool> = w.fns.iter().map(|f| f.cross_pub).collect();
        assert_eq!(vis, vec![true, false, false, true]);
        assert_eq!(w.fns[0].krate, "a");
        assert_eq!(crate_of("src/lib.rs"), "mpc_stream");
        assert_eq!(crate_of("crates/mpc-lint/src/lib.rs"), "mpc-lint");
    }
}
