//! The inline allowlist mechanism.
//!
//! A finding on line `L` is suppressed by a comment of the form
//!
//! ```text
//! // lint: allow(<rule-id>): <mandatory justification text>
//! ```
//!
//! placed either at the end of line `L` or on its own on line `L-1`.
//! The justification is not optional: an allow with fewer than
//! [`MIN_JUSTIFICATION`] characters of justification text does not
//! suppress anything and is itself reported under the
//! [`allow-hygiene`](crate::RULE_ALLOW_HYGIENE) meta rule, as is an
//! allow naming an unknown rule. Every allow that *does* fire is
//! listed (with its justification) in the JSON report, so suppressions
//! stay auditable.

use crate::report::{AppliedAllow, Finding};
use crate::RULE_ALLOW_HYGIENE;

/// Minimum justification length, in characters, after trimming.
pub const MIN_JUSTIFICATION: usize = 10;

/// A parsed, well-formed allow comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id being allowed.
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Justification text.
    pub justification: String,
}

/// Extracts allow comments from `(line, text)` line comments.
/// Malformed allows (missing justification, unknown rule) become
/// `allow-hygiene` findings instead of suppressions.
pub fn collect(
    comments: &[(u32, String)],
    known_rules: &[&'static str],
    file: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in comments {
        // Doc comments (`///`, `//!`) describe the mechanism; only a
        // plain `//` comment can be an allow.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(start) = text.find("lint: allow(") else {
            continue;
        };
        let rest = &text[start + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                rule: RULE_ALLOW_HYGIENE,
                file: file.to_string(),
                line: *line,
                message: "malformed allow comment: missing `)`".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justification = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim()
            .to_string();
        if !known_rules.contains(&rule.as_str()) {
            findings.push(Finding {
                rule: RULE_ALLOW_HYGIENE,
                file: file.to_string(),
                line: *line,
                message: format!("allow names unknown rule `{rule}`"),
            });
            continue;
        }
        if justification.chars().count() < MIN_JUSTIFICATION {
            findings.push(Finding {
                rule: RULE_ALLOW_HYGIENE,
                file: file.to_string(),
                line: *line,
                message: format!(
                    "allow({rule}) has no justification text — a reason of at least \
                     {MIN_JUSTIFICATION} characters is mandatory"
                ),
            });
            continue;
        }
        allows.push(Allow {
            rule,
            line: *line,
            justification,
        });
    }
    allows
}

/// Applies `allows` to `findings`: a finding suppressed by an allow on
/// its own line or the line above is removed, and the allow is
/// recorded in `applied`.
pub fn apply(
    findings: Vec<Finding>,
    allows: &[Allow],
    file: &str,
    applied: &mut Vec<AppliedAllow>,
) -> Vec<Finding> {
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        let hit = allows
            .iter()
            .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        match hit {
            Some(a) => {
                // The same allow may legitimately cover several
                // findings on one line; record it once per use.
                applied.push(AppliedAllow {
                    rule: a.rule.clone(),
                    file: file.to_string(),
                    line: a.line,
                    justification: a.justification.clone(),
                });
            }
            None => kept.push(f),
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["determinism-hygiene", "no-panic-hot-path"];

    #[test]
    fn justified_allow_suppresses_and_is_recorded() {
        let comments = vec![(
            4u32,
            " lint: allow(determinism-hygiene): lookup-only map, never iterated".to_string(),
        )];
        let mut meta = Vec::new();
        let allows = collect(&comments, RULES, "f.rs", &mut meta);
        assert!(meta.is_empty());
        assert_eq!(allows.len(), 1);
        let findings = vec![Finding {
            rule: "determinism-hygiene",
            file: "f.rs".into(),
            line: 5,
            message: "m".into(),
        }];
        let mut applied = Vec::new();
        let kept = apply(findings, &allows, "f.rs", &mut applied);
        assert!(kept.is_empty());
        assert_eq!(applied.len(), 1);
        assert!(applied[0].justification.contains("never iterated"));
    }

    #[test]
    fn unjustified_or_unknown_allows_become_findings() {
        let comments = vec![
            (1u32, " lint: allow(determinism-hygiene)".to_string()),
            (
                2u32,
                " lint: allow(not-a-rule): some justification".to_string(),
            ),
        ];
        let mut meta = Vec::new();
        let allows = collect(&comments, RULES, "f.rs", &mut meta);
        assert!(allows.is_empty());
        assert_eq!(meta.len(), 2);
        assert!(meta[0].message.contains("mandatory"));
        assert!(meta[1].message.contains("unknown rule"));
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_not_allows() {
        let comments = vec![
            (
                1u32,
                "/ Docs: ` lint: allow(<rule-id>): reason`".to_string(),
            ),
            (2u32, "! lint: allow(not-a-rule): module docs".to_string()),
        ];
        let mut meta = Vec::new();
        let allows = collect(&comments, RULES, "f.rs", &mut meta);
        assert!(allows.is_empty());
        assert!(meta.is_empty());
    }

    #[test]
    fn allow_does_not_reach_two_lines_down() {
        let allows = vec![Allow {
            rule: "no-panic-hot-path".into(),
            line: 3,
            justification: "long enough reason".into(),
        }];
        let findings = vec![Finding {
            rule: "no-panic-hot-path",
            file: "f.rs".into(),
            line: 5,
            message: "m".into(),
        }];
        let mut applied = Vec::new();
        let kept = apply(findings, &allows, "f.rs", &mut applied);
        assert_eq!(kept.len(), 1);
        assert!(applied.is_empty());
    }
}
