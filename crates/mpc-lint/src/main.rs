//! `mpc-lint` CLI: lint the workspace for accounting, determinism,
//! and unsafe-hygiene invariants.
//!
//! ```text
//! mpc-lint [ROOT] [--deny] [--json] [--explain <rule>]
//! ```
//!
//! Exit codes: `0` clean (or warn mode), `2` findings under `--deny`,
//! `1` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: mpc-lint [ROOT] [--deny] [--json] [--explain <rule>]\n\
     \n\
     ROOT              workspace root (default: auto-detected)\n\
     --deny            exit 2 when any finding survives the allowlist\n\
     --json            print the machine-readable report\n\
     --explain <rule>  print the rationale for one rule id and exit\n\
     --list            list all rule ids and exit"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--list" => {
                for (id, _) in mpc_lint::RULES {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("--explain needs a rule id\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match mpc_lint::explain(&rule) {
                    Some(text) => {
                        println!("{rule}\n\n{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule `{rule}`; known rules:\n  {}",
                            mpc_lint::RULES
                                .iter()
                                .map(|(id, _)| *id)
                                .collect::<Vec<_>>()
                                .join("\n  ")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let root = mpc_lint::resolve_root(root);
    let report = match mpc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mpc-lint: failed to walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!(
            "mpc-lint: {} file(s) scanned, {} finding(s), {} allow(s) applied",
            report.files_scanned,
            report.findings.len(),
            report.allows.len()
        );
        for a in &report.allows {
            println!(
                "  allow {}:{} [{}] — {}",
                a.file, a.line, a.rule, a.justification
            );
        }
    }

    if deny && !report.findings.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
