//! Structural passes over the token stream: function bodies, `impl`
//! blocks, and `#[cfg(test)]` regions.
//!
//! These are heuristic but conservative recognizers tuned to the
//! idioms this workspace actually uses; they only need to be precise
//! enough that every rule can (a) scope itself to the right bodies
//! and (b) skip test code, where the invariants deliberately do not
//! apply (tests panic on purpose and may use host-time or hash maps).

use crate::lexer::{Lexed, Token};

/// A function item with a resolved body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the signature (`fn` keyword up to the
    /// body's `{`, exclusive).
    pub sig: (usize, usize),
    /// Token-index range of the body, **excluding** the outer braces.
    pub body: (usize, usize),
}

/// An `impl` item with its header and body spans.
#[derive(Debug, Clone)]
pub struct ImplSpan {
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token-index range of the header (between `impl` and `{`).
    pub header: (usize, usize),
    /// Token-index range of the body, excluding the outer braces.
    pub body: (usize, usize),
}

/// Whether the token at `i` begins an *item* (as opposed to an
/// `impl Trait`/`fn(..)` type position): items follow the start of
/// file, `}`/`;`, an attribute `]`, a visibility `)` (as in
/// `pub(crate)`), or item-introducing keywords.
fn at_item_position(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &tokens[i - 1];
    if prev.is_punct('}') || prev.is_punct(';') || prev.is_punct(']') || prev.is_punct(')') {
        return true;
    }
    if prev.is_punct('{') {
        // First item of a module or block.
        return true;
    }
    matches!(
        prev.ident(),
        Some("pub" | "unsafe" | "const" | "async" | "default" | "extern")
    )
}

/// Finds the token index of the `{` opening the next body after `i`,
/// or `None` if a `;` ends the item first (declarations, fn types).
/// Parentheses and brackets are tracked so `;` inside `[u8; 4]` or a
/// default argument position does not end the scan.
fn find_body_open(tokens: &[Token], mut i: usize) -> Option<usize> {
    let mut depth = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return None;
        } else if depth == 0 && t.is_punct('{') {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Given the index of an opening `{`, returns the index of its
/// matching `}` (or the last token on imbalance).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// All function items (any nesting level) with their body spans.
pub fn functions(lexed: &Lexed) -> Vec<FnSpan> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.ident() else {
            continue; // `fn(..)` pointer type
        };
        let Some(open) = find_body_open(tokens, i + 2) else {
            continue; // trait method declaration without a body
        };
        let close = matching_brace(tokens, open);
        out.push(FnSpan {
            name: name.to_string(),
            line: tokens[i].line,
            sig: (i, open),
            body: (open + 1, close),
        });
    }
    out
}

/// All `impl` items with header and body spans.
pub fn impls(lexed: &Lexed) -> Vec<ImplSpan> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("impl") || !at_item_position(tokens, i) {
            continue;
        }
        let Some(open) = find_body_open(tokens, i + 1) else {
            continue;
        };
        let close = matching_brace(tokens, open);
        out.push(ImplSpan {
            line: tokens[i].line,
            header: (i + 1, open),
            body: (open + 1, close),
        });
    }
    out
}

/// 1-based inclusive line ranges covered by `#[cfg(test)]` or
/// `#[test]` items (modules, functions, impls).
pub fn test_line_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            // Find the end of this attribute, skip any further
            // attributes, then span the following item.
            let mut j = attr_end(tokens, i);
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = attr_end(tokens, j);
            }
            let start_line = tokens[i].line;
            if let Some(open) = find_body_open(tokens, j) {
                let close = matching_brace(tokens, open);
                out.push((start_line, tokens[close].line));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether tokens at `i` start `#[cfg(test)]` or `#[test]`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('#') {
        return false;
    }
    let Some(open) = tokens.get(i + 1) else {
        return false;
    };
    if !open.is_punct('[') {
        return false;
    }
    match tokens.get(i + 2) {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => {
            // `#[cfg(test)]` or `#[cfg(all(test, ...))]` — accept any
            // cfg attribute that mentions `test` before its `]`.
            let end = attr_end(tokens, i);
            tokens[i..end].iter().any(|t| t.is_ident("test"))
        }
        _ => false,
    }
}

/// Token index just past the `]` closing the attribute at `i` (`#`).
fn attr_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Whether `line` falls inside any of the given inclusive ranges.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_bodies() {
        let src =
            "pub fn a(x: [u8; 3]) -> u32 { x[0] as u32 }\nfn b();\nimpl T { fn c(&self) { } }";
        let l = lex(src);
        let fns = functions(&l);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"], "b has no body, fn types skipped");
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let src =
            "fn f() -> impl Iterator<Item = u32> { 0..3 }\nimpl Foo for Bar { fn g(&self) {} }";
        let l = lex(src);
        let is = impls(&l);
        assert_eq!(is.len(), 1);
        let header: Vec<_> = l.tokens[is[0].header.0..is[0].header.1]
            .iter()
            .filter_map(|t| t.ident())
            .collect();
        assert_eq!(header, vec!["Foo", "for", "Bar"]);
    }

    #[test]
    fn cfg_test_regions_span_the_following_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let l = lex(src);
        let ranges = test_line_ranges(&l);
        assert_eq!(ranges, vec![(2, 5)]);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 6));
    }
}
