//! Cross-tier bit-identity property tests for the vectorized arena
//! kernels: the scalar, SSE2, and AVX2 tiers must produce the same
//! cells, the same live masks, the same samples, and the same
//! snapshot bytes on the same seeds and streams — on randomized
//! arenas across odd/even cell counts, empty/full live masks, and
//! the `merge_into_stealing` span-split seams.
//!
//! The suite runs under `MPC_KERNEL=scalar` and under auto-detection
//! in CI: the per-arena `set_kernel` override makes every available
//! tier comparable inside one process regardless of the env choice,
//! and the `selected_tier_respects_env` test pins the env plumbing
//! itself.

use mpc_sketch::l0::SampleOutcome;
use mpc_sketch::{KernelKind, MergeScratch, SketchArena};
use mpc_snapshot::{Persist, SnapshotWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every tier the host can actually run.
fn tiers() -> Vec<KernelKind> {
    [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// Serializes an arena to snapshot bytes.
fn snapshot_bytes(arena: &SketchArena) -> Vec<u8> {
    let mut w = SnapshotWriter::new(0);
    w.begin_section("arena");
    arena.save(&mut w);
    w.end_section();
    w.finish()
}

/// Builds one arena per available tier and drives all of them through
/// the same update stream; returns the arenas.
fn arenas_on_all_tiers(
    n: usize,
    copies: usize,
    max_index: u64,
    seed: u64,
    drive: impl Fn(&mut SketchArena, &mut StdRng),
) -> Vec<(KernelKind, SketchArena)> {
    tiers()
        .into_iter()
        .map(|k| {
            let mut arena = SketchArena::new(n, copies, max_index, seed);
            assert_eq!(arena.set_kernel(k), k, "tier {k:?} reported available");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
            drive(&mut arena, &mut rng);
            (k, arena)
        })
        .collect()
}

/// Random adversarial stream: single updates, pair updates, and
/// exact cancellations (re-applying an earlier update negated), so
/// live-mask bits both set and clear.
fn random_stream(
    arena: &mut SketchArena,
    rng: &mut StdRng,
    n: u32,
    max_index: u64,
    updates: usize,
) {
    let mut history: Vec<(u32, u64, i64)> = Vec::new();
    for _ in 0..updates {
        match rng.gen_range(0..4) {
            // Cancel an earlier single update exactly.
            0 if !history.is_empty() => {
                let (v, index, delta) = history.swap_remove(rng.gen_range(0..history.len()));
                arena.update(v, index, -delta);
            }
            // Pair update (the edge path).
            1 => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                let index = rng.gen_range(0..max_index);
                arena.materialize(a);
                arena.materialize(b);
                arena.update_pair(a, b, index, 1, -1);
            }
            // Single update with a small weight.
            _ => {
                let v = rng.gen_range(0..n);
                let index = rng.gen_range(0..max_index);
                let delta = [1, -1, 2, -3][rng.gen_range(0..4usize)];
                arena.materialize(v);
                arena.update(v, index, delta);
                history.push((v, index, delta));
            }
        }
    }
}

/// Asserts two arenas agree cell-for-cell and byte-for-byte.
fn assert_arenas_identical(want: &SketchArena, got: &SketchArena, label: &str) {
    assert_eq!(
        snapshot_bytes(want),
        snapshot_bytes(got),
        "{label}: snapshot bytes diverged"
    );
}

#[test]
fn update_streams_bit_identical_across_tiers() {
    // Odd and even copy/level shapes: max_index 1<<k gives k+3
    // levels, so 61 and 62 exercise both parities near the 64-level
    // mask boundary alongside small columns.
    for (n, copies, max_index) in [
        (33u32, 3usize, 1u64 << 9),
        (64, 4, 1 << 10),
        (17, 1, 1 << 4),
        (8, 2, 1 << 61),
    ] {
        let built = arenas_on_all_tiers(n as usize, copies, max_index, 0xA11CE, |arena, rng| {
            random_stream(arena, rng, n, max_index, 600);
        });
        let (k0, reference) = &built[0];
        for (k, arena) in &built[1..] {
            assert_arenas_identical(
                reference,
                arena,
                &format!("stream {k0:?} vs {k:?} (n={n}, copies={copies})"),
            );
        }
    }
}

/// One tier's merge observation: absorbed count, scratch cells, and
/// the decoded sample.
type MergeObservation = (
    usize,
    Vec<(i64, i128, mpc_hashing::field::M61)>,
    SampleOutcome,
);

/// Merges a member set on every tier (serial and stealing) and
/// asserts scratch cells and samples agree across all of them.
fn assert_merges_agree(
    built: &[(KernelKind, SketchArena)],
    members: &[u32],
    pool: Option<&mpc_sim::WorkerPool>,
    label: &str,
) {
    let copies = built[0].1.copies();
    for copy in 0..copies {
        let mut reference: Option<MergeObservation> = None;
        for (k, arena) in built {
            for stealing in [false, true] {
                let mut scratch: MergeScratch = arena.new_scratch();
                scratch.reset(copy);
                let absorbed = if stealing {
                    arena.merge_into_stealing(members, &mut scratch, pool)
                } else {
                    arena.merge_into(members, &mut scratch)
                };
                let cells: Vec<_> = (0..scratch.levels()).map(|l| scratch.cell(l)).collect();
                let sample = arena.sample_scratch(&scratch);
                match &reference {
                    None => reference = Some((absorbed, cells, sample)),
                    Some((want_a, want_c, want_s)) => {
                        assert_eq!(*want_a, absorbed, "{label}: absorbed ({k:?}, {stealing})");
                        assert_eq!(want_c, &cells, "{label}: cells ({k:?} stealing={stealing})");
                        assert_eq!(
                            want_s, &sample,
                            "{label}: sample ({k:?} stealing={stealing})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn merges_bit_identical_across_tiers_and_span_seams() {
    // 300 members with SPAN=128 puts seams at 128 and 256 — member
    // counts straddle the 2*SPAN stealing threshold and leave an
    // unaligned 44-member tail span.
    let n = 300u32;
    let max_index = 1u64 << 12;
    let built = arenas_on_all_tiers(n as usize, 2, max_index, 0xB0B, |arena, rng| {
        random_stream(arena, rng, n, max_index, 2_000);
    });
    let pool = mpc_sim::WorkerPool::new(3);
    let mut rng = StdRng::seed_from_u64(7);
    for (count, label) in [
        (1usize, "singleton"),
        (64, "sub-span"),
        (129, "one seam"),
        (300, "full set with tail span"),
    ] {
        let mut members: Vec<u32> = (0..n).collect();
        for i in 0..count {
            let j = rng.gen_range(i..n as usize);
            members.swap(i, j);
        }
        members.truncate(count);
        assert_merges_agree(&built, &members, Some(&pool), label);
    }
}

#[test]
fn empty_and_full_mask_extremes_agree() {
    let max_index = 1u64 << 6; // 9 levels: every level reachable.
    let built = arenas_on_all_tiers(16, 2, max_index, 0xF00D, |arena, _| {
        // Vertex 0: untouched (no block). Vertex 1: materialized but
        // empty (all-zero mask). Vertex 2: every index once — every
        // level of every copy live (full mask). Vertex 3: filled then
        // exactly cancelled (mask set, then cleared back to empty).
        arena.materialize(1);
        for index in 0..max_index {
            arena.materialize(2);
            arena.update(2, index, 1);
            arena.materialize(3);
            arena.update(3, index, 1);
        }
        for index in 0..max_index {
            arena.update(3, index, -1);
        }
    });
    let (_, reference) = &built[0];
    for (k, arena) in &built {
        assert_arenas_identical(reference, arena, &format!("extremes vs {k:?}"));
        for copy in 0..arena.copies() {
            assert_eq!(arena.sample_column(0, copy), SampleOutcome::Zero, "{k:?}");
            assert_eq!(arena.sample_column(1, copy), SampleOutcome::Zero, "{k:?}");
            assert_eq!(arena.sample_column(3, copy), SampleOutcome::Zero, "{k:?}");
            assert!(
                !matches!(arena.sample_column(2, copy), SampleOutcome::Zero),
                "{k:?}: full column must not sample Zero"
            );
        }
    }
    assert_merges_agree(&built, &[0, 1, 2, 3], None, "extremes merge");
    // The cancelled-and-empty member set must still sample Zero
    // through the union-mask path.
    for (k, arena) in &built {
        let mut scratch = arena.new_scratch();
        scratch.reset(0);
        arena.merge_into(&[0, 1, 3], &mut scratch);
        assert_eq!(
            arena.sample_scratch(&scratch),
            SampleOutcome::Zero,
            "{k:?}: cancelled members must merge to the zero sketch"
        );
    }
}

#[test]
fn snapshot_roundtrip_preserves_cells_on_every_tier() {
    let n = 40u32;
    let max_index = 1u64 << 8;
    let built = arenas_on_all_tiers(n as usize, 2, max_index, 0x5EED, |arena, rng| {
        random_stream(arena, rng, n, max_index, 400);
    });
    for (k, arena) in &built {
        let bytes = snapshot_bytes(arena);
        let snap = mpc_snapshot::Snapshot::from_bytes(&bytes).expect("readable");
        let mut r = snap.section("arena").expect("arena section");
        let restored = SketchArena::load(&mut r).expect("loadable");
        // The restored arena re-selects its own tier; its *cells*
        // must still serialize identically.
        assert_eq!(
            bytes,
            snapshot_bytes(&restored),
            "{k:?}: restore must be byte-stable"
        );
    }
}

#[test]
fn selected_tier_respects_env() {
    // `selected()` is cached process-wide, so this asserts
    // consistency with whatever MPC_KERNEL the harness set — under
    // `MPC_KERNEL=scalar` the whole suite above runs its reference
    // tier through the same dispatch the production arenas use.
    let selected = KernelKind::selected();
    assert!(selected.is_available());
    match mpc_sim::kernel_from_env() {
        Some(mpc_sim::KernelOverride::Scalar) => assert_eq!(selected, KernelKind::Scalar),
        Some(mpc_sim::KernelOverride::Sse2) => {
            assert_eq!(selected, KernelKind::Sse2.clamped());
        }
        Some(mpc_sim::KernelOverride::Avx2) => {
            assert_eq!(selected, KernelKind::Avx2.clamped());
        }
        None => assert_eq!(selected, KernelKind::detect_best()),
    }
    let arena = SketchArena::new(4, 1, 16, 1);
    assert_eq!(arena.kernel(), selected);
}
