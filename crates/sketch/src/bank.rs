//! Per-vertex banks of independent sketch copies.
//!
//! The paper's batch-deletion algorithm (Section 6.3) keeps
//! `t = Θ(log n)` **independent** sketches per vertex and consumes
//! copy `i` only in Borůvka level `i` of the replacement-edge search,
//! so every level queries randomness it has never revealed. The bank
//! manages the `n × t` grid of [`VertexSketch`]es, lazily
//! materializing them (a vertex with no incident updates costs
//! nothing) and reporting exact word counts for the MPC memory
//! accounting.

use crate::vertex::VertexSketch;
use mpc_graph::ids::{Edge, VertexId};

/// A bank of `t` independent sketch copies for each of `n` vertices.
///
/// # Examples
///
/// ```
/// use mpc_sketch::bank::SketchBank;
/// use mpc_sketch::vertex::EdgeSample;
/// use mpc_graph::ids::Edge;
///
/// let mut bank = SketchBank::new(16, 3, 99);
/// bank.insert_edge(Edge::new(1, 2));
/// let s = bank.sketch(1, 0).expect("materialized");
/// assert_eq!(s.sample(), EdgeSample::Edge(Edge::new(1, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct SketchBank {
    n: usize,
    copies: usize,
    /// One prototype sketch per copy: the family randomness (level
    /// hashes, fingerprint points and power tables) is seeded once
    /// here and shared by every materialized vertex column.
    protos: Vec<VertexSketch>,
    /// `slots[v]` is `None` until vertex `v` sees its first update.
    slots: Vec<Option<Vec<VertexSketch>>>,
    words: u64,
}

impl SketchBank {
    /// Creates a bank of `copies` independent sketches per vertex for
    /// an `n`-vertex graph. Copy `i` of every vertex shares seed
    /// `seed + i`, so copies merge across vertices but are independent
    /// across copy indices.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn new(n: usize, copies: usize, seed: u64) -> Self {
        assert!(copies >= 1, "need at least one sketch copy");
        let protos = (0..copies)
            .map(|i| VertexSketch::new(n, 0, seed + i as u64))
            .collect();
        SketchBank {
            n,
            copies,
            protos,
            slots: vec![None; n],
            words: 0,
        }
    }

    /// Number of independent copies per vertex.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Words currently materialized across the whole bank.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Words one vertex's full sketch column costs when materialized.
    pub fn words_per_vertex(&self) -> u64 {
        // All sketches have identical shape; probe a template.
        VertexSketch::new(self.n, 0, 0).words() * self.copies as u64
    }

    fn materialize(&mut self, v: VertexId) -> &mut Vec<VertexSketch> {
        let slot = &mut self.slots[v as usize];
        if slot.is_none() {
            let col: Vec<VertexSketch> = self.protos.iter().map(|p| p.fresh_for(v)).collect();
            self.words += col.iter().map(VertexSketch::words).sum::<u64>();
            *slot = Some(col);
        }
        slot.as_mut().expect("just materialized")
    }

    /// Records an edge insertion in **both** endpoints' sketch
    /// columns (all copies), one level-hash/fingerprint evaluation
    /// per copy for the pair.
    pub fn insert_edge(&mut self, e: Edge) {
        self.update_edge(e, 1);
    }

    /// Records an edge deletion in both endpoints' sketch columns.
    pub fn delete_edge(&mut self, e: Edge) {
        self.update_edge(e, -1);
    }

    fn update_edge(&mut self, e: Edge, delta: i64) {
        self.materialize(e.u());
        self.materialize(e.v());
        let (u, v) = (e.u() as usize, e.v() as usize);
        // Edge endpoints are distinct and normalized u < v.
        let (lo, hi) = self.slots.split_at_mut(v);
        let col_u = lo[u].as_mut().expect("just materialized");
        let col_v = hi[0].as_mut().expect("just materialized");
        for (su, sv) in col_u.iter_mut().zip(col_v.iter_mut()) {
            VertexSketch::update_edge_pair(su, sv, e, delta);
        }
    }

    /// Copy `i` of vertex `v`'s sketch, if materialized. An
    /// unmaterialized vertex has the zero sketch.
    pub fn sketch(&self, v: VertexId, copy: usize) -> Option<&VertexSketch> {
        self.slots[v as usize].as_ref().map(|col| &col[copy])
    }

    /// Whether vertex `v` has ever been touched by an update.
    pub fn is_materialized(&self, v: VertexId) -> bool {
        self.slots[v as usize].is_some()
    }

    /// Merges copy `copy` of every vertex in `members` into one set
    /// sketch (the sketch of `X_A` for `A = members`), skipping
    /// never-touched vertices (their sketches are zero). Returns
    /// `None` if no member was ever touched.
    pub fn merged_copy(&self, members: &[VertexId], copy: usize) -> Option<VertexSketch> {
        let mut acc: Option<VertexSketch> = None;
        for &v in members {
            if let Some(s) = self.sketch(v, copy) {
                match &mut acc {
                    None => acc = Some(s.clone()),
                    Some(a) => a.merge(s),
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::EdgeSample;

    #[test]
    fn lazy_materialization_costs_nothing_upfront() {
        let bank = SketchBank::new(1000, 8, 1);
        assert_eq!(bank.words(), 0);
        assert!(!bank.is_materialized(42));
    }

    #[test]
    fn words_grow_only_for_touched_vertices() {
        let mut bank = SketchBank::new(100, 4, 1);
        bank.insert_edge(Edge::new(0, 1));
        let w = bank.words();
        assert_eq!(w, 2 * bank.words_per_vertex());
        bank.insert_edge(Edge::new(0, 2));
        // Vertex 0 already materialized; only vertex 2 added.
        assert_eq!(bank.words(), w + bank.words_per_vertex());
    }

    #[test]
    fn copies_are_independent_but_consistent() {
        let mut bank = SketchBank::new(32, 6, 9);
        let e = Edge::new(3, 7);
        bank.insert_edge(e);
        for copy in 0..6 {
            let s = bank.sketch(3, copy).expect("materialized");
            assert_eq!(s.sample(), EdgeSample::Edge(e), "copy {copy}");
        }
    }

    #[test]
    fn merged_copy_cancels_internal_edges() {
        let mut bank = SketchBank::new(32, 2, 9);
        bank.insert_edge(Edge::new(0, 1));
        bank.insert_edge(Edge::new(1, 2));
        bank.insert_edge(Edge::new(2, 9));
        let set = bank.merged_copy(&[0, 1, 2], 0).expect("touched");
        assert_eq!(set.sample(), EdgeSample::Edge(Edge::new(2, 9)));
    }

    #[test]
    fn merged_copy_of_untouched_vertices_is_none() {
        let bank = SketchBank::new(32, 2, 9);
        assert!(bank.merged_copy(&[5, 6], 0).is_none());
    }

    #[test]
    fn delete_restores_zero() {
        let mut bank = SketchBank::new(32, 3, 11);
        let e = Edge::new(4, 5);
        bank.insert_edge(e);
        bank.delete_edge(e);
        for copy in 0..3 {
            let merged = bank.merged_copy(&[4], copy).expect("touched");
            assert_eq!(merged.sample(), EdgeSample::Empty);
        }
    }

    #[test]
    fn different_copies_use_different_randomness() {
        let bank = SketchBank::new(64, 2, 123);
        // Same structure, different seeds: the internal samplers must
        // differ (different hash families).
        let a = VertexSketch::new(64, 0, 123);
        let b = VertexSketch::new(64, 0, 124);
        assert_ne!(a, b);
        drop(bank);
    }
}
