//! Per-vertex banks of independent sketch copies.
//!
//! The paper's batch-deletion algorithm (Section 6.3) keeps
//! `t = Θ(log n)` **independent** sketches per vertex and consumes
//! copy `i` only in Borůvka level `i` of the replacement-edge search,
//! so every level queries randomness it has never revealed. The bank
//! manages the `n × t` grid of vertex sketches, lazily materializing
//! columns (a vertex with no incident updates costs nothing) and
//! reporting exact word counts for the MPC memory accounting.
//!
//! **Storage** is the columnar [`SketchArena`]: one contiguous pool
//! of interleaved one-sparse cells for the whole bank, one
//! [`SketchFamily`](crate::arena::SketchFamily) per copy (the family
//! randomness is seeded once, not once per materialized sketch), and
//! a reusable [`MergeScratch`] accumulator so the Borůvka
//! converge-cast merges component columns without cloning a single
//! sketch. See the [`arena`](crate::arena) module docs for the
//! layout.

use crate::arena::{MergeScratch, SketchArena};
use crate::l0::L0Sampler;
use crate::vertex::{EdgeSample, VertexSketch};
use mpc_graph::ids::{Edge, VertexId};

/// A bank of `t` independent sketch copies for each of `n` vertices.
///
/// # Examples
///
/// ```
/// use mpc_sketch::bank::SketchBank;
/// use mpc_sketch::vertex::EdgeSample;
/// use mpc_graph::ids::Edge;
///
/// let mut bank = SketchBank::new(16, 3, 99);
/// bank.insert_edge(Edge::new(1, 2));
/// assert_eq!(bank.sample_vertex(1, 0), EdgeSample::Edge(Edge::new(1, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct SketchBank {
    n: usize,
    copies: usize,
    arena: SketchArena,
    words: u64,
    /// Cached per-column word cost (computed once at construction —
    /// every column has identical accounted shape).
    words_per_vertex: u64,
}

impl SketchBank {
    /// Creates a bank of `copies` independent sketches per vertex for
    /// an `n`-vertex graph. Copy `i` of every vertex shares seed
    /// `seed + i`, so copies merge across vertices but are independent
    /// across copy indices.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn new(n: usize, copies: usize, seed: u64) -> Self {
        assert!(copies >= 1, "need at least one sketch copy");
        let arena = SketchArena::new(n, copies, (n as u64) * (n as u64), seed);
        // Accounted column cost, probed once from a template sketch
        // (every column has identical accounted shape — this is the
        // expression the pre-arena code recomputed per call).
        let words_per_vertex = VertexSketch::new(n, 0, 0).words() * copies as u64;
        SketchBank {
            n,
            copies,
            arena,
            words: 0,
            words_per_vertex,
        }
    }

    /// Number of independent copies per vertex.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Words currently materialized across the whole bank.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Words one vertex's full sketch column costs when materialized
    /// (cached at construction; all columns have identical shape).
    pub fn words_per_vertex(&self) -> u64 {
        self.words_per_vertex
    }

    /// The underlying columnar arena (read-only).
    pub fn arena(&self) -> &SketchArena {
        &self.arena
    }

    /// Records an edge insertion in **both** endpoints' sketch
    /// columns (all copies), one level-hash/fingerprint evaluation
    /// per copy for the pair.
    pub fn insert_edge(&mut self, e: Edge) {
        self.update_edge(e, 1);
    }

    /// Records an edge deletion in both endpoints' sketch columns.
    pub fn delete_edge(&mut self, e: Edge) {
        self.update_edge(e, -1);
    }

    fn update_edge(&mut self, e: Edge, delta: i64) {
        if self.arena.materialize(e.u()) {
            self.words += self.words_per_vertex;
        }
        if self.arena.materialize(e.v()) {
            self.words += self.words_per_vertex;
        }
        // Sign convention (Lemma 3.3): the larger endpoint carries
        // `+delta` at the edge coordinate, the smaller `-delta`.
        self.arena
            .update_pair(e.v(), e.u(), e.index(self.n), delta, -delta);
    }

    /// Whether vertex `v` has ever been touched by an update.
    pub fn is_materialized(&self, v: VertexId) -> bool {
        self.arena.is_materialized(v)
    }

    /// Samples copy `copy` of vertex `v`'s own cut directly from the
    /// arena column (an unmaterialized vertex has the empty cut).
    pub fn sample_vertex(&self, v: VertexId, copy: usize) -> EdgeSample {
        crate::vertex::edge_sample_from(self.arena.sample_column(v, copy), self.n)
    }

    /// Materializes copy `copy` of vertex `v` as a standalone
    /// [`VertexSketch`] (a copy of the column — for interop and
    /// tests; hot paths read the arena directly). `None` if `v` was
    /// never touched.
    pub fn vertex_sketch(&self, v: VertexId, copy: usize) -> Option<VertexSketch> {
        if !self.arena.is_materialized(v) {
            return None;
        }
        let levels = self.arena.levels();
        let mut value_sum = Vec::with_capacity(levels);
        let mut index_sum = Vec::with_capacity(levels);
        let mut fp = Vec::with_capacity(levels);
        for l in 0..levels {
            let (vs, is, f) = self.arena.cell(v, copy, l);
            value_sum.push(vs);
            index_sum.push(is);
            fp.push(f);
        }
        let inner = L0Sampler::from_raw(self.arena.family(copy).clone(), value_sum, index_sum, fp);
        Some(VertexSketch::from_inner(self.n, v, inner))
    }

    /// A merge accumulator sized for this bank's columns. Allocate
    /// once per cascade (or per structure) and reuse it across every
    /// component merge — the zero-allocation replacement for cloning
    /// a sketch per component member.
    pub fn new_scratch(&self) -> MergeScratch {
        self.arena.new_scratch()
    }

    /// Accumulates copy `scratch.copy()` of every materialized member
    /// column into `scratch`, returning how many columns were
    /// absorbed (0 means every member is untouched, i.e. the merged
    /// sketch is the zero sketch of an empty vertex set — the
    /// `None` of [`SketchBank::merged_copy`]). Call
    /// [`MergeScratch::reset`] before each new component; repeated
    /// calls accumulate, which is how a supernode sums several
    /// pieces' member lists without intermediate sketches.
    pub fn merge_copy_into(&self, members: &[VertexId], scratch: &mut MergeScratch) -> usize {
        self.arena.merge_into(members, scratch)
    }

    /// [`SketchBank::merge_copy_into`] with optional host work
    /// stealing over the member columns (see
    /// [`SketchArena::merge_into_stealing`]); bit-identical to the
    /// serial merge, `pool` or not.
    pub fn merge_copy_into_stealing(
        &self,
        members: &[VertexId],
        scratch: &mut MergeScratch,
        pool: Option<&mpc_sim::WorkerPool>,
    ) -> usize {
        self.arena.merge_into_stealing(members, scratch, pool)
    }

    /// Samples the set sketch accumulated in `scratch` (the cut of
    /// the merged vertex set, Lemma 3.3).
    pub fn sample_merged(&self, scratch: &MergeScratch) -> EdgeSample {
        crate::vertex::edge_sample_from(self.arena.sample_scratch(scratch), self.n)
    }

    /// Merges copy `copy` of every vertex in `members` into one
    /// standalone set sketch (the sketch of `X_A` for `A = members`),
    /// skipping never-touched vertices (their sketches are zero).
    /// Returns `None` if no member was ever touched.
    ///
    /// This materializes a [`VertexSketch`]; the round-trip-free path
    /// for hot loops is [`SketchBank::merge_copy_into`] +
    /// [`SketchBank::sample_merged`].
    pub fn merged_copy(&self, members: &[VertexId], copy: usize) -> Option<VertexSketch> {
        let mut scratch = self.new_scratch();
        scratch.reset(copy);
        if self.merge_copy_into(members, &mut scratch) == 0 {
            return None;
        }
        let rep = members
            .iter()
            .copied()
            .find(|&v| self.arena.is_materialized(v))
            .expect("at least one member absorbed");
        let MergeScratch {
            value_sum,
            index_sum,
            fp,
            ..
        } = scratch;
        let inner = L0Sampler::from_raw(self.arena.family(copy).clone(), value_sum, index_sum, fp);
        Some(VertexSketch::from_inner(self.n, rep, inner))
    }
}

impl mpc_snapshot::Persist for SketchBank {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.arena.save(w);
        w.put_u64(self.words);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let arena = SketchArena::load(r)?;
        let words = r.take_u64()?;
        if n == 0 {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "sketch bank over an empty vertex set".into(),
            ));
        }
        let copies = arena.copies();
        // The cached per-column cost is derived state, re-probed the
        // same way the constructor does.
        let words_per_vertex = VertexSketch::new(n, 0, 0).words() * copies as u64;
        Ok(SketchBank {
            n,
            copies,
            arena,
            words,
            words_per_vertex,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::EdgeSample;

    #[test]
    fn lazy_materialization_costs_nothing_upfront() {
        let bank = SketchBank::new(1000, 8, 1);
        assert_eq!(bank.words(), 0);
        assert!(!bank.is_materialized(42));
        assert!(bank.vertex_sketch(42, 0).is_none());
    }

    #[test]
    fn words_grow_only_for_touched_vertices() {
        let mut bank = SketchBank::new(100, 4, 1);
        bank.insert_edge(Edge::new(0, 1));
        let w = bank.words();
        assert_eq!(w, 2 * bank.words_per_vertex());
        bank.insert_edge(Edge::new(0, 2));
        // Vertex 0 already materialized; only vertex 2 added.
        assert_eq!(bank.words(), w + bank.words_per_vertex());
    }

    #[test]
    fn cached_words_per_vertex_matches_probe_sketch() {
        // The cached per-column cost must equal what a freshly seeded
        // probe column would report — the pre-arena accounting.
        for n in [2usize, 16, 100, 1000] {
            let bank = SketchBank::new(n, 5, 3);
            let probe = VertexSketch::new(n, 0, 0);
            assert_eq!(bank.words_per_vertex(), probe.words() * 5, "n = {n}");
        }
    }

    #[test]
    fn copies_are_independent_but_consistent() {
        let mut bank = SketchBank::new(32, 6, 9);
        let e = Edge::new(3, 7);
        bank.insert_edge(e);
        for copy in 0..6 {
            assert_eq!(
                bank.sample_vertex(3, copy),
                EdgeSample::Edge(e),
                "copy {copy}"
            );
            let s = bank.vertex_sketch(3, copy).expect("materialized");
            assert_eq!(s.sample(), EdgeSample::Edge(e), "copy {copy}");
        }
    }

    #[test]
    fn merged_copy_cancels_internal_edges() {
        let mut bank = SketchBank::new(32, 2, 9);
        bank.insert_edge(Edge::new(0, 1));
        bank.insert_edge(Edge::new(1, 2));
        bank.insert_edge(Edge::new(2, 9));
        let set = bank.merged_copy(&[0, 1, 2], 0).expect("touched");
        assert_eq!(set.sample(), EdgeSample::Edge(Edge::new(2, 9)));
        // The scratch path agrees without materializing a sketch.
        let mut scratch = bank.new_scratch();
        scratch.reset(0);
        assert_eq!(bank.merge_copy_into(&[0, 1, 2], &mut scratch), 3);
        assert_eq!(
            bank.sample_merged(&scratch),
            EdgeSample::Edge(Edge::new(2, 9))
        );
    }

    #[test]
    fn merged_copy_of_untouched_vertices_is_none() {
        let bank = SketchBank::new(32, 2, 9);
        assert!(bank.merged_copy(&[5, 6], 0).is_none());
        let mut scratch = bank.new_scratch();
        scratch.reset(1);
        assert_eq!(bank.merge_copy_into(&[5, 6], &mut scratch), 0);
        assert_eq!(bank.sample_merged(&scratch), EdgeSample::Empty);
    }

    #[test]
    fn merged_copy_equals_fold_of_standalone_merges() {
        // The scratch-merge path and the standalone sketch-merge path
        // are different code over the same field operations: their
        // results must be bit-identical.
        let mut bank = SketchBank::new(24, 3, 31);
        for i in 0..8u32 {
            bank.insert_edge(Edge::new(i, i + 8));
            bank.insert_edge(Edge::new(i, (i + 1) % 8));
        }
        let members: Vec<u32> = (0..8).collect();
        for copy in 0..3 {
            let via_scratch = bank.merged_copy(&members, copy).expect("touched");
            let mut fold = bank.vertex_sketch(members[0], copy).expect("touched");
            for &v in &members[1..] {
                fold.merge(&bank.vertex_sketch(v, copy).expect("touched"));
            }
            assert_eq!(via_scratch, fold, "copy {copy}");
        }
    }

    #[test]
    fn delete_restores_zero() {
        let mut bank = SketchBank::new(32, 3, 11);
        let e = Edge::new(4, 5);
        bank.insert_edge(e);
        bank.delete_edge(e);
        for copy in 0..3 {
            let merged = bank.merged_copy(&[4], copy).expect("touched");
            assert_eq!(merged.sample(), EdgeSample::Empty);
            assert_eq!(bank.sample_vertex(4, copy), EdgeSample::Empty);
        }
        // Churn back to zero leaves the accounted words unchanged:
        // the column stays materialized (dense accounted shape).
        assert_eq!(bank.words(), 2 * bank.words_per_vertex());
    }

    #[test]
    fn scratch_accumulates_across_member_lists() {
        // A supernode of two pieces: accumulating both member lists
        // into one scratch equals merging the union directly.
        let mut bank = SketchBank::new(16, 2, 5);
        bank.insert_edge(Edge::new(0, 1));
        bank.insert_edge(Edge::new(1, 2));
        bank.insert_edge(Edge::new(2, 11));
        let mut scratch = bank.new_scratch();
        scratch.reset(0);
        bank.merge_copy_into(&[0, 1], &mut scratch);
        bank.merge_copy_into(&[2], &mut scratch);
        assert_eq!(scratch.absorbed(), 3);
        assert_eq!(
            bank.sample_merged(&scratch),
            EdgeSample::Edge(Edge::new(2, 11))
        );
    }

    #[test]
    fn different_copies_use_different_randomness() {
        let bank = SketchBank::new(64, 2, 123);
        // Same structure, different seeds: the internal samplers must
        // differ (different hash families).
        let a = VertexSketch::new(64, 0, 123);
        let b = VertexSketch::new(64, 0, 124);
        assert_ne!(a, b);
        drop(bank);
    }
}
