//! One-sparse vector recovery.
//!
//! A [`OneSparseCell`] summarizes an integer vector `X` with three
//! linear quantities: the value sum `Σ X_i`, the index-weighted sum
//! `Σ i·X_i`, and a polynomial fingerprint. If `X` has exactly one
//! nonzero coordinate the cell recovers it exactly; vectors that are
//! not one-sparse are rejected with failure probability
//! `≤ support(X) / (2^61 - 1)` (Schwartz–Zippel on the fingerprint).

use mpc_hashing::field::M61;
use mpc_hashing::fingerprint::Fingerprint;

/// Decoded content of a one-sparse cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneSparseDecode {
    /// The summarized vector is (w.h.p.) the zero vector.
    Zero,
    /// The summarized vector has exactly one nonzero coordinate
    /// `index` with value `weight`.
    One {
        /// The nonzero coordinate.
        index: u64,
        /// Its value.
        weight: i64,
    },
    /// The vector has two or more nonzero coordinates (w.h.p.).
    Many,
}

/// A linear summary that exactly recovers one-sparse vectors.
///
/// # Examples
///
/// ```
/// use mpc_sketch::one_sparse::{OneSparseCell, OneSparseDecode};
///
/// let mut c = OneSparseCell::from_seed(7);
/// c.update(99, -2);
/// assert_eq!(
///     c.decode(),
///     OneSparseDecode::One { index: 99, weight: -2 }
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneSparseCell {
    value_sum: i64,
    index_sum: i128,
    fingerprint: Fingerprint,
}

impl OneSparseCell {
    /// Number of `u64` memory words one cell occupies (for the MPC
    /// memory accounting): value sum, two words of index sum, and the
    /// fingerprint accumulator. The shared evaluation point is counted
    /// once per sketch family, not per cell.
    pub const WORDS: u64 = 4;

    /// Creates an empty cell with a seeded fingerprint family.
    pub fn from_seed(seed: u64) -> Self {
        OneSparseCell {
            value_sum: 0,
            index_sum: 0,
            fingerprint: Fingerprint::from_seed(seed),
        }
    }

    /// Creates an empty cell sharing this cell's fingerprint family.
    pub fn fresh(&self) -> Self {
        OneSparseCell {
            value_sum: 0,
            index_sum: 0,
            fingerprint: self.fingerprint.fresh(),
        }
    }

    /// Applies `X[index] += delta`.
    pub fn update(&mut self, index: u64, delta: i64) {
        self.value_sum += delta;
        self.index_sum += index as i128 * delta as i128;
        self.fingerprint.update(index, delta);
    }

    /// Applies `X[index] += delta` with a precomputed fingerprint
    /// term `z^index` (the pair-update fast path).
    pub fn update_with_term(&mut self, index: u64, delta: i64, term: mpc_hashing::field::M61) {
        self.value_sum += delta;
        self.index_sum += index as i128 * delta as i128;
        self.fingerprint.apply_term(term, delta);
    }

    /// The fingerprint term `z^index` of this cell's family.
    pub fn term(&self, index: u64) -> mpc_hashing::field::M61 {
        self.fingerprint.term(index)
    }

    /// Merges another cell of the same family (vector addition).
    ///
    /// # Panics
    ///
    /// Panics if the families differ.
    pub fn merge(&mut self, other: &OneSparseCell) {
        self.value_sum += other.value_sum;
        self.index_sum += other.index_sum;
        self.fingerprint.merge(&other.fingerprint);
    }

    /// Whether every linear counter is zero (true zero vector, or an
    /// astronomically unlikely fingerprint collision).
    pub fn is_zero(&self) -> bool {
        self.value_sum == 0 && self.index_sum == 0 && self.fingerprint.is_zero()
    }

    /// Decodes the cell.
    pub fn decode(&self) -> OneSparseDecode {
        decode_parts(
            self.value_sum,
            self.index_sum,
            self.fingerprint.value(),
            |index, weight| self.fingerprint.expected_one_sparse(index, weight),
        )
    }
}

/// Decodes a bare cell triple (the storage the columnar arena keeps
/// per cell): the value sum, index-weighted sum, and fingerprint
/// accumulator, with the family's expected-fingerprint oracle
/// supplied by the caller. This is the one recovery routine shared by
/// [`OneSparseCell::decode`] and every arena/scratch query path.
pub fn decode_parts(
    value_sum: i64,
    index_sum: i128,
    fp_value: M61,
    expected: impl FnOnce(u64, i64) -> M61,
) -> OneSparseDecode {
    if value_sum == 0 && index_sum == 0 && fp_value.is_zero() {
        return OneSparseDecode::Zero;
    }
    if value_sum != 0 && index_sum % value_sum as i128 == 0 {
        let candidate = index_sum / value_sum as i128;
        if candidate >= 0 && candidate <= u64::MAX as i128 {
            let index = candidate as u64;
            if fp_value == expected(index, value_sum) {
                return OneSparseDecode::One {
                    index,
                    weight: value_sum,
                };
            }
        }
    }
    OneSparseDecode::Many
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_decodes_zero() {
        assert_eq!(OneSparseCell::from_seed(1).decode(), OneSparseDecode::Zero);
    }

    #[test]
    fn single_update_recovered() {
        let mut c = OneSparseCell::from_seed(2);
        c.update(7, 5);
        assert_eq!(
            c.decode(),
            OneSparseDecode::One {
                index: 7,
                weight: 5
            }
        );
    }

    #[test]
    fn negative_weight_recovered() {
        let mut c = OneSparseCell::from_seed(3);
        c.update(0, -1);
        assert_eq!(
            c.decode(),
            OneSparseDecode::One {
                index: 0,
                weight: -1
            }
        );
    }

    #[test]
    fn cancellation_returns_to_zero() {
        let mut c = OneSparseCell::from_seed(4);
        c.update(11, 1);
        c.update(12, 1);
        c.update(11, -1);
        c.update(12, -1);
        assert_eq!(c.decode(), OneSparseDecode::Zero);
    }

    #[test]
    fn two_sparse_rejected() {
        for seed in 0..16 {
            let mut c = OneSparseCell::from_seed(seed);
            c.update(3, 1);
            c.update(9, 1);
            assert_eq!(c.decode(), OneSparseDecode::Many, "seed {seed}");
        }
    }

    #[test]
    fn adversarial_index_mean_rejected() {
        // {3: +1, 9: +1} has value_sum 2, index_sum 12, candidate 6 —
        // only the fingerprint catches this.
        let mut c = OneSparseCell::from_seed(5);
        c.update(3, 1);
        c.update(9, 1);
        assert!(matches!(c.decode(), OneSparseDecode::Many));
    }

    #[test]
    fn merge_is_vector_addition() {
        let base = OneSparseCell::from_seed(6);
        let mut a = base.fresh();
        let mut b = base.fresh();
        a.update(5, 2);
        b.update(5, -2);
        b.update(8, 1);
        a.merge(&b);
        assert_eq!(
            a.decode(),
            OneSparseDecode::One {
                index: 8,
                weight: 1
            }
        );
    }

    #[test]
    fn mixed_sign_cancel_to_one_sparse() {
        let mut c = OneSparseCell::from_seed(7);
        // value_sum becomes 0 while vector is 2-sparse: must not be
        // decoded as Zero or One.
        c.update(2, 1);
        c.update(4, -1);
        assert_eq!(c.decode(), OneSparseDecode::Many);
    }

    #[test]
    #[should_panic(expected = "different evaluation points")]
    fn cross_family_merge_panics() {
        let mut a = OneSparseCell::from_seed(8);
        let b = OneSparseCell::from_seed(9);
        a.merge(&b);
    }
}
