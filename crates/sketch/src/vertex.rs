//! AGM vertex sketches (paper Section 3.1, \[AGM12\]).
//!
//! For each vertex `v` of an `n`-vertex graph, the vector
//! `X_v ∈ {-1,0,+1}^{n×n}` has, for every live edge `{a,b}` with
//! `a < b` incident to `v`: `+1` at coordinate `{a,b}` if `v = b`
//! (the larger endpoint) and `-1` if `v = a`. The point of the sign
//! convention (Lemma 3.3): for any vertex set `A`,
//! `Σ_{v∈A} X_v` has support exactly the cut `E(A, V∖A)` — internal
//! edges appear once with `+1` and once with `-1` and cancel.
//!
//! A [`VertexSketch`] is an [`L0Sampler`] over that vector; sampling
//! it returns a uniform-ish cut edge, which is the replacement-edge
//! primitive of the connectivity algorithm.

use crate::l0::{L0Sampler, SampleOutcome};
use mpc_graph::ids::{Edge, VertexId};

/// Outcome of querying a [`VertexSketch`] (or a merged set sketch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSample {
    /// The cut is (w.h.p.) empty — the paper's `⊥`.
    Empty,
    /// A cut edge.
    Edge(Edge),
    /// The sampler failed; retry with an independent copy.
    Fail,
}

/// A linear sketch of a vertex's (or, after merging, a vertex set's)
/// incidence vector.
///
/// # Examples
///
/// ```
/// use mpc_sketch::vertex::{EdgeSample, VertexSketch};
/// use mpc_graph::ids::Edge;
///
/// let n = 16;
/// let e = Edge::new(3, 5);
/// let mut s3 = VertexSketch::new(n, 3, 42);
/// let mut s5 = VertexSketch::new(n, 5, 42);
/// s3.insert_edge(e);
/// s5.insert_edge(e);
/// // Individually each sees the edge…
/// assert_eq!(s3.sample(), EdgeSample::Edge(e));
/// // …but the sketch of the set {3,5} sees an empty cut.
/// s3.merge(&s5);
/// assert_eq!(s3.sample(), EdgeSample::Empty);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VertexSketch {
    n: usize,
    vertex: VertexId,
    inner: L0Sampler,
}

impl VertexSketch {
    /// Creates the sketch of vertex `v` in an `n`-vertex graph. All
    /// sketches that may ever be merged must share `seed`.
    pub fn new(n: usize, v: VertexId, seed: u64) -> Self {
        VertexSketch {
            n,
            vertex: v,
            inner: L0Sampler::new((n as u64) * (n as u64), seed),
        }
    }

    /// Wraps an existing sampler column as vertex `v`'s sketch (the
    /// bank materializes arena columns and merge results this way).
    pub(crate) fn from_inner(n: usize, v: VertexId, inner: L0Sampler) -> Self {
        VertexSketch {
            n,
            vertex: v,
            inner,
        }
    }

    /// The vertex this sketch was created for (merging keeps the
    /// first vertex as a representative label).
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// A zero sketch for vertex `v` in this sketch's family (shares
    /// all seeded randomness; no re-seeding work).
    pub fn fresh_for(&self, v: VertexId) -> VertexSketch {
        VertexSketch {
            n: self.n,
            vertex: v,
            inner: self.inner.fresh(),
        }
    }

    /// Memory footprint in `u64` words.
    pub fn words(&self) -> u64 {
        self.inner.words() + 1
    }

    /// The `±1` delta vertex `v` contributes at edge `e`'s coordinate.
    fn sign(v: VertexId, e: Edge) -> i64 {
        if v == e.v() {
            1 // larger endpoint
        } else {
            debug_assert_eq!(v, e.u(), "vertex must be an endpoint");
            -1
        }
    }

    /// Records the insertion of a live edge incident to this vertex.
    ///
    /// # Panics
    ///
    /// Panics if the sketch's vertex is not an endpoint of `e`.
    pub fn insert_edge(&mut self, e: Edge) {
        // lint: allow(panic-reachability): documented "# Panics" precondition — incidence is guaranteed by the routing layer
        assert!(e.touches(self.vertex), "{e} not incident to sketch vertex");
        self.inner
            .update(e.index(self.n), Self::sign(self.vertex, e));
    }

    /// Records the deletion of a live edge incident to this vertex.
    ///
    /// # Panics
    ///
    /// Panics if the sketch's vertex is not an endpoint of `e`.
    pub fn delete_edge(&mut self, e: Edge) {
        // lint: allow(panic-reachability): documented "# Panics" precondition — incidence is guaranteed by the routing layer
        assert!(e.touches(self.vertex), "{e} not incident to sketch vertex");
        self.inner
            .update(e.index(self.n), -Self::sign(self.vertex, e));
    }

    /// Records an edge update in both endpoints' sketches of one
    /// copy at once (`delta = +1` insert, `-1` delete): the level and
    /// fingerprint term are computed once — the sketches share their
    /// family — and applied with the endpoint signs.
    ///
    /// # Panics
    ///
    /// Panics unless `a` sketches `e.u()` and `b` sketches `e.v()` in
    /// the same family.
    pub fn update_edge_pair(a: &mut VertexSketch, b: &mut VertexSketch, e: Edge, delta: i64) {
        assert_eq!(
            (a.vertex, b.vertex),
            (e.u(), e.v()),
            "pair update endpoints must match the edge"
        );
        let index = e.index(a.n);
        // Sign convention: the larger endpoint (v) carries +1.
        L0Sampler::update_pair(&mut b.inner, &mut a.inner, index, delta, -delta);
    }

    /// Merges another vertex's sketch (same seed family): the result
    /// sketches `X_A` for the union of the merged vertex sets.
    ///
    /// # Panics
    ///
    /// Panics if the families differ.
    pub fn merge(&mut self, other: &VertexSketch) {
        assert_eq!(self.n, other.n, "sketches must target the same graph size");
        self.inner.merge(&other.inner);
    }

    /// Whether the summarized cut is empty (w.h.p.).
    pub fn is_empty_cut(&self) -> bool {
        self.inner.is_zero()
    }

    /// Samples a cut edge together with its multiplicity, for
    /// multigraph streams (the paper's Section 1.2 notes parallel
    /// edges need only "minor modifications" — this is the
    /// modification). With parallel edges a cut coordinate carries
    /// `±c` for multiplicity `c`; internal edges still cancel exactly
    /// by linearity, so any nonzero recovered coordinate is a true
    /// cut edge.
    ///
    /// Returns `None` for an empty cut or a sampler failure.
    pub fn sample_multigraph(&self) -> Option<(Edge, u64)> {
        match self.inner.sample() {
            SampleOutcome::Sample { index, weight } if weight != 0 => {
                Some((Edge::from_index(index, self.n), weight.unsigned_abs()))
            }
            _ => None,
        }
    }

    /// Samples a cut edge.
    pub fn sample(&self) -> EdgeSample {
        edge_sample_from(self.inner.sample(), self.n)
    }
}

/// Maps a raw sampler outcome onto the simple-graph edge-sampling
/// contract — shared by [`VertexSketch::sample`] and the bank's
/// arena/scratch query paths.
pub(crate) fn edge_sample_from(outcome: SampleOutcome, n: usize) -> EdgeSample {
    match outcome {
        SampleOutcome::Zero => EdgeSample::Empty,
        SampleOutcome::Fail => EdgeSample::Fail,
        SampleOutcome::Sample { index, weight } => {
            // In a simple graph, cut coordinates carry ±1 exactly;
            // anything else is a (vanishingly unlikely) decoding
            // artifact. Multigraph streams use
            // [`VertexSketch::sample_multigraph`] instead.
            if weight.abs() == 1 {
                EdgeSample::Edge(Edge::from_index(index, n))
            } else {
                EdgeSample::Fail
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::oracle::UnionFind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SEED: u64 = 777;

    fn sketch_all(n: usize, edges: &[Edge]) -> Vec<VertexSketch> {
        let mut sketches: Vec<VertexSketch> = (0..n as u32)
            .map(|v| VertexSketch::new(n, v, SEED))
            .collect();
        for &e in edges {
            sketches[e.u() as usize].insert_edge(e);
            sketches[e.v() as usize].insert_edge(e);
        }
        sketches
    }

    #[test]
    fn isolated_vertex_is_empty() {
        let s = VertexSketch::new(8, 3, SEED);
        assert_eq!(s.sample(), EdgeSample::Empty);
        assert!(s.is_empty_cut());
    }

    #[test]
    fn single_incident_edge_sampled() {
        let e = Edge::new(2, 6);
        let mut s = VertexSketch::new(8, 2, SEED);
        s.insert_edge(e);
        assert_eq!(s.sample(), EdgeSample::Edge(e));
    }

    #[test]
    fn deletion_cancels_insertion() {
        let e = Edge::new(1, 4);
        let mut s = VertexSketch::new(8, 4, SEED);
        s.insert_edge(e);
        s.delete_edge(e);
        assert_eq!(s.sample(), EdgeSample::Empty);
    }

    #[test]
    fn internal_edges_cancel_in_set_sketch() {
        // Component {0,1,2} as a triangle plus one outgoing edge to 5.
        let n = 8;
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(2, 5),
        ];
        let sketches = sketch_all(n, &edges);
        let mut set = sketches[0].clone();
        set.merge(&sketches[1]);
        set.merge(&sketches[2]);
        // The only cut edge of {0,1,2} is {2,5}.
        assert_eq!(set.sample(), EdgeSample::Edge(Edge::new(2, 5)));
    }

    #[test]
    fn saturated_component_reports_empty_cut() {
        let n = 6;
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let sketches = sketch_all(n, &edges);
        let mut set = sketches[0].clone();
        set.merge(&sketches[1]);
        set.merge(&sketches[2]);
        assert_eq!(set.sample(), EdgeSample::Empty);
    }

    #[test]
    fn sampled_edge_always_crosses_the_cut() {
        let mut rng = StdRng::seed_from_u64(31337);
        let n = 32;
        let mut hits = 0;
        for trial in 0..100u64 {
            // Random graph + random vertex set A.
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.1) {
                        edges.push(Edge::new(a, b));
                    }
                }
            }
            let in_a: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let mut sketches: Vec<VertexSketch> = (0..n as u32)
                .map(|v| VertexSketch::new(n, v, trial))
                .collect();
            for &e in &edges {
                sketches[e.u() as usize].insert_edge(e);
                sketches[e.v() as usize].insert_edge(e);
            }
            let members: Vec<u32> = (0..n as u32).filter(|&v| in_a[v as usize]).collect();
            if members.is_empty() {
                continue;
            }
            let mut set = sketches[members[0] as usize].clone();
            for &v in &members[1..] {
                set.merge(&sketches[v as usize]);
            }
            let cut: Vec<Edge> = edges
                .iter()
                .copied()
                .filter(|e| in_a[e.u() as usize] != in_a[e.v() as usize])
                .collect();
            match set.sample() {
                EdgeSample::Edge(e) => {
                    assert!(cut.contains(&e), "sampled {e} not in cut (trial {trial})");
                    hits += 1;
                }
                EdgeSample::Empty => {
                    assert!(cut.is_empty(), "cut nonempty but reported empty");
                }
                EdgeSample::Fail => {}
            }
        }
        assert!(hits > 40, "too few successful samples: {hits}");
    }

    #[test]
    fn spanning_forest_via_boruvka_on_sketches() {
        // End-to-end AGM property: one Borůvka pass per fresh sketch
        // family connects a path graph.
        let n = 16usize;
        let edges: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
        let mut uf = UnionFind::new(n);
        // Up to log2(n) passes with fresh seeds.
        for pass in 0..10u64 {
            if uf.component_count() == 1 {
                break;
            }
            let mut sketches: Vec<VertexSketch> = (0..n as u32)
                .map(|v| VertexSketch::new(n, v, 1000 + pass))
                .collect();
            for &e in &edges {
                sketches[e.u() as usize].insert_edge(e);
                sketches[e.v() as usize].insert_edge(e);
            }
            // Merge per current component, query, union.
            let mut comp_sketch: std::collections::HashMap<u32, VertexSketch> = Default::default();
            for v in 0..n as u32 {
                let root = uf.find(v);
                comp_sketch
                    .entry(root)
                    .and_modify(|s| s.merge(&sketches[v as usize]))
                    .or_insert_with(|| sketches[v as usize].clone());
            }
            for (_, s) in comp_sketch {
                if let EdgeSample::Edge(e) = s.sample() {
                    uf.union(e.u(), e.v());
                }
            }
        }
        assert_eq!(uf.component_count(), 1, "Borůvka over sketches connected");
    }

    #[test]
    #[should_panic(expected = "not incident")]
    fn foreign_edge_panics() {
        let mut s = VertexSketch::new(8, 0, SEED);
        s.insert_edge(Edge::new(1, 2));
    }

    #[test]
    fn parallel_edges_accumulate_multiplicity() {
        // The paper's parallel-edge remark: inserting the same edge
        // twice yields coordinate ±2, recovered with multiplicity.
        let n = 16;
        let e = Edge::new(3, 5);
        let mut s = VertexSketch::new(n, 3, SEED);
        s.insert_edge(e);
        s.insert_edge(e);
        assert_eq!(s.sample_multigraph(), Some((e, 2)));
        // The simple-graph sampler correctly refuses the coordinate.
        assert_eq!(s.sample(), EdgeSample::Fail);
        // Deleting one copy leaves a simple edge again.
        s.delete_edge(e);
        assert_eq!(s.sample(), EdgeSample::Edge(e));
        assert_eq!(s.sample_multigraph(), Some((e, 1)));
        // Deleting the last copy empties the cut.
        s.delete_edge(e);
        assert!(s.is_empty_cut());
        assert_eq!(s.sample_multigraph(), None);
    }

    #[test]
    fn parallel_internal_edges_cancel_in_set_sketches() {
        // A doubled internal edge cancels (+2 meets -2); a doubled
        // cut edge survives with multiplicity 2.
        let n = 16;
        let internal = Edge::new(1, 2);
        let cut = Edge::new(2, 9);
        let mut s1 = VertexSketch::new(n, 1, SEED);
        let mut s2 = VertexSketch::new(n, 2, SEED);
        for _ in 0..2 {
            s1.insert_edge(internal);
            s2.insert_edge(internal);
            s2.insert_edge(cut);
        }
        s1.merge(&s2);
        assert_eq!(s1.sample_multigraph(), Some((cut, 2)));
    }
}
