//! x86-64 SSE2 kernels: 128-bit lanes, two cells (or two scratch
//! columns) per step.
//!
//! SSE2 has no 64-bit compare or test instruction, so the two
//! non-trivial lane operations are synthesized from boolean algebra
//! on sign bits:
//!
//! * **Carry of a 64-bit lane add** (for 128-bit `index_sum`):
//!   `carry = ((d & a) | ((d | a) & !s)) >> 63` where `s = d + a` —
//!   the textbook full-adder carry-out expression evaluated on the
//!   sign bits, then shifted into the next lane with `slli_si128`.
//! * **`GF(2^61 - 1)` conditional subtract**: `t = s - P` and
//!   `s < P ⟺ t` is negative (for `s < 2P < 2^62`), so the select
//!   mask is `t`'s sign bit, extracted by broadcasting each lane's
//!   high 32 bits (`shuffle_epi32` with `0xF5`) and arithmetic
//!   right-shifting them (`srai_epi32` by 31). Subtracting a `P`
//!   vector of `[0, P]` makes the same select a no-op on a lane that
//!   must stay unreduced (the `t = s` branch and the `s` branch
//!   coincide), which is how mixed `[value_sum, fp]` vectors reduce
//!   only their fingerprint lane.
//!
//! Every load/store is unaligned (`loadu`/`storeu`): the cell pool is
//! only 16-byte aligned and spans start at arbitrary cells. Bodies
//! iterate `chunks_exact` zips so all pointer arithmetic stays inside
//! bounds proven by the chunk lengths; tails fall back to
//! [`portable`].

#![allow(unsafe_code)]

use super::portable;
use crate::arena::Cell;
use mpc_hashing::field::{M61, P};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// Lane-wise `a + b` in `GF(2^61 - 1)` for reduced lanes, with the
/// conditional subtract controlled by `p_vec` per lane: a lane of `P`
/// reduces, a lane of `0` passes the wrapping sum through untouched.
///
/// # Safety
/// SAFETY: requires SSE2 (guaranteed on x86-64; callers are
/// `#[target_feature(enable = "sse2")]` functions).
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn m61_add_lanes(a: __m128i, b: __m128i, p_vec: __m128i) -> __m128i {
    let s = _mm_add_epi64(a, b);
    let t = _mm_sub_epi64(s, p_vec);
    // Broadcast each 64-bit lane's sign bit into a full-lane mask:
    // copy the high 32 bits over the low (0xF5 = lanes [1,1,3,3]),
    // then arithmetic-shift those 32-bit words by 31.
    let sign = _mm_srai_epi32(_mm_shuffle_epi32(t, 0xF5), 31);
    // t negative (s < P): keep s.  t non-negative (s >= P): keep t.
    _mm_or_si128(_mm_and_si128(sign, s), _mm_andnot_si128(sign, t))
}

/// Lane-wise carry-out of `s = d + a` as a 0/1 value in each lane:
/// the full-adder carry expression on sign bits.
///
/// # Safety
/// SAFETY: requires SSE2 (see [`m61_add_lanes`]).
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn carry_lanes(d: __m128i, a: __m128i, s: __m128i) -> __m128i {
    let both = _mm_and_si128(d, a);
    let either = _mm_or_si128(d, a);
    let c = _mm_or_si128(both, _mm_andnot_si128(s, either));
    _mm_srli_epi64(c, 63)
}

/// Adds the two halves of one cell (`[index_lo, index_hi]` and
/// `[value_sum, fp]`) of `src` into `dst` in place.
///
/// # Safety
/// SAFETY: requires SSE2; `dst`/`src` must be valid cell pointers. `Cell` is
/// `repr(C)` with the documented four-lane layout, all lanes plain
/// integers, and the fingerprint lane stays reduced because the
/// conditional subtract mirrors `M61::add` exactly.
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn fold_one_cell(dst: *mut Cell, src: *const Cell) {
    let d_lo = _mm_loadu_si128(dst as *const __m128i);
    let a_lo = _mm_loadu_si128(src as *const __m128i);
    let s_lo = _mm_add_epi64(d_lo, a_lo);
    // 128-bit add: the low lane's carry moves up one lane; the high
    // lane's carry is shifted out (i128 wrapping add).
    let carry = _mm_slli_si128(carry_lanes(d_lo, a_lo, s_lo), 8);
    let is = _mm_add_epi64(s_lo, carry);
    _mm_storeu_si128(dst as *mut __m128i, is);

    let d_hi = _mm_loadu_si128((dst as *const __m128i).add(1));
    let a_hi = _mm_loadu_si128((src as *const __m128i).add(1));
    // Lane 0 (value_sum) wraps: P-lane 0 makes the select a no-op.
    // Lane 1 (fp) reduces modulo P.
    let p_vec = _mm_set_epi64x(P as i64, 0);
    let vf = m61_add_lanes(d_hi, a_hi, p_vec);
    _mm_storeu_si128((dst as *mut __m128i).add(1), vf);
}

/// SSE2 [`fold_cells_soa`](super::KernelKind::fold_cells_soa): two
/// cells per step, transposing `[value_sum, fp]` halves into the
/// struct-of-arrays columns with `unpacklo/hi_epi64`; `index_sum`
/// stays scalar (`add`/`adc` beats two-instruction carry emulation).
///
/// # Safety
/// SAFETY: requires SSE2 (callers dispatch only after feature detection).
/// Slice lengths must be equal; all pointer arithmetic is within
/// `chunks_exact(2)` chunks.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn fold_cells_soa(src: &[Cell], vs: &mut [i64], is: &mut [i128], fp: &mut [M61]) {
    let mut cells = src.chunks_exact(2);
    let mut vs_it = vs.chunks_exact_mut(2);
    let mut is_it = is.chunks_exact_mut(2);
    let mut fp_it = fp.chunks_exact_mut(2);
    let p_pair = _mm_set1_epi64x(P as i64);
    for (((c, v), i), f) in (&mut cells).zip(&mut vs_it).zip(&mut is_it).zip(&mut fp_it) {
        let b0 = _mm_loadu_si128((c.as_ptr() as *const __m128i).add(1));
        let b1 = _mm_loadu_si128((c.as_ptr() as *const __m128i).add(3));
        let v_col = _mm_unpacklo_epi64(b0, b1);
        let f_col = _mm_unpackhi_epi64(b0, b1);
        let v_dst = _mm_loadu_si128(v.as_ptr() as *const __m128i);
        _mm_storeu_si128(v.as_mut_ptr() as *mut __m128i, _mm_add_epi64(v_dst, v_col));
        let f_dst = _mm_loadu_si128(f.as_ptr() as *const __m128i);
        let f_sum = m61_add_lanes(f_dst, f_col, p_pair);
        _mm_storeu_si128(f.as_mut_ptr() as *mut __m128i, f_sum);
        i[0] = i[0].wrapping_add(c[0].index_sum);
        i[1] = i[1].wrapping_add(c[1].index_sum);
    }
    portable::fold_cells_soa(
        cells.remainder(),
        vs_it.into_remainder(),
        is_it.into_remainder(),
        fp_it.into_remainder(),
    );
}

/// SSE2 [`fold_cells`](super::KernelKind::fold_cells): per-cell
/// vector fold of one interleaved column into another.
///
/// # Safety
/// SAFETY: requires SSE2; slice lengths must be equal (pointers stay inside
/// the zipped elements).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn fold_cells(dst: &mut [Cell], src: &[Cell]) {
    for (d, s) in dst.iter_mut().zip(src) {
        fold_one_cell(d, s);
    }
}

/// SSE2 [`fold_soa`](super::KernelKind::fold_soa): two lanes per step
/// on the value and fingerprint columns, scalar `index_sum`.
///
/// # Safety
/// SAFETY: requires SSE2; paired slices must have equal lengths.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn fold_soa(
    dst_vs: &mut [i64],
    dst_is: &mut [i128],
    dst_fp: &mut [M61],
    src_vs: &[i64],
    src_is: &[i128],
    src_fp: &[M61],
) {
    let mut d_it = dst_vs.chunks_exact_mut(2);
    let mut s_it = src_vs.chunks_exact(2);
    for (d, s) in (&mut d_it).zip(&mut s_it) {
        let sum = _mm_add_epi64(
            _mm_loadu_si128(d.as_ptr() as *const __m128i),
            _mm_loadu_si128(s.as_ptr() as *const __m128i),
        );
        _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, sum);
    }
    for (d, s) in d_it.into_remainder().iter_mut().zip(s_it.remainder()) {
        *d = d.wrapping_add(*s);
    }
    for (d, s) in dst_is.iter_mut().zip(src_is) {
        *d = d.wrapping_add(*s);
    }
    let p_pair = _mm_set1_epi64x(P as i64);
    let mut df_it = dst_fp.chunks_exact_mut(2);
    let mut sf_it = src_fp.chunks_exact(2);
    for (d, s) in (&mut df_it).zip(&mut sf_it) {
        let sum = m61_add_lanes(
            _mm_loadu_si128(d.as_ptr() as *const __m128i),
            _mm_loadu_si128(s.as_ptr() as *const __m128i),
            p_pair,
        );
        _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, sum);
    }
    for (d, s) in df_it.into_remainder().iter_mut().zip(sf_it.remainder()) {
        *d += *s;
    }
}

/// SSE2 [`cell_apply`](super::KernelKind::cell_apply): materializes
/// the update as a delta cell `[weighted, delta, fp_delta]` and folds
/// it in with the per-cell vector fold.
///
/// # Safety
/// SAFETY: requires SSE2; `cell` is a valid exclusive reference.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn cell_apply(cell: &mut Cell, weighted: i128, delta: i64, term: M61) {
    let delta_cell = Cell {
        index_sum: weighted.wrapping_mul(delta as i128),
        value_sum: delta,
        fp: super::fp_delta(term, delta),
    };
    fold_one_cell(cell, &delta_cell);
}

/// Whether the 32-byte cell at `c` is all-zero, via one vector OR and
/// a byte-equality movemask (SSE2 has no 64-bit test instruction).
///
/// # Safety
/// SAFETY: requires SSE2; `c` must be a valid cell pointer.
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn cell_is_zero(c: *const Cell) -> bool {
    let lo = _mm_loadu_si128(c as *const __m128i);
    let hi = _mm_loadu_si128((c as *const __m128i).add(1));
    let or = _mm_or_si128(lo, hi);
    let eq = _mm_cmpeq_epi32(or, _mm_setzero_si128());
    _mm_movemask_epi8(eq) == 0xFFFF
}

/// SSE2 [`top_nonzero_cells`](super::KernelKind::top_nonzero_cells):
/// downward scan with one vector zero-test per cell.
///
/// # Safety
/// SAFETY: requires SSE2; `below <= cells.len()` (checked by the slice
/// index).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn top_nonzero_cells(cells: &[Cell], below: usize) -> Option<usize> {
    let live = &cells[..below];
    (0..live.len()).rev().find(|&j| !cell_is_zero(&live[j]))
}

/// SSE2 [`top_nonzero_soa`](super::KernelKind::top_nonzero_soa):
/// downward scan ORing all three columns per index.
///
/// # Safety
/// SAFETY: requires SSE2; `below` must not exceed the common slice length.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn top_nonzero_soa(
    vs: &[i64],
    is: &[i128],
    fp: &[M61],
    below: usize,
) -> Option<usize> {
    (0..below).rev().find(|&j| {
        let i_vec = _mm_loadu_si128(&is[j] as *const i128 as *const __m128i);
        let vf = _mm_set_epi64x(fp[j].value() as i64, vs[j]);
        let eq = _mm_cmpeq_epi32(_mm_or_si128(i_vec, vf), _mm_setzero_si128());
        _mm_movemask_epi8(eq) != 0xFFFF
    })
}
