//! Portable scalar kernels — the behavioral reference for every
//! vectorized tier, and the tail handler the SIMD paths fall back to
//! for the last partial chunk of a span.
//!
//! The loops are written over `chunks_exact` zips with simple
//! per-field bodies so LLVM can auto-vectorize them on targets where
//! the hand-written tiers are unavailable. All integer sums use
//! wrapping arithmetic explicitly: the arena's accounting is defined
//! over two's-complement wrap (a cancellation can transit through
//! "negative" partial sums), and the SIMD lanes wrap by construction,
//! so the scalar reference must too.

use crate::arena::Cell;
use mpc_hashing::field::M61;
#[cfg(test)]
use mpc_hashing::field::P;

/// `GF(2^61 - 1)` add over raw reduced representatives: one add
/// (cannot overflow: both inputs `< 2^61`) and one conditional
/// subtract. This is bit-for-bit `M61::add`, restated over `u64` as
/// the exact recipe the SIMD tiers mirror lane-wise.
#[cfg(test)]
pub(crate) fn m61_add_raw(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Folds a span of interleaved cells into struct-of-arrays scratch
/// columns. Slices must have equal length (checked by the zip).
pub(crate) fn fold_cells_soa(src: &[Cell], vs: &mut [i64], is: &mut [i128], fp: &mut [M61]) {
    for (((c, v), i), f) in src.iter().zip(vs).zip(is).zip(fp) {
        *v = v.wrapping_add(c.value_sum);
        *i = i.wrapping_add(c.index_sum);
        *f += c.fp;
    }
}

/// Folds one interleaved cell column into another, component-wise.
pub(crate) fn fold_cells(dst: &mut [Cell], src: &[Cell]) {
    for (d, s) in dst.iter_mut().zip(src) {
        d.absorb(s);
    }
}

/// Folds one struct-of-arrays column into another (stealing-merge
/// partial fold).
pub(crate) fn fold_soa(
    dst_vs: &mut [i64],
    dst_is: &mut [i128],
    dst_fp: &mut [M61],
    src_vs: &[i64],
    src_is: &[i128],
    src_fp: &[M61],
) {
    for (d, s) in dst_vs.iter_mut().zip(src_vs) {
        *d = d.wrapping_add(*s);
    }
    for (d, s) in dst_is.iter_mut().zip(src_is) {
        *d = d.wrapping_add(*s);
    }
    for (d, s) in dst_fp.iter_mut().zip(src_fp) {
        *d += *s;
    }
}

/// Applies `X[index] += delta` to one cell given the widened index
/// `weighted` and the fingerprint term: value/index wrapping adds
/// plus the fingerprint term fold (see [`fp_delta`](super::fp_delta)
/// for the equivalence argument).
#[inline]
pub(crate) fn cell_apply(cell: &mut Cell, weighted: i128, delta: i64, term: M61) {
    cell.value_sum = cell.value_sum.wrapping_add(delta);
    cell.index_sum = cell
        .index_sum
        .wrapping_add(weighted.wrapping_mul(delta as i128));
    cell.fp += super::fp_delta(term, delta);
}

/// Highest nonzero cell strictly below `below`, scanning downward.
pub(crate) fn top_nonzero_cells(cells: &[Cell], below: usize) -> Option<usize> {
    cells[..below].iter().rposition(|c| !c.is_zero())
}

/// Highest index strictly below `below` where any of the three
/// struct-of-arrays columns is nonzero.
pub(crate) fn top_nonzero_soa(vs: &[i64], is: &[i128], fp: &[M61], below: usize) -> Option<usize> {
    (0..below)
        .rev()
        .find(|&j| vs[j] != 0 || is[j] != 0 || !fp[j].is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m61_add_raw_matches_field_add() {
        let cases = [0u64, 1, 7, P - 1, P / 2, 0x1234_5678_9abc];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(
                    m61_add_raw(a, b),
                    (M61::from_reduced(a) + M61::from_reduced(b)).value(),
                    "{a} + {b}"
                );
            }
        }
    }

    #[test]
    fn top_nonzero_scans() {
        let mut cells = vec![Cell::ZERO; 8];
        assert_eq!(top_nonzero_cells(&cells, 8), None);
        cells[3].value_sum = 1;
        cells[6].fp = M61::new(9);
        assert_eq!(top_nonzero_cells(&cells, 8), Some(6));
        assert_eq!(top_nonzero_cells(&cells, 6), Some(3));
        assert_eq!(top_nonzero_cells(&cells, 3), None);

        let vs = [0i64, 0, 0, 0];
        let is = [0i128, 5, 0, 0];
        let fp = [M61::ZERO, M61::ZERO, M61::ZERO, M61::new(2)];
        assert_eq!(top_nonzero_soa(&vs, &is, &fp, 4), Some(3));
        assert_eq!(top_nonzero_soa(&vs, &is, &fp, 3), Some(1));
        assert_eq!(top_nonzero_soa(&vs, &is, &fp, 1), None);
    }
}
