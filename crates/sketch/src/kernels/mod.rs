//! Runtime-dispatched vectorized kernels for the sketch arena.
//!
//! Every maintained structure bottoms out in the same flat loops over
//! interleaved 32-byte one-sparse cells: the converge-cast column
//! folds of [`SketchArena::merge_into`], the span-partial folds of
//! the stealing merge, the `update`/`update_pair` cell-write path,
//! and the zero-skip scan in front of `decode_parts` on the sample
//! paths. This module implements those loops three times —
//!
//! * [`portable`] — safe scalar code shaped for auto-vectorization,
//!   the behavioral reference on every architecture;
//! * [`sse2`] — x86-64 baseline vectors (2 cells per step);
//! * [`avx2`] — 256-bit vectors (4 cells per step, 4×4 lane
//!   transposes between the interleaved pool and the
//!   struct-of-arrays scratch).
//!
//! — and selects one tier per [`SketchArena`] at construction via
//! [`KernelKind::selected`]: the best tier the host CPU reports
//! (`is_x86_feature_detected!`), overridable with
//! `MPC_KERNEL=scalar|sse2|avx2` (parsed by
//! [`mpc_sim::kernel_from_env`]; an unsupported request clamps down
//! to what the host can run, never up).
//!
//! # The bit-identity contract
//!
//! Every kernel computes **exactly** the arithmetic of the scalar
//! path: two's-complement wrapping adds for the value and
//! index-weighted sums, and the `GF(2^61 - 1)` conditional-subtract
//! add for fingerprints — no floats, no reassociation of anything
//! non-associative. Same seeds, same stream ⇒ bit-identical cells,
//! bit-identical samples, bit-identical snapshot bytes, at every
//! tier. The property suite in `crates/sketch/tests/` pins all three
//! tiers against each other; the workspace equivalence / determinism
//! / snapshot suites pin the whole layer end to end. `words()`
//! accounting never looks at the kernel tier.
//!
//! [`SketchArena`]: crate::arena::SketchArena
//! [`SketchArena::merge_into`]: crate::arena::SketchArena::merge_into

// The dispatch arms below call `#[target_feature]` functions, which
// is an unsafe operation even though every call site is guarded by
// feature detection.
#![allow(unsafe_code)]

use crate::arena::Cell;
use mpc_hashing::field::M61;

pub mod portable;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod sse2;

/// One vectorization tier of the arena kernels. `Scalar` exists on
/// every architecture; `Sse2`/`Avx2` are selectable only where the
/// host CPU reports the feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelKind {
    /// Portable scalar loops (auto-vectorization friendly).
    Scalar,
    /// x86-64 SSE2: 128-bit lanes, two cells per step.
    Sse2,
    /// x86-64 AVX2: 256-bit lanes, four cells per step.
    Avx2,
}

impl KernelKind {
    /// Short lowercase tier name (`"scalar"` / `"sse2"` / `"avx2"`),
    /// matching the `MPC_KERNEL` vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse2 => "sse2",
            KernelKind::Avx2 => "avx2",
        }
    }

    /// Whether this tier can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelKind::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The best tier the host CPU supports (ignoring any override).
    pub fn detect_best() -> KernelKind {
        if KernelKind::Avx2.is_available() {
            KernelKind::Avx2
        } else if KernelKind::Sse2.is_available() {
            KernelKind::Sse2
        } else {
            KernelKind::Scalar
        }
    }

    /// This tier if the host supports it, otherwise the best tier the
    /// host does support — requests degrade, they never escalate past
    /// what was asked for into undefined behavior.
    pub fn clamped(self) -> KernelKind {
        if self.is_available() {
            self
        } else {
            KernelKind::detect_best().min(self)
        }
    }

    /// The process-wide selected tier: the `MPC_KERNEL` override
    /// (clamped to host support) if present, else
    /// [`KernelKind::detect_best`]. Computed once and cached — every
    /// arena constructed in this process without an explicit
    /// [`set_kernel`](crate::arena::SketchArena::set_kernel) call
    /// uses this tier.
    pub fn selected() -> KernelKind {
        static SELECTED: std::sync::OnceLock<KernelKind> = std::sync::OnceLock::new();
        *SELECTED.get_or_init(|| {
            let requested = match mpc_sim::kernel_from_env() {
                Some(mpc_sim::KernelOverride::Scalar) => Some(KernelKind::Scalar),
                Some(mpc_sim::KernelOverride::Sse2) => Some(KernelKind::Sse2),
                Some(mpc_sim::KernelOverride::Avx2) => Some(KernelKind::Avx2),
                None => None,
            };
            match requested {
                Some(k) => k.clamped(),
                None => KernelKind::detect_best(),
            }
        })
    }

    /// Folds a span of interleaved cells into the struct-of-arrays
    /// scratch slices: `vs[j] += src[j].value_sum`, `is[j] +=
    /// src[j].index_sum`, `fp[j] += src[j].fp` (field add). All four
    /// slices must have equal length.
    ///
    /// Dispatch is per-op: the `Avx2` tier routes this one op to the
    /// scalar reference. The interleaved→SoA gather spans i128 cell
    /// fields across 256-bit lanes and reduces fingerprints one lane
    /// at a time, and BENCH_PR9 measured the AVX2 body ~20% *slower*
    /// than the auto-vectorized scalar loop on `sketch/merged_copy`
    /// (p50 ≈ 1.03µs vs 0.82µs). Bit-identity makes the reroute
    /// observable only in the timer; `MPC_KERNEL` still selects the
    /// tier, this only picks the fastest body for the op.
    #[inline]
    pub(crate) fn fold_cells_soa(
        self,
        src: &[Cell],
        vs: &mut [i64],
        is: &mut [i128],
        fp: &mut [M61],
    ) {
        debug_assert!(vs.len() == src.len() && is.len() == src.len() && fp.len() == src.len());
        match self {
            KernelKind::Scalar => portable::fold_cells_soa(src, vs, is, fp),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Sse2`/`Avx2` are only reachable through
            // `clamped()`/`selected()`, which verify the host reports
            // the feature via `is_x86_feature_detected!`.
            KernelKind::Sse2 => unsafe { sse2::fold_cells_soa(src, vs, is, fp) },
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => portable::fold_cells_soa(src, vs, is, fp),
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::fold_cells_soa(src, vs, is, fp),
        }
    }

    /// Folds one interleaved cell column into another (`dst[j] +=
    /// src[j]`, component-wise). Both slices must have equal length.
    #[inline]
    pub(crate) fn fold_cells(self, dst: &mut [Cell], src: &[Cell]) {
        debug_assert!(dst.len() == src.len());
        match self {
            KernelKind::Scalar => portable::fold_cells(dst, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected sse2 (see fold_cells_soa).
            KernelKind::Sse2 => unsafe { sse2::fold_cells(dst, src) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected avx2.
            KernelKind::Avx2 => unsafe { avx2::fold_cells(dst, src) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::fold_cells(dst, src),
        }
    }

    /// Folds one struct-of-arrays column into another (the span-order
    /// partial fold of the stealing merge). All six slices must have
    /// equal length.
    #[inline]
    pub(crate) fn fold_soa(
        self,
        dst_vs: &mut [i64],
        dst_is: &mut [i128],
        dst_fp: &mut [M61],
        src_vs: &[i64],
        src_is: &[i128],
        src_fp: &[M61],
    ) {
        debug_assert!(dst_vs.len() == src_vs.len() && dst_is.len() == src_is.len());
        debug_assert!(dst_fp.len() == src_fp.len());
        match self {
            KernelKind::Scalar => {
                portable::fold_soa(dst_vs, dst_is, dst_fp, src_vs, src_is, src_fp)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected sse2 (see fold_cells_soa).
            KernelKind::Sse2 => unsafe {
                sse2::fold_soa(dst_vs, dst_is, dst_fp, src_vs, src_is, src_fp)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected avx2.
            KernelKind::Avx2 => unsafe {
                avx2::fold_soa(dst_vs, dst_is, dst_fp, src_vs, src_is, src_fp)
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::fold_soa(dst_vs, dst_is, dst_fp, src_vs, src_is, src_fp),
        }
    }

    /// The one-cell write kernel behind `update`/`update_pair`:
    /// applies `X[index] += delta` to a cell given the precomputed
    /// widened index and fingerprint term. Exactly
    /// [`Cell::apply`](crate::arena::Cell)'s arithmetic — the ±1 fast
    /// paths add `±term` in the field, which equals the accumulate
    /// routine's `acc ± term` bit for bit.
    #[inline]
    pub(crate) fn cell_apply(self, cell: &mut Cell, weighted: i128, delta: i64, term: M61) {
        match self {
            KernelKind::Scalar => portable::cell_apply(cell, weighted, delta, term),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected sse2 (see fold_cells_soa).
            KernelKind::Sse2 => unsafe { sse2::cell_apply(cell, weighted, delta, term) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected avx2.
            KernelKind::Avx2 => unsafe { avx2::cell_apply(cell, weighted, delta, term) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::cell_apply(cell, weighted, delta, term),
        }
    }

    /// Index of the highest nonzero cell strictly below `below` in an
    /// interleaved column, or `None` if all are zero — the wide
    /// zero-skip scan in front of `decode_parts` on the sample paths.
    #[inline]
    pub(crate) fn top_nonzero_cells(self, cells: &[Cell], below: usize) -> Option<usize> {
        debug_assert!(below <= cells.len());
        match self {
            KernelKind::Scalar => portable::top_nonzero_cells(cells, below),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected sse2 (see fold_cells_soa).
            KernelKind::Sse2 => unsafe { sse2::top_nonzero_cells(cells, below) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected avx2.
            KernelKind::Avx2 => unsafe { avx2::top_nonzero_cells(cells, below) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::top_nonzero_cells(cells, below),
        }
    }

    /// [`KernelKind::top_nonzero_cells`] for a struct-of-arrays
    /// column (the merge scratch).
    #[inline]
    pub(crate) fn top_nonzero_soa(
        self,
        vs: &[i64],
        is: &[i128],
        fp: &[M61],
        below: usize,
    ) -> Option<usize> {
        debug_assert!(below <= vs.len() && vs.len() == is.len() && vs.len() == fp.len());
        match self {
            KernelKind::Scalar => portable::top_nonzero_soa(vs, is, fp, below),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected sse2 (see fold_cells_soa).
            KernelKind::Sse2 => unsafe { sse2::top_nonzero_soa(vs, is, fp, below) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier implies detected avx2.
            KernelKind::Avx2 => unsafe { avx2::top_nonzero_soa(vs, is, fp, below) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => portable::top_nonzero_soa(vs, is, fp, below),
        }
    }
}

/// The fingerprint increment of one `X[index] += delta` update as a
/// single field element, so a cell write is a plain component-wise
/// cell add. Matches `accumulate(acc, term, delta)` exactly: for
/// `delta = 1` both add `term`; for `delta = -1`, `acc - term` and
/// `acc + (-term)` are the same conditional-subtract expression in
/// `GF(2^61 - 1)`; otherwise both add `term · delta`.
#[inline]
pub(crate) fn fp_delta(term: M61, delta: i64) -> M61 {
    match delta {
        1 => term,
        -1 => -term,
        d => term * M61::from_i64(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_ordering() {
        assert_eq!(KernelKind::Scalar.name(), "scalar");
        assert_eq!(KernelKind::Sse2.name(), "sse2");
        assert_eq!(KernelKind::Avx2.name(), "avx2");
        assert!(KernelKind::Scalar < KernelKind::Sse2);
        assert!(KernelKind::Sse2 < KernelKind::Avx2);
    }

    #[test]
    fn scalar_is_always_available_and_clamping_never_escalates() {
        assert!(KernelKind::Scalar.is_available());
        assert_eq!(KernelKind::Scalar.clamped(), KernelKind::Scalar);
        for k in [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2] {
            let c = k.clamped();
            assert!(c.is_available(), "{c:?} must run on this host");
            assert!(c <= k, "clamping never escalates past the request");
        }
        let best = KernelKind::detect_best();
        assert!(best.is_available());
        assert!(KernelKind::selected().is_available());
        assert!(KernelKind::selected() <= best);
    }

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn tiers() -> Vec<KernelKind> {
        [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    fn random_cell(rng: &mut StdRng) -> Cell {
        // Skew toward extremes so carries, cancellations, and the
        // conditional subtract all fire.
        let value_sum = match rng.gen_range(0..4) {
            0 => rng.next_u64() as i64,
            1 => -1,
            2 => i64::MAX - rng.gen_range(0i64..3),
            _ => rng.gen_range(-5i64..6),
        };
        let index_sum = match rng.gen_range(0..4) {
            0 => ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128,
            1 => -1,
            2 => u64::MAX as i128 - rng.gen_range(0i64..3) as i128,
            _ => rng.gen_range(-5i64..6) as i128,
        };
        Cell {
            index_sum,
            value_sum,
            fp: M61::from_reduced(rng.gen_range(0..mpc_hashing::field::P)),
        }
    }

    fn random_column(rng: &mut StdRng, len: usize) -> (Vec<i64>, Vec<i128>, Vec<M61>) {
        let cells: Vec<Cell> = (0..len).map(|_| random_cell(rng)).collect();
        (
            cells.iter().map(|c| c.value_sum).collect(),
            cells.iter().map(|c| c.index_sum).collect(),
            cells.iter().map(|c| c.fp).collect(),
        )
    }

    /// Odd/even lengths around the 2- and 4-cell vector widths plus a
    /// full 64-level column and a seam-sized span.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 42, 64, 127];

    #[test]
    fn fold_cells_soa_tiers_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0x90_01);
        for &len in LENS {
            let src: Vec<Cell> = (0..len).map(|_| random_cell(&mut rng)).collect();
            let (vs0, is0, fp0) = random_column(&mut rng, len);
            let mut reference = None;
            for k in tiers() {
                let (mut vs, mut is, mut fp) = (vs0.clone(), is0.clone(), fp0.clone());
                k.fold_cells_soa(&src, &mut vs, &mut is, &mut fp);
                let got = (vs, is, fp);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(want, &got, "{k:?} diverged at len {len}"),
                }
            }
        }
    }

    /// The dispatch above routes `Avx2`'s `fold_cells_soa` to the
    /// scalar body (per-op dispatch), so the dispatch-level identity
    /// test no longer exercises the AVX2 intrinsics for this op. Pin
    /// the tier body itself against the reference directly.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_fold_cells_soa_body_still_matches_reference() {
        if !KernelKind::Avx2.is_available() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x90_06);
        for &len in LENS {
            let src: Vec<Cell> = (0..len).map(|_| random_cell(&mut rng)).collect();
            let (vs0, is0, fp0) = random_column(&mut rng, len);
            let (mut vs_a, mut is_a, mut fp_a) = (vs0.clone(), is0.clone(), fp0.clone());
            let (mut vs_s, mut is_s, mut fp_s) = (vs0, is0, fp0);
            // SAFETY: guarded by the `is_available` (feature
            // detection) early return above.
            unsafe { avx2::fold_cells_soa(&src, &mut vs_a, &mut is_a, &mut fp_a) };
            portable::fold_cells_soa(&src, &mut vs_s, &mut is_s, &mut fp_s);
            assert_eq!((vs_a, is_a, fp_a), (vs_s, is_s, fp_s), "len {len}");
        }
    }

    #[test]
    fn fold_cells_tiers_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0x90_02);
        for &len in LENS {
            let src: Vec<Cell> = (0..len).map(|_| random_cell(&mut rng)).collect();
            let dst0: Vec<Cell> = (0..len).map(|_| random_cell(&mut rng)).collect();
            let mut reference = None;
            for k in tiers() {
                let mut dst = dst0.clone();
                k.fold_cells(&mut dst, &src);
                match &reference {
                    None => reference = Some(dst),
                    Some(want) => assert_eq!(want, &dst, "{k:?} diverged at len {len}"),
                }
            }
        }
    }

    #[test]
    fn fold_soa_tiers_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0x90_03);
        for &len in LENS {
            let (svs, sis, sfp) = random_column(&mut rng, len);
            let (dvs0, dis0, dfp0) = random_column(&mut rng, len);
            let mut reference = None;
            for k in tiers() {
                let (mut vs, mut is, mut fp) = (dvs0.clone(), dis0.clone(), dfp0.clone());
                k.fold_soa(&mut vs, &mut is, &mut fp, &svs, &sis, &sfp);
                let got = (vs, is, fp);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(want, &got, "{k:?} diverged at len {len}"),
                }
            }
        }
    }

    #[test]
    fn cell_apply_tiers_bit_identical() {
        let mut rng = StdRng::seed_from_u64(0x90_04);
        for _ in 0..200 {
            let cell0 = random_cell(&mut rng);
            let weighted = rng.gen_range(0..u64::MAX) as i128;
            let delta = match rng.gen_range(0..3) {
                0 => 1,
                1 => -1,
                _ => rng.gen_range(-9i64..10),
            };
            let term = M61::from_reduced(rng.gen_range(0..mpc_hashing::field::P));
            let mut reference = None;
            for k in tiers() {
                let mut cell = cell0;
                k.cell_apply(&mut cell, weighted, delta, term);
                match &reference {
                    None => reference = Some(cell),
                    Some(want) => assert_eq!(want, &cell, "{k:?} diverged"),
                }
            }
        }
    }

    #[test]
    fn top_nonzero_tiers_agree() {
        let mut rng = StdRng::seed_from_u64(0x90_05);
        for &len in LENS {
            for _ in 0..8 {
                // Sparse columns: mostly zero with a few survivors, so
                // empty, full, and singleton cases all occur.
                let cells: Vec<Cell> = (0..len)
                    .map(|_| {
                        if rng.gen_bool(0.25) {
                            random_cell(&mut rng)
                        } else {
                            Cell::ZERO
                        }
                    })
                    .collect();
                let vs: Vec<i64> = cells.iter().map(|c| c.value_sum).collect();
                let is: Vec<i128> = cells.iter().map(|c| c.index_sum).collect();
                let fp: Vec<M61> = cells.iter().map(|c| c.fp).collect();
                for below in [0, len / 2, len] {
                    let want = KernelKind::Scalar.top_nonzero_cells(&cells, below);
                    for k in tiers() {
                        assert_eq!(
                            k.top_nonzero_cells(&cells, below),
                            want,
                            "{k:?} cells scan diverged (len {len}, below {below})"
                        );
                        assert_eq!(
                            k.top_nonzero_soa(&vs, &is, &fp, below),
                            want,
                            "{k:?} soa scan diverged (len {len}, below {below})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fp_delta_matches_accumulate() {
        use mpc_hashing::fingerprint::accumulate;
        let terms = [M61::ZERO, M61::new(1), M61::new(12345), -M61::new(7)];
        for &term in &terms {
            for delta in [-3i64, -1, 0, 1, 2, 9] {
                for &acc in &terms {
                    assert_eq!(
                        acc + fp_delta(term, delta),
                        accumulate(acc, term, delta),
                        "term {term} delta {delta} acc {acc}"
                    );
                }
            }
        }
    }
}
