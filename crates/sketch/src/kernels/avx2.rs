//! x86-64 AVX2 kernels: 256-bit lanes — one whole 32-byte cell per
//! vector, four cells (or four scratch columns) per step.
//!
//! A `repr(C)` cell is exactly one `__m256i` with lanes
//! `[index_lo, index_hi, value_sum, fp]`, so the interleaved fold is
//! a single vector add followed by two lane-targeted fix-ups:
//!
//! * **`index_sum` carry**: the full-adder carry-out of lane 0 (the
//!   sign-bit expression `(d & a) | ((d | a) & !s)`), masked to
//!   lane 0 *before* `slli_si256` — that shift moves data within each
//!   128-bit half (lane 0 → 1 and lane 2 → 3), and an unmasked lane 2
//!   carry would corrupt the fingerprint lane.
//! * **fingerprint reduce**: AVX2 has signed 64-bit compares, so the
//!   conditional subtract is `cmpgt_epi64` against a threshold vector
//!   of `[i64::MAX, i64::MAX, i64::MAX, P - 1]` (lanes that must not
//!   reduce compare against `i64::MAX`, which nothing exceeds) and a
//!   masked subtract of `P`.
//!
//! The struct-of-arrays folds use `permute2x128` to split four loaded
//! cells into their `index_sum` halves (the low 128 bits of a cell
//! vector *is* its `i128`, so pairing low halves yields exactly the
//! two-`i128` destination layout) and `unpacklo/hi_epi64` +
//! `permute4x64` to transpose the `[value_sum, fp]` halves into
//! columns. All loads/stores are unaligned; tails fall back to
//! [`portable`].

#![allow(unsafe_code)]

use super::portable;
use crate::arena::Cell;
use mpc_hashing::field::{M61, P};

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// Lane-wise `a + b` with a conditional subtract of `p_vec` in the
/// lanes where the wrapping sum exceeds `threshold` (signed compare).
/// With `threshold = P - 1` and `p_vec = P` in a lane this is the
/// `GF(2^61 - 1)` add for reduced inputs; with `threshold = i64::MAX`
/// and `p_vec = 0` the lane is a plain wrapping add.
///
/// # Safety
/// SAFETY: requires AVX2 (callers are `#[target_feature(enable = "avx2")]`
/// functions reached only after feature detection).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn add_cond_sub(a: __m256i, b: __m256i, threshold: __m256i, p_vec: __m256i) -> __m256i {
    let s = _mm256_add_epi64(a, b);
    let over = _mm256_cmpgt_epi64(s, threshold);
    _mm256_sub_epi64(s, _mm256_and_si256(over, p_vec))
}

/// Lane-wise carry-out of `s = d + a` as a 0/1 value per lane.
///
/// # Safety
/// SAFETY: requires AVX2 (see [`add_cond_sub`]).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn carry_lanes(d: __m256i, a: __m256i, s: __m256i) -> __m256i {
    let both = _mm256_and_si256(d, a);
    let either = _mm256_or_si256(d, a);
    let c = _mm256_or_si256(both, _mm256_andnot_si256(s, either));
    _mm256_srli_epi64(c, 63)
}

/// Adds one whole cell of `src` into `dst`: one 256-bit add, carry
/// fix-up into the `index_hi` lane, fingerprint reduce in lane 3.
///
/// # Safety
/// SAFETY: requires AVX2; `dst`/`src` must be valid cell pointers. `Cell` is
/// `repr(C)` with the documented four-lane layout; the fingerprint
/// lane stays reduced because the masked conditional subtract mirrors
/// `M61::add` exactly in lane 3 and touches nothing else.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn fold_one_cell(dst: *mut Cell, src: *const Cell) {
    let d = _mm256_loadu_si256(dst as *const __m256i);
    let a = _mm256_loadu_si256(src as *const __m256i);
    let s = _mm256_add_epi64(d, a);
    // index_sum carry: keep only lane 0's carry-out, then shift it
    // into lane 1 (slli_si256 moves lane 0 -> 1 within the low half).
    let lane0 = _mm256_set_epi64x(0, 0, 0, -1);
    let carry = _mm256_and_si256(carry_lanes(d, a, s), lane0);
    let s = _mm256_add_epi64(s, _mm256_slli_si256(carry, 8));
    // fp reduce in lane 3 only; other lanes compare against i64::MAX
    // (never exceeded) so their subtract mask is zero.
    let threshold = _mm256_set_epi64x((P - 1) as i64, i64::MAX, i64::MAX, i64::MAX);
    let p_vec = _mm256_set_epi64x(P as i64, 0, 0, 0);
    let over = _mm256_cmpgt_epi64(s, threshold);
    let s = _mm256_sub_epi64(s, _mm256_and_si256(over, p_vec));
    _mm256_storeu_si256(dst as *mut __m256i, s);
}

/// Adds two `i128` lanes (`[lo0, hi0, lo1, hi1]`) of `a` into the
/// same layout in `d`, with carries masked to the even (low) lanes so
/// `slli_si256` propagates lane 0 → 1 and lane 2 → 3 independently.
///
/// # Safety
/// SAFETY: requires AVX2 (see [`add_cond_sub`]).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn add_i128_pair(d: __m256i, a: __m256i) -> __m256i {
    let s = _mm256_add_epi64(d, a);
    let even = _mm256_set_epi64x(0, -1, 0, -1);
    let carry = _mm256_and_si256(carry_lanes(d, a, s), even);
    _mm256_add_epi64(s, _mm256_slli_si256(carry, 8))
}

/// AVX2 [`fold_cells_soa`](super::KernelKind::fold_cells_soa): four
/// cells per step. `index_sum` pairs come straight from
/// `permute2x128` of whole-cell vectors; `[value_sum, fp]` halves are
/// transposed into columns with unpacks + `permute4x64(0xD8)`.
///
/// # Safety
/// SAFETY: requires AVX2 (callers dispatch only after feature detection).
/// Slice lengths must be equal; all pointer arithmetic is within
/// `chunks_exact(4)` chunks.
#[allow(dead_code)] // dispatch routes the SoA fold to the scalar body; the tier stays for parity + the bit-identity test
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fold_cells_soa(src: &[Cell], vs: &mut [i64], is: &mut [i128], fp: &mut [M61]) {
    let mut cells = src.chunks_exact(4);
    let mut vs_it = vs.chunks_exact_mut(4);
    let mut is_it = is.chunks_exact_mut(4);
    let mut fp_it = fp.chunks_exact_mut(4);
    let p_all = _mm256_set1_epi64x(P as i64);
    let thr_all = _mm256_set1_epi64x((P - 1) as i64);
    for (((c, v), i), f) in (&mut cells).zip(&mut vs_it).zip(&mut is_it).zip(&mut fp_it) {
        let ptr = c.as_ptr() as *const __m256i;
        let c0 = _mm256_loadu_si256(ptr);
        let c1 = _mm256_loadu_si256(ptr.add(1));
        let c2 = _mm256_loadu_si256(ptr.add(2));
        let c3 = _mm256_loadu_si256(ptr.add(3));

        // index_sum: low halves of (c0, c1) form [is0, is1], low
        // halves of (c2, c3) form [is2, is3] -- the destination's own
        // memory layout.
        let i_ptr = i.as_mut_ptr() as *mut __m256i;
        let src01 = _mm256_permute2x128_si256(c0, c1, 0x20);
        let src23 = _mm256_permute2x128_si256(c2, c3, 0x20);
        let d01 = _mm256_loadu_si256(i_ptr as *const __m256i);
        let d23 = _mm256_loadu_si256(i_ptr.add(1) as *const __m256i);
        _mm256_storeu_si256(i_ptr, add_i128_pair(d01, src01));
        _mm256_storeu_si256(i_ptr.add(1), add_i128_pair(d23, src23));

        // [value_sum, fp] halves: x = [v0, f0, v1, f1],
        // y = [v2, f2, v3, f3]; unpack + permute4x64(0xD8) yields the
        // value and fingerprint columns in cell order.
        let x = _mm256_permute2x128_si256(c0, c1, 0x31);
        let y = _mm256_permute2x128_si256(c2, c3, 0x31);
        let v_col = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(x, y), 0xD8);
        let f_col = _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(x, y), 0xD8);

        let v_dst = _mm256_loadu_si256(v.as_ptr() as *const __m256i);
        _mm256_storeu_si256(
            v.as_mut_ptr() as *mut __m256i,
            _mm256_add_epi64(v_dst, v_col),
        );
        let f_dst = _mm256_loadu_si256(f.as_ptr() as *const __m256i);
        let f_sum = add_cond_sub(f_dst, f_col, thr_all, p_all);
        _mm256_storeu_si256(f.as_mut_ptr() as *mut __m256i, f_sum);
    }
    portable::fold_cells_soa(
        cells.remainder(),
        vs_it.into_remainder(),
        is_it.into_remainder(),
        fp_it.into_remainder(),
    );
}

/// AVX2 [`fold_cells`](super::KernelKind::fold_cells): one vector per
/// cell.
///
/// # Safety
/// SAFETY: requires AVX2; slice lengths must be equal (pointers stay inside
/// the zipped elements).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fold_cells(dst: &mut [Cell], src: &[Cell]) {
    for (d, s) in dst.iter_mut().zip(src) {
        fold_one_cell(d, s);
    }
}

/// AVX2 [`fold_soa`](super::KernelKind::fold_soa): four lanes per
/// step on the value and fingerprint columns, two `i128` lanes per
/// step on `index_sum`.
///
/// # Safety
/// SAFETY: requires AVX2; paired slices must have equal lengths.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fold_soa(
    dst_vs: &mut [i64],
    dst_is: &mut [i128],
    dst_fp: &mut [M61],
    src_vs: &[i64],
    src_is: &[i128],
    src_fp: &[M61],
) {
    let mut d_it = dst_vs.chunks_exact_mut(4);
    let mut s_it = src_vs.chunks_exact(4);
    for (d, s) in (&mut d_it).zip(&mut s_it) {
        let sum = _mm256_add_epi64(
            _mm256_loadu_si256(d.as_ptr() as *const __m256i),
            _mm256_loadu_si256(s.as_ptr() as *const __m256i),
        );
        _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, sum);
    }
    for (d, s) in d_it.into_remainder().iter_mut().zip(s_it.remainder()) {
        *d = d.wrapping_add(*s);
    }

    let mut di_it = dst_is.chunks_exact_mut(2);
    let mut si_it = src_is.chunks_exact(2);
    for (d, s) in (&mut di_it).zip(&mut si_it) {
        let sum = add_i128_pair(
            _mm256_loadu_si256(d.as_ptr() as *const __m256i),
            _mm256_loadu_si256(s.as_ptr() as *const __m256i),
        );
        _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, sum);
    }
    for (d, s) in di_it.into_remainder().iter_mut().zip(si_it.remainder()) {
        *d = d.wrapping_add(*s);
    }

    let p_all = _mm256_set1_epi64x(P as i64);
    let thr_all = _mm256_set1_epi64x((P - 1) as i64);
    let mut df_it = dst_fp.chunks_exact_mut(4);
    let mut sf_it = src_fp.chunks_exact(4);
    for (d, s) in (&mut df_it).zip(&mut sf_it) {
        let sum = add_cond_sub(
            _mm256_loadu_si256(d.as_ptr() as *const __m256i),
            _mm256_loadu_si256(s.as_ptr() as *const __m256i),
            thr_all,
            p_all,
        );
        _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, sum);
    }
    for (d, s) in df_it.into_remainder().iter_mut().zip(sf_it.remainder()) {
        *d += *s;
    }
}

/// AVX2 [`cell_apply`](super::KernelKind::cell_apply): materializes
/// the update as a delta cell and folds it in with the whole-cell
/// vector fold.
///
/// # Safety
/// SAFETY: requires AVX2; `cell` is a valid exclusive reference.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn cell_apply(cell: &mut Cell, weighted: i128, delta: i64, term: M61) {
    let delta_cell = Cell {
        index_sum: weighted.wrapping_mul(delta as i128),
        value_sum: delta,
        fp: super::fp_delta(term, delta),
    };
    fold_one_cell(cell, &delta_cell);
}

/// AVX2 [`top_nonzero_cells`](super::KernelKind::top_nonzero_cells):
/// downward scan with one `vptest` per 32-byte cell.
///
/// # Safety
/// SAFETY: requires AVX2; `below <= cells.len()` (checked by the slice
/// index).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn top_nonzero_cells(cells: &[Cell], below: usize) -> Option<usize> {
    let live = &cells[..below];
    (0..live.len()).rev().find(|&j| {
        let v = _mm256_loadu_si256(&live[j] as *const Cell as *const __m256i);
        _mm256_testz_si256(v, v) == 0
    })
}

/// AVX2 [`top_nonzero_soa`](super::KernelKind::top_nonzero_soa):
/// downward scan ORing all three columns per index.
///
/// # Safety
/// SAFETY: requires AVX2; `below` must not exceed the common slice length.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn top_nonzero_soa(
    vs: &[i64],
    is: &[i128],
    fp: &[M61],
    below: usize,
) -> Option<usize> {
    (0..below)
        .rev()
        .find(|&j| vs[j] != 0 || is[j] != 0 || !fp[j].is_zero())
}
