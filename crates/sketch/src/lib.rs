//! Linear `ℓ0`-sampling sketches and AGM graph sketches.
//!
//! This crate implements the sketching toolkit of the paper's
//! Section 3.1:
//!
//! * [`one_sparse::OneSparseCell`] — exact recovery of vectors with at
//!   most one nonzero coordinate (count / index-sum / fingerprint
//!   triple).
//! * [`l0::L0Sampler`] — the `ℓ0`-sampler of Lemma 3.1
//!   (\[CJ19\]): geometric sub-sampling levels, each holding a
//!   one-sparse cell. On query it returns a (near-)uniform nonzero
//!   coordinate, `⊥` for the zero vector, or an explicit failure.
//! * [`vertex::VertexSketch`] — the AGM vertex sketch of the vector
//!   `X_v` over edge space with the `±1` orientation convention, so
//!   sketches of a vertex set `A` sum to a sketch of the cut
//!   `E(A, V∖A)` (Lemma 3.3, \[AGM12\]).
//! * [`bank::SketchBank`] — `t = Θ(log n)` independent sketch copies
//!   per vertex, lazily materialized, as required by the
//!   batch-deletion algorithm of the paper's Section 6.3.
//!
//! All sketches are **linear**: merging two sketches of vectors `X`
//! and `Y` (same seed family) yields a sketch of `X + Y` exactly
//! (Remark 3.2). Property tests in this crate verify linearity on
//! random update sequences.
//!
//! # Storage: the columnar arena
//!
//! A bank's `n × t × levels` cell grid lives in the [`arena`] module's
//! [`SketchArena`]: one contiguous pool of interleaved 32-byte cells
//! (value sum + index-weighted sum + fingerprint accumulator), a
//! live-level bitmask per column, plus one
//! [`arena::SketchFamily`] per copy holding the level hash and the
//! fingerprint point with its power tables — seeded **once per copy**
//! rather than once per materialized sketch. An edge update is one
//! level-hash/fingerprint evaluation per copy and four direct array
//! writes; a Borůvka component merge streams member columns into a
//! reusable [`arena::MergeScratch`] accumulator with zero allocations
//! and zero sketch clones.
//!
//! **Host representation vs accounted shape.** [`L0Sampler::words`]
//! and the bank's word counts report the paper's *dense* `levels ×
//! cell` layout per materialized column — that is the shape the MPC
//! model's machines must budget for, and (since this refactor) also
//! literally the host layout, so a column's accounted words never
//! change as cells cancel to zero or refill. The dense column is also
//! *canonical*: two permutations of one update stream produce
//! bit-identical storage, which keeps sketch equality structural.
//!
//! # Vectorized kernels
//!
//! The flat loops every sketch operation bottoms out in — span
//! folds of cell columns, the cell-write path, zero-skip scans in
//! front of the one-sparse decoder — are implemented by the
//! [`kernels`] module at three tiers (portable scalar, x86-64 SSE2,
//! x86-64 AVX2). Each [`SketchArena`] picks the best tier the host
//! CPU supports at construction ([`kernels::KernelKind::selected`]);
//! `MPC_KERNEL=scalar|sse2|avx2` overrides the choice (clamped to
//! host support, never escalating past the request). The tiers are
//! **bit-identical** — exact integer adds and `GF(2^61 - 1)`
//! conditional-subtract adds, no reassociation of anything
//! non-associative — so same seeds and stream give the same samples,
//! the same snapshot bytes, and the same `words()` accounting at
//! every tier; the kernel choice is pure host-side speed, invisible
//! to the accounted MPC model.
//!
//! Unsafe code in this crate is confined to the `kernels` SIMD
//! modules (raw lane loads/stores behind `#[target_feature]`), which
//! is why the crate is `#![deny(unsafe_code)]` with narrow
//! module-level allows rather than `#![forbid]`; mpc-lint's
//! `unsafe-hygiene` rule allowlists exactly those files and checks
//! every `unsafe` keeps a `// SAFETY:` justification.
//!
//! # Examples
//!
//! ```
//! use mpc_sketch::l0::{L0Sampler, SampleOutcome};
//!
//! let mut s = L0Sampler::new(1 << 20, 42);
//! s.update(12345, 1);
//! match s.sample() {
//!     SampleOutcome::Sample { index, weight } => {
//!         assert_eq!((index, weight), (12345, 1));
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

// Not `forbid` (which cannot be overridden): the `kernels` SIMD
// modules carry `#![allow(unsafe_code)]` for their lane loads/stores.
// Everything else in the crate stays unsafe-free, enforced here and
// audited by mpc-lint's unsafe-hygiene rule.
#![deny(unsafe_code)]

pub mod arena;
pub mod bank;
pub mod kernels;
pub mod l0;
pub mod one_sparse;
pub mod vertex;

pub use arena::{MergeScratch, SketchArena, SketchFamily};
pub use bank::SketchBank;
pub use kernels::KernelKind;
pub use l0::{L0Sampler, SampleOutcome};
pub use one_sparse::OneSparseCell;
pub use vertex::VertexSketch;
