//! The `ℓ0`-sampler of the paper's Lemma 3.1 (\[CJ19\]).
//!
//! Coordinates of an `N`-dimensional vector are assigned to geometric
//! levels by a seeded hash (`Pr[level j] = 2^-(j+1)`); each level
//! keeps a [`OneSparseCell`]. When the vector has `ℓ0` nonzeros, the
//! level `≈ log2 ℓ0` holds one surviving nonzero with constant
//! probability, and its cell recovers it. Querying scans all levels
//! and returns the first recovery.
//!
//! A single sampler succeeds with constant probability; the
//! `δ`-failure version of Lemma 3.1 takes `O(log 1/δ)` independent
//! copies, which is what [`SketchBank`](crate::bank::SketchBank)
//! provides.

use crate::one_sparse::{OneSparseCell, OneSparseDecode};
use mpc_hashing::kwise::KWiseHash;

/// Outcome of querying an [`L0Sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The summarized vector is (w.h.p.) zero — the paper's `⊥`.
    Zero,
    /// A nonzero coordinate and its value.
    Sample {
        /// The sampled coordinate.
        index: u64,
        /// Its value.
        weight: i64,
    },
    /// The sampler failed this time (no level decoded one-sparse);
    /// retry with an independent copy.
    Fail,
}

/// A linear `ℓ0`-sampling sketch over vectors indexed by `[0, N)`.
///
/// Two samplers [`merge`](L0Sampler::merge) iff they were built with
/// the same `(max_index, seed)` pair, in which case the merge
/// summarizes the coordinate-wise sum.
///
/// # Examples
///
/// ```
/// use mpc_sketch::l0::{L0Sampler, SampleOutcome};
///
/// let mut a = L0Sampler::new(1000, 7);
/// let mut b = L0Sampler::new(1000, 7);
/// a.update(5, 1);
/// b.update(5, -1);
/// a.merge(&b);
/// assert_eq!(a.sample(), SampleOutcome::Zero);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct L0Sampler {
    max_index: u64,
    seed: u64,
    levels: u32,
    level_hash: KWiseHash,
    /// Zero cell carrying the family randomness; live cells are
    /// spawned from it on first touch.
    proto: OneSparseCell,
    /// Only the **nonzero** cells, sorted by level. A cell whose
    /// counters all cancel back to zero is pruned, so the
    /// representation is canonical: two samplers summarizing the same
    /// vector compare equal regardless of update order. (The dense
    /// `levels × cell` layout of the paper is the *accounted* shape —
    /// see [`L0Sampler::words`]; storing the zero cells would only
    /// waste host memory.)
    cells: Vec<(u8, OneSparseCell)>,
}

impl L0Sampler {
    /// Creates a sampler for vectors indexed by `[0, max_index)`,
    /// with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_index == 0`.
    pub fn new(max_index: u64, seed: u64) -> Self {
        assert!(max_index > 0, "need a nonempty index space");
        let levels = (64 - max_index.leading_zeros()) + 2;
        let level_hash = KWiseHash::from_seed(2, seed ^ 0x9e37_79b9_7f4a_7c15);
        let proto = OneSparseCell::from_seed(seed ^ 0x85eb_ca6b_27d4_eb4f);
        L0Sampler {
            max_index,
            seed,
            levels,
            level_hash,
            proto,
            cells: Vec::new(),
        }
    }

    /// The seed this sampler's randomness derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A zero-accumulator sampler of this sampler's family: the level
    /// hash and fingerprint randomness (including the shared power
    /// table) are reused, so materializing many samplers of one
    /// family costs no seeding work.
    pub fn fresh(&self) -> L0Sampler {
        L0Sampler {
            max_index: self.max_index,
            seed: self.seed,
            levels: self.levels,
            level_hash: self.level_hash.clone(),
            proto: self.proto.fresh(),
            cells: Vec::new(),
        }
    }

    /// Number of geometric levels.
    pub fn levels(&self) -> usize {
        self.levels as usize
    }

    /// Memory footprint in `u64` words for the MPC accounting: one
    /// one-sparse cell per level plus two header words — the paper's
    /// dense layout, which is what the model's machines must budget
    /// for (the sparse host representation is an implementation
    /// detail).
    pub fn words(&self) -> u64 {
        self.levels as u64 * OneSparseCell::WORDS + 2
    }

    /// Sorted position of the live cell for `level`, created on
    /// first touch.
    fn cell_slot(&mut self, level: u8) -> usize {
        match self.cells.binary_search_by_key(&level, |&(l, _)| l) {
            Ok(i) => i,
            Err(i) => {
                self.cells.insert(i, (level, self.proto.fresh()));
                i
            }
        }
    }

    /// Drops the cell at sorted position `i` if it cancelled to zero,
    /// keeping the representation canonical.
    fn prune_slot(&mut self, i: usize) {
        if self.cells[i].1.is_zero() {
            self.cells.remove(i);
        }
    }

    /// Applies `X[index] += delta`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= max_index`.
    pub fn update(&mut self, index: u64, delta: i64) {
        assert!(
            index < self.max_index,
            "index {index} out of range {}",
            self.max_index
        );
        let level = self.level_hash.geometric_level(index, self.levels - 1) as u8;
        let i = self.cell_slot(level);
        self.cells[i].1.update(index, delta);
        self.prune_slot(i);
    }

    /// Applies `X[index] += delta_a` to `a` and `X[index] += delta_b`
    /// to `b`, which must belong to the same family: the level hash
    /// and the fingerprint term are computed once and applied to both
    /// — the fast path for edge updates, where the two endpoint
    /// sketches of one copy always receive the same coordinate with
    /// opposite signs.
    ///
    /// # Panics
    ///
    /// Panics if the families differ or `index` is out of range.
    pub fn update_pair(
        a: &mut L0Sampler,
        b: &mut L0Sampler,
        index: u64,
        delta_a: i64,
        delta_b: i64,
    ) {
        assert_eq!(
            (a.max_index, a.seed),
            (b.max_index, b.seed),
            "pair update requires samplers of one family"
        );
        assert!(index < a.max_index, "index {index} out of range");
        let level = a.level_hash.geometric_level(index, a.levels - 1) as u8;
        let term = a.proto.term(index);
        let i = a.cell_slot(level);
        a.cells[i].1.update_with_term(index, delta_a, term);
        a.prune_slot(i);
        let j = b.cell_slot(level);
        b.cells[j].1.update_with_term(index, delta_b, term);
        b.prune_slot(j);
    }

    /// Merges a sampler of the same family (vector addition).
    ///
    /// # Panics
    ///
    /// Panics if the families differ.
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(
            (self.max_index, self.seed),
            (other.max_index, other.seed),
            "cannot merge l0-samplers from different families"
        );
        for (level, cell) in &other.cells {
            let i = self.cell_slot(*level);
            self.cells[i].1.merge(cell);
            self.prune_slot(i);
        }
    }

    /// Whether every cell is zero (w.h.p. the zero vector).
    pub fn is_zero(&self) -> bool {
        self.cells.is_empty()
    }

    /// Queries the sampler.
    pub fn sample(&self) -> SampleOutcome {
        if self.is_zero() {
            return SampleOutcome::Zero;
        }
        // Prefer high (sparse) levels: they are the ones designed to
        // isolate a single survivor; low levels decode only for very
        // sparse vectors, which is exactly when they are useful.
        for (_, cell) in self.cells.iter().rev() {
            if let OneSparseDecode::One { index, weight } = cell.decode() {
                return SampleOutcome::Sample { index, weight };
            }
        }
        SampleOutcome::Fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_vector_reports_zero() {
        let s = L0Sampler::new(100, 1);
        assert_eq!(s.sample(), SampleOutcome::Zero);
    }

    #[test]
    fn singleton_always_recovered() {
        for seed in 0..20 {
            let mut s = L0Sampler::new(1 << 20, seed);
            s.update(777, 3);
            assert_eq!(
                s.sample(),
                SampleOutcome::Sample {
                    index: 777,
                    weight: 3
                },
                "seed {seed}"
            );
        }
    }

    #[test]
    fn insert_delete_returns_to_zero() {
        let mut s = L0Sampler::new(1 << 16, 5);
        for i in 0..50u64 {
            s.update(i * 7, 1);
        }
        for i in 0..50u64 {
            s.update(i * 7, -1);
        }
        assert_eq!(s.sample(), SampleOutcome::Zero);
    }

    #[test]
    fn sample_returns_true_nonzero() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut successes = 0;
        let trials = 200;
        for t in 0..trials {
            let mut s = L0Sampler::new(1 << 20, t);
            let support: Vec<u64> = (0..100).map(|_| rng.gen_range(0..1 << 20)).collect();
            let mut dedup = support.clone();
            dedup.sort_unstable();
            dedup.dedup();
            for &i in &dedup {
                s.update(i, 1);
            }
            match s.sample() {
                SampleOutcome::Sample { index, weight } => {
                    assert!(dedup.contains(&index), "sampled index must be in support");
                    assert_eq!(weight, 1);
                    successes += 1;
                }
                SampleOutcome::Fail => {}
                SampleOutcome::Zero => panic!("nonzero vector reported zero"),
            }
        }
        // A single sampler succeeds with constant probability; with
        // geometric levels the empirical rate is well above 1/2.
        assert!(
            successes * 2 > trials,
            "success rate too low: {successes}/{trials}"
        );
    }

    #[test]
    fn merge_linearity_matches_direct() {
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..30 {
            let seed = trial;
            let mut direct = L0Sampler::new(1 << 12, seed);
            let mut a = L0Sampler::new(1 << 12, seed);
            let mut b = L0Sampler::new(1 << 12, seed);
            for _ in 0..60 {
                let i = rng.gen_range(0u64..1 << 12);
                let d = if rng.gen_bool(0.5) { 1 } else { -1 };
                direct.update(i, d);
                if rng.gen_bool(0.5) {
                    a.update(i, d);
                } else {
                    b.update(i, d);
                }
            }
            a.merge(&b);
            assert_eq!(a, direct, "trial {trial}");
        }
    }

    #[test]
    fn sampling_is_spread_over_support() {
        // Different seeds should sample different coordinates — the
        // "random edge" property the replacement-edge search relies on.
        let support: Vec<u64> = (0..64).map(|i| i * 1000 + 13).collect();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut s = L0Sampler::new(1 << 20, seed);
            for &i in &support {
                s.update(i, 1);
            }
            if let SampleOutcome::Sample { index, .. } = s.sample() {
                seen.insert(index);
            }
        }
        assert!(
            seen.len() >= 16,
            "samples too concentrated: {} distinct",
            seen.len()
        );
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn cross_family_merge_panics() {
        let mut a = L0Sampler::new(100, 1);
        let b = L0Sampler::new(100, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        let mut s = L0Sampler::new(10, 1);
        s.update(10, 1);
    }

    #[test]
    fn weighted_entries_recovered() {
        // The sampler is defined over integer vectors, not just ±1.
        let mut s = L0Sampler::new(1 << 10, 3);
        s.update(100, 7);
        assert_eq!(
            s.sample(),
            SampleOutcome::Sample {
                index: 100,
                weight: 7
            }
        );
        s.update(100, -3);
        assert_eq!(
            s.sample(),
            SampleOutcome::Sample {
                index: 100,
                weight: 4
            }
        );
    }

    #[test]
    fn clone_then_diverge() {
        let mut a = L0Sampler::new(1 << 10, 9);
        a.update(5, 1);
        let mut b = a.clone();
        b.update(5, -1);
        assert_eq!(b.sample(), SampleOutcome::Zero);
        assert_eq!(
            a.sample(),
            SampleOutcome::Sample {
                index: 5,
                weight: 1
            }
        );
    }

    #[test]
    fn words_scale_with_levels() {
        let small = L0Sampler::new(1 << 8, 0);
        let big = L0Sampler::new(1 << 30, 0);
        assert!(big.words() > small.words());
        assert_eq!(small.words(), small.levels() as u64 * 4 + 2);
    }
}
