//! The `ℓ0`-sampler of the paper's Lemma 3.1 (\[CJ19\]).
//!
//! Coordinates of an `N`-dimensional vector are assigned to geometric
//! levels by a seeded hash (`Pr[level j] = 2^-(j+1)`); each level
//! keeps a one-sparse cell (value sum / index-weighted sum /
//! fingerprint accumulator). When the vector has `ℓ0` nonzeros, the
//! level `≈ log2 ℓ0` holds one surviving nonzero with constant
//! probability, and its cell recovers it. Querying scans all levels
//! and returns the first recovery.
//!
//! A single sampler succeeds with constant probability; the
//! `δ`-failure version of Lemma 3.1 takes `O(log 1/δ)` independent
//! copies, which is what [`SketchBank`](crate::bank::SketchBank)
//! provides.
//!
//! **Storage:** the cells live in one dense per-level array of
//! interleaved 32-byte cells — the same column layout the bank's
//! [`SketchArena`](crate::arena::SketchArena) pool uses (and the same
//! `Cell` update/merge routines), so an update is a computed-offset
//! write with no search and no allocation, and the representation is
//! canonical by construction (two permutations of one update stream
//! produce bit-identical arrays). All family randomness lives in one
//! shared [`SketchFamily`]. The `levels × cell` shape is also exactly
//! what [`L0Sampler::words`] charges the MPC memory accounting.

use crate::arena::{sample_cell_slice, Cell, SketchFamily};
use mpc_hashing::field::M61;

/// Outcome of querying an [`L0Sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The summarized vector is (w.h.p.) zero — the paper's `⊥`.
    Zero,
    /// A nonzero coordinate and its value.
    Sample {
        /// The sampled coordinate.
        index: u64,
        /// Its value.
        weight: i64,
    },
    /// The sampler failed this time (no level decoded one-sparse);
    /// retry with an independent copy.
    Fail,
}

/// A linear `ℓ0`-sampling sketch over vectors indexed by `[0, N)`.
///
/// Two samplers [`merge`](L0Sampler::merge) iff they were built with
/// the same `(max_index, seed)` pair, in which case the merge
/// summarizes the coordinate-wise sum.
///
/// # Examples
///
/// ```
/// use mpc_sketch::l0::{L0Sampler, SampleOutcome};
///
/// let mut a = L0Sampler::new(1000, 7);
/// let mut b = L0Sampler::new(1000, 7);
/// a.update(5, 1);
/// b.update(5, -1);
/// a.merge(&b);
/// assert_eq!(a.sample(), SampleOutcome::Zero);
/// ```
#[derive(Debug, Clone)]
pub struct L0Sampler {
    family: SketchFamily,
    /// Dense per-level column of interleaved one-sparse cells;
    /// `cells[l]` is the level-`l` cell.
    cells: Vec<Cell>,
}

/// Equality is structural over the summarized vector's cells: the
/// dense column is canonical, so two samplers of one family that
/// summarize the same vector are equal no matter the update order.
impl PartialEq for L0Sampler {
    fn eq(&self, other: &Self) -> bool {
        self.family.same_family(&other.family) && self.cells == other.cells
    }
}

impl L0Sampler {
    /// Creates a sampler for vectors indexed by `[0, max_index)`,
    /// with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_index == 0`.
    pub fn new(max_index: u64, seed: u64) -> Self {
        Self::from_family(SketchFamily::new(max_index, seed))
    }

    /// Creates a zero sampler over an existing family's randomness.
    pub fn from_family(family: SketchFamily) -> Self {
        let levels = family.levels();
        L0Sampler {
            family,
            cells: vec![Cell::ZERO; levels],
        }
    }

    /// Builds a sampler directly from a family and its dense cell
    /// column (the bank's merge paths materialize results this way).
    pub(crate) fn from_raw(
        family: SketchFamily,
        value_sum: Vec<i64>,
        index_sum: Vec<i128>,
        fp: Vec<M61>,
    ) -> Self {
        debug_assert_eq!(value_sum.len(), family.levels());
        let cells = value_sum
            .into_iter()
            .zip(index_sum)
            .zip(fp)
            .map(|((value_sum, index_sum), fp)| Cell {
                index_sum,
                value_sum,
                fp,
            })
            .collect();
        L0Sampler { family, cells }
    }

    /// The seed this sampler's randomness derives from.
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The shared family randomness.
    pub fn family(&self) -> &SketchFamily {
        &self.family
    }

    /// A zero-accumulator sampler of this sampler's family: the level
    /// hash and fingerprint randomness (including the shared power
    /// tables) are reused, so materializing many samplers of one
    /// family costs no seeding work.
    pub fn fresh(&self) -> L0Sampler {
        Self::from_family(self.family.clone())
    }

    /// Number of geometric levels.
    pub fn levels(&self) -> usize {
        self.family.levels()
    }

    /// Memory footprint in `u64` words for the MPC accounting: one
    /// one-sparse cell per level plus two header words — the paper's
    /// dense layout, which is both what the model's machines budget
    /// for and (since the columnar refactor) the host layout itself.
    pub fn words(&self) -> u64 {
        self.family.levels() as u64 * crate::one_sparse::OneSparseCell::WORDS + 2
    }

    /// Applies `X[index] += delta`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= max_index`.
    pub fn update(&mut self, index: u64, delta: i64) {
        // lint: allow(panic-reachability): documented "# Panics" precondition — the family fixes the index space at construction
        assert!(
            index < self.family.max_index(),
            "index {index} out of range {}",
            self.family.max_index()
        );
        let level = self.family.level_of(index);
        let term = self.family.term(index);
        self.cells[level].apply(index as i128, delta, term);
    }

    /// Applies `X[index] += delta_a` to `a` and `X[index] += delta_b`
    /// to `b`, which must belong to the same family: the level hash
    /// and the fingerprint term are computed once and applied to both
    /// — the fast path for edge updates, where the two endpoint
    /// sketches of one copy always receive the same coordinate with
    /// opposite signs.
    ///
    /// # Panics
    ///
    /// Panics if the families differ or `index` is out of range.
    pub fn update_pair(
        a: &mut L0Sampler,
        b: &mut L0Sampler,
        index: u64,
        delta_a: i64,
        delta_b: i64,
    ) {
        assert!(
            a.family.same_family(&b.family),
            "pair update requires samplers of one family"
        );
        assert!(index < a.family.max_index(), "index {index} out of range");
        let level = a.family.level_of(index);
        let term = a.family.term(index);
        let weighted = index as i128;
        a.cells[level].apply(weighted, delta_a, term);
        b.cells[level].apply(weighted, delta_b, term);
    }

    /// Merges a sampler of the same family (vector addition): one
    /// vectorized pass over the dense columns
    /// ([`KernelKind::selected`](crate::kernels::KernelKind::selected)
    /// tier — bit-identical at every tier).
    ///
    /// # Panics
    ///
    /// Panics if the families differ.
    pub fn merge(&mut self, other: &L0Sampler) {
        assert!(
            self.family.same_family(&other.family),
            "cannot merge l0-samplers from different families"
        );
        crate::kernels::KernelKind::selected().fold_cells(&mut self.cells, &other.cells);
    }

    /// Whether every cell is zero (w.h.p. the zero vector).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(Cell::is_zero)
    }

    /// Queries the sampler: levels are scanned from the sparsest
    /// (highest) down — they are the ones designed to isolate a single
    /// survivor — and the first one-sparse recovery wins.
    pub fn sample(&self) -> SampleOutcome {
        sample_cell_slice(
            &self.cells,
            &self.family,
            crate::kernels::KernelKind::selected(),
        )
    }
}

impl mpc_snapshot::Persist for L0Sampler {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.family.save(w);
        self.cells.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let family = SketchFamily::load(r)?;
        let cells = Vec::<Cell>::load(r)?;
        if cells.len() != family.levels() {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "sampler column has {} cells for a {}-level family",
                cells.len(),
                family.levels()
            )));
        }
        Ok(L0Sampler { family, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_vector_reports_zero() {
        let s = L0Sampler::new(100, 1);
        assert_eq!(s.sample(), SampleOutcome::Zero);
    }

    #[test]
    fn singleton_always_recovered() {
        for seed in 0..20 {
            let mut s = L0Sampler::new(1 << 20, seed);
            s.update(777, 3);
            assert_eq!(
                s.sample(),
                SampleOutcome::Sample {
                    index: 777,
                    weight: 3
                },
                "seed {seed}"
            );
        }
    }

    #[test]
    fn insert_delete_returns_to_zero() {
        let mut s = L0Sampler::new(1 << 16, 5);
        for i in 0..50u64 {
            s.update(i * 7, 1);
        }
        for i in 0..50u64 {
            s.update(i * 7, -1);
        }
        assert_eq!(s.sample(), SampleOutcome::Zero);
        assert!(s.is_zero());
    }

    #[test]
    fn sample_returns_true_nonzero() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut successes = 0;
        let trials = 200;
        for t in 0..trials {
            let mut s = L0Sampler::new(1 << 20, t);
            let support: Vec<u64> = (0..100).map(|_| rng.gen_range(0..1 << 20)).collect();
            let mut dedup = support.clone();
            dedup.sort_unstable();
            dedup.dedup();
            for &i in &dedup {
                s.update(i, 1);
            }
            match s.sample() {
                SampleOutcome::Sample { index, weight } => {
                    assert!(dedup.contains(&index), "sampled index must be in support");
                    assert_eq!(weight, 1);
                    successes += 1;
                }
                SampleOutcome::Fail => {}
                SampleOutcome::Zero => panic!("nonzero vector reported zero"),
            }
        }
        // A single sampler succeeds with constant probability; with
        // geometric levels the empirical rate is well above 1/2.
        assert!(
            successes * 2 > trials,
            "success rate too low: {successes}/{trials}"
        );
    }

    #[test]
    fn merge_linearity_matches_direct() {
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..30 {
            let seed = trial;
            let mut direct = L0Sampler::new(1 << 12, seed);
            let mut a = L0Sampler::new(1 << 12, seed);
            let mut b = L0Sampler::new(1 << 12, seed);
            for _ in 0..60 {
                let i = rng.gen_range(0u64..1 << 12);
                let d = if rng.gen_bool(0.5) { 1 } else { -1 };
                direct.update(i, d);
                if rng.gen_bool(0.5) {
                    a.update(i, d);
                } else {
                    b.update(i, d);
                }
            }
            a.merge(&b);
            assert_eq!(a, direct, "trial {trial}");
        }
    }

    #[test]
    fn update_order_is_canonical() {
        // The dense column is a canonical representation: any
        // permutation of one update stream yields an equal sampler.
        let updates: Vec<(u64, i64)> = (0..40u64).map(|i| (i * 97 % 4096, 1)).collect();
        let mut forward = L0Sampler::new(4096, 8);
        let mut backward = L0Sampler::new(4096, 8);
        for &(i, d) in &updates {
            forward.update(i, d);
        }
        for &(i, d) in updates.iter().rev() {
            backward.update(i, d);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn sampling_is_spread_over_support() {
        // Different seeds should sample different coordinates — the
        // "random edge" property the replacement-edge search relies on.
        let support: Vec<u64> = (0..64).map(|i| i * 1000 + 13).collect();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut s = L0Sampler::new(1 << 20, seed);
            for &i in &support {
                s.update(i, 1);
            }
            if let SampleOutcome::Sample { index, .. } = s.sample() {
                seen.insert(index);
            }
        }
        assert!(
            seen.len() >= 16,
            "samples too concentrated: {} distinct",
            seen.len()
        );
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn cross_family_merge_panics() {
        let mut a = L0Sampler::new(100, 1);
        let b = L0Sampler::new(100, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        let mut s = L0Sampler::new(10, 1);
        s.update(10, 1);
    }

    #[test]
    fn weighted_entries_recovered() {
        // The sampler is defined over integer vectors, not just ±1.
        let mut s = L0Sampler::new(1 << 10, 3);
        s.update(100, 7);
        assert_eq!(
            s.sample(),
            SampleOutcome::Sample {
                index: 100,
                weight: 7
            }
        );
        s.update(100, -3);
        assert_eq!(
            s.sample(),
            SampleOutcome::Sample {
                index: 100,
                weight: 4
            }
        );
    }

    #[test]
    fn clone_then_diverge() {
        let mut a = L0Sampler::new(1 << 10, 9);
        a.update(5, 1);
        let mut b = a.clone();
        b.update(5, -1);
        assert_eq!(b.sample(), SampleOutcome::Zero);
        assert_eq!(
            a.sample(),
            SampleOutcome::Sample {
                index: 5,
                weight: 1
            }
        );
    }

    #[test]
    fn words_scale_with_levels() {
        let small = L0Sampler::new(1 << 8, 0);
        let big = L0Sampler::new(1 << 30, 0);
        assert!(big.words() > small.words());
        assert_eq!(small.words(), small.levels() as u64 * 4 + 2);
    }
}
