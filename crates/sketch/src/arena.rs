//! Columnar arena storage for sketch banks.
//!
//! The pre-arena [`SketchBank`](crate::bank::SketchBank) was a
//! `Vec<Option<Vec<VertexSketch>>>` — one heap column per vertex,
//! each sketch owning its own sparse cell list and a clone of the
//! family randomness. Every update chased four pointers and every
//! component merge cloned whole sketches. This module flattens that
//! grid into **one contiguous pool per bank**:
//!
//! * [`SketchFamily`] — the per-copy randomness (level hash +
//!   fingerprint family), seeded **once** per copy and borrowed by
//!   every column. Materializing a vertex costs no seeding work and
//!   no per-sketch randomness storage.
//! * [`SketchArena`] — all one-sparse cells of an `n × copies ×
//!   levels` bank in one contiguous pool of interleaved 32-byte
//!   cells (value sum + index-weighted sum + fingerprint
//!   accumulator), keyed by a dense `(vertex block, copy, level)`
//!   offset, plus a live-level bitmask per `(column, copy)`. A
//!   vertex's block is appended on first touch (lazy materialization
//!   is preserved); an update is one cache-line write at a computed
//!   offset, and merges walk only the mask's set bits.
//! * [`MergeScratch`] — a zero-allocation merge accumulator: one
//!   dense struct-of-arrays column (`value_sum` / `index_sum` /
//!   fingerprint), reused across every component merge of a
//!   converge-cast. Merging a member streams its live cells into the
//!   accumulator; no sketch is ever cloned.
//!
//! The **accounted** shape is unchanged: the MPC memory accounting
//! still charges the paper's dense `levels × cell` layout per
//! materialized column (see [`crate::l0::L0Sampler::words`]); the
//! arena is the host representation of exactly that shape.

use crate::kernels::KernelKind;
use crate::l0::SampleOutcome;
use crate::one_sparse::decode_parts;
use mpc_hashing::field::M61;
use mpc_hashing::fingerprint::FingerprintFamily;
use mpc_hashing::kwise::KWiseHash;
use std::sync::Arc;

/// The shared randomness of one sketch copy: the geometric level hash
/// and the fingerprint family, both derived from a single seed with
/// the same derivation the standalone
/// [`L0Sampler`](crate::l0::L0Sampler) uses — a family and a standalone sampler built from the
/// same `(max_index, seed)` pair are merge-compatible.
#[derive(Debug, Clone)]
pub struct SketchFamily {
    max_index: u64,
    seed: u64,
    levels: u32,
    level_hash: KWiseHash,
    fp: Arc<FingerprintFamily>,
}

impl SketchFamily {
    /// Derives the family randomness for vectors indexed by
    /// `[0, max_index)` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_index == 0`.
    pub fn new(max_index: u64, seed: u64) -> Self {
        // lint: allow(panic-reachability): documented "# Panics" precondition — an empty index space is a construction bug
        assert!(max_index > 0, "need a nonempty index space");
        let levels = (64 - max_index.leading_zeros()) + 2;
        SketchFamily {
            max_index,
            seed,
            levels,
            level_hash: KWiseHash::from_seed(2, seed ^ 0x9e37_79b9_7f4a_7c15),
            // Power tables sized to the index space: same evaluation
            // point as an unbounded family of this seed, fewer
            // radix blocks (coordinates never exceed max_index - 1).
            fp: Arc::new(FingerprintFamily::from_seed_bounded(
                seed ^ 0x85eb_ca6b_27d4_eb4f,
                max_index - 1,
            )),
        }
    }

    /// The index-space bound.
    #[inline]
    pub fn max_index(&self) -> u64 {
        self.max_index
    }

    /// The seed all randomness derives from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of geometric levels.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels as usize
    }

    /// Whether two families share all randomness (same seed and
    /// index space) — the merge-compatibility test.
    #[inline]
    pub fn same_family(&self, other: &SketchFamily) -> bool {
        self.max_index == other.max_index && self.seed == other.seed
    }

    /// The geometric level coordinate `index` lives at.
    #[inline]
    pub fn level_of(&self, index: u64) -> usize {
        self.level_hash.geometric_level(index, self.levels - 1) as usize
    }

    /// The fingerprint term `z^index`.
    #[inline]
    pub fn term(&self, index: u64) -> M61 {
        self.fp.term(index)
    }

    /// The shared fingerprint family.
    #[inline]
    pub fn fingerprint(&self) -> &FingerprintFamily {
        &self.fp
    }
}

// Families are pure functions of `(max_index, seed)`: the snapshot
// carries those two words and the load path re-derives the level hash
// and power tables, so a restored family samples bit-identically.
impl mpc_snapshot::Persist for SketchFamily {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u64(self.max_index);
        w.put_u64(self.seed);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let max_index = r.take_u64()?;
        let seed = r.take_u64()?;
        if max_index == 0 {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "sketch family with empty index space".into(),
            ));
        }
        Ok(SketchFamily::new(max_index, seed))
    }
}

/// Sentinel for a never-touched vertex (no block allocated).
const UNMATERIALIZED: u32 = u32::MAX;

/// One one-sparse cell: the value sum, index-weighted sum, and
/// fingerprint accumulator, interleaved so a cell is exactly 32
/// bytes — one update or merge read touches a single cache line
/// instead of three distant pool lines.
///
/// The `repr(C)` layout is load-bearing: field order is declaration
/// order with no padding (16 + 8 + 8 bytes), so the vectorized
/// kernels in [`crate::kernels`] may view a cell as four little-endian
/// 64-bit lanes `[index_lo, index_hi, value_sum, fp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub(crate) struct Cell {
    pub(crate) index_sum: i128,
    pub(crate) value_sum: i64,
    pub(crate) fp: M61,
}

impl Cell {
    pub(crate) const ZERO: Cell = Cell {
        index_sum: 0,
        value_sum: 0,
        fp: M61::ZERO,
    };

    #[inline]
    pub(crate) fn is_zero(&self) -> bool {
        self.value_sum == 0 && self.index_sum == 0 && self.fp.is_zero()
    }

    /// Applies `X[index] += delta` given the precomputed
    /// `weighted = index` widening and fingerprint term — the one
    /// cell-update routine shared by the arena pool and the
    /// standalone sampler column. Delegates to the portable kernel so
    /// there is exactly one scalar reference for the vectorized tiers
    /// to match.
    #[inline]
    pub(crate) fn apply(&mut self, weighted: i128, delta: i64, term: M61) {
        crate::kernels::portable::cell_apply(self, weighted, delta, term);
    }

    /// Adds another cell of the same family (vector addition).
    #[inline]
    pub(crate) fn absorb(&mut self, other: &Cell) {
        self.value_sum = self.value_sum.wrapping_add(other.value_sum);
        self.index_sum = self.index_sum.wrapping_add(other.index_sum);
        self.fp += other.fp;
    }
}

impl mpc_snapshot::Persist for Cell {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_i128(self.index_sum);
        w.put_i64(self.value_sum);
        self.fp.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(Cell {
            index_sum: r.take_i128()?,
            value_sum: r.take_i64()?,
            fp: M61::load(r)?,
        })
    }
}

/// The contiguous cell pool of a whole sketch bank: `copies`
/// families and, per materialized vertex, one dense block of
/// `copies × levels` interleaved 32-byte cells.
#[derive(Debug, Clone)]
pub struct SketchArena {
    copies: usize,
    levels: usize,
    families: Vec<SketchFamily>,
    /// Block index per vertex ([`UNMATERIALIZED`] until first touch).
    base: Vec<u32>,
    cells: Vec<Cell>,
    /// One live-level bitmask per `(vertex block, copy)`: bit `l` is
    /// set iff cell `l` of that column is nonzero. Merges walk only
    /// set bits, so a component merge touches live cells instead of
    /// the whole dense column. Maintained only while `levels ≤ 64`
    /// (always, for the `≤ 2^62`-sized index spaces the graph
    /// sketches use); wider columns fall back to full scans.
    live: Vec<u64>,
    /// The vectorization tier every cell kernel of this arena
    /// dispatches through — fixed at construction
    /// ([`KernelKind::selected`]), never persisted (a restored arena
    /// re-selects for the restoring host), and irrelevant to results:
    /// all tiers are bit-identical.
    kernel: KernelKind,
}

impl SketchArena {
    /// Creates an empty arena for `n` vertices with `copies`
    /// independent families over `[0, max_index)`; copy `i` derives
    /// from `seed + i` (so copies merge across vertices but are
    /// independent across copy indices).
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0` or `max_index == 0`.
    pub fn new(n: usize, copies: usize, max_index: u64, seed: u64) -> Self {
        assert!(copies >= 1, "need at least one sketch copy");
        let families: Vec<SketchFamily> = (0..copies)
            .map(|i| SketchFamily::new(max_index, seed + i as u64))
            .collect();
        let levels = families[0].levels();
        SketchArena {
            copies,
            levels,
            families,
            base: vec![UNMATERIALIZED; n],
            cells: Vec::new(),
            live: Vec::new(),
            kernel: KernelKind::selected(),
        }
    }

    /// Whether live-level masks are maintained (see
    /// [`SketchArena::live`]).
    #[inline]
    fn masked(&self) -> bool {
        self.levels <= 64
    }

    /// The vectorization tier this arena's kernels run at.
    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Overrides the kernel tier, clamped to what the host supports —
    /// the hook the bit-identity property tests use to compare tiers
    /// within one process. Returns the tier actually installed.
    pub fn set_kernel(&mut self, kernel: KernelKind) -> KernelKind {
        self.kernel = kernel.clamped();
        self.kernel
    }

    /// Number of independent copies.
    #[inline]
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Geometric levels per copy.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The family randomness of copy `copy`.
    #[inline]
    pub fn family(&self, copy: usize) -> &SketchFamily {
        &self.families[copy]
    }

    /// Cells per vertex block.
    #[inline]
    fn block(&self) -> usize {
        self.copies * self.levels
    }

    /// Whether vertex `v` has a live cell block.
    #[inline]
    pub fn is_materialized(&self, v: u32) -> bool {
        self.base[v as usize] != UNMATERIALIZED
    }

    /// Ensures vertex `v` has a cell block, returning `true` if one
    /// was newly appended.
    pub fn materialize(&mut self, v: u32) -> bool {
        if self.is_materialized(v) {
            return false;
        }
        let blocks = self.cells.len() / self.block();
        self.base[v as usize] = blocks as u32;
        let new_len = self.cells.len() + self.block();
        self.cells.resize(new_len, Cell::ZERO);
        if self.masked() {
            self.live.resize((blocks + 1) * self.copies, 0);
        }
        true
    }

    /// Applies one cell write at pool offset `s` and keeps the
    /// live-level mask of `(block base `mask_at`, level)` current.
    #[inline]
    fn write_cell(
        &mut self,
        s: usize,
        mask_at: usize,
        level: usize,
        weighted: i128,
        delta: i64,
        term: M61,
    ) {
        self.kernel
            .cell_apply(&mut self.cells[s], weighted, delta, term);
        if self.masked() {
            let bit = 1u64 << level;
            if self.cells[s].is_zero() {
                self.live[mask_at] &= !bit;
            } else {
                self.live[mask_at] |= bit;
            }
        }
    }

    /// Mask-vector offset of `(v, copy)`.
    #[inline]
    fn mask_slot(&self, v: u32, copy: usize) -> usize {
        self.base[v as usize] as usize * self.copies + copy
    }

    /// Pool offset of cell `(v, copy, level)`; `v` must be
    /// materialized.
    #[inline]
    fn slot(&self, v: u32, copy: usize, level: usize) -> usize {
        debug_assert!(self.is_materialized(v), "vertex {v} not materialized");
        self.base[v as usize] as usize * self.block() + copy * self.levels + level
    }

    /// Applies `X_v[index] += delta` to **all** copies of vertex `v`'s
    /// column (one level/term evaluation per copy). The vertex must be
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the family index space.
    pub fn update(&mut self, v: u32, index: u64, delta: i64) {
        // lint: allow(panic-reachability): documented "# Panics" precondition — the bank derives indices from the shared family
        assert!(
            index < self.families[0].max_index,
            "index {index} out of range {}",
            self.families[0].max_index
        );
        let weighted = index as i128;
        for copy in 0..self.copies {
            let family = &self.families[copy];
            let level = family.level_of(index);
            let term = family.term(index);
            let s = self.slot(v, copy, level);
            let m = self.mask_slot(v, copy);
            self.write_cell(s, m, level, weighted, delta, term);
        }
    }

    /// Applies `X_a[index] += delta_a` and `X_b[index] += delta_b` to
    /// all copies of two distinct vertices' columns, evaluating the
    /// level hash and the fingerprint term **once per copy** for the
    /// pair — the edge-update fast path. Both vertices must be
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `a == b`.
    pub fn update_pair(&mut self, a: u32, b: u32, index: u64, delta_a: i64, delta_b: i64) {
        // lint: allow(panic-reachability): documented "# Panics" precondition — the bank derives indices from the shared family
        assert!(
            index < self.families[0].max_index,
            "index {index} out of range {}",
            self.families[0].max_index
        );
        // lint: allow(panic-reachability): documented "# Panics" precondition — Edge's invariant keeps endpoints distinct
        assert_ne!(a, b, "pair update requires distinct vertices");
        let weighted = index as i128;
        for copy in 0..self.copies {
            let family = &self.families[copy];
            let level = family.level_of(index);
            let term = family.term(index);
            let sa = self.slot(a, copy, level);
            let ma = self.mask_slot(a, copy);
            self.write_cell(sa, ma, level, weighted, delta_a, term);
            let sb = self.slot(b, copy, level);
            let mb = self.mask_slot(b, copy);
            self.write_cell(sb, mb, level, weighted, delta_b, term);
        }
    }

    /// The raw cell triple at `(v, copy, level)` (zero for
    /// unmaterialized vertices).
    #[inline]
    pub fn cell(&self, v: u32, copy: usize, level: usize) -> (i64, i128, M61) {
        if !self.is_materialized(v) {
            return (0, 0, M61::ZERO);
        }
        let s = self.slot(v, copy, level);
        let c = &self.cells[s];
        (c.value_sum, c.index_sum, c.fp)
    }

    /// Queries one vertex column at one copy, without materializing
    /// anything: scan levels from sparsest down, return the first
    /// one-sparse recovery.
    pub fn sample_column(&self, v: u32, copy: usize) -> SampleOutcome {
        if !self.is_materialized(v) {
            return SampleOutcome::Zero;
        }
        let start = self.slot(v, copy, 0);
        sample_cell_slice(
            &self.cells[start..start + self.levels],
            &self.families[copy],
            self.kernel,
        )
    }

    /// A merge accumulator sized for this arena's columns. Allocate
    /// once per cascade and reuse it for every component merge.
    pub fn new_scratch(&self) -> MergeScratch {
        MergeScratch {
            copy: 0,
            absorbed: 0,
            live: 0,
            dense: false,
            value_sum: vec![0; self.levels],
            index_sum: vec![0; self.levels],
            fp: vec![M61::ZERO; self.levels],
        }
    }

    /// Accumulates copy `scratch.copy()` of every **materialized**
    /// member column into `scratch` (never-touched vertices are the
    /// zero sketch and are skipped), returning how many columns were
    /// absorbed. Call [`MergeScratch::reset`] before the first member
    /// set of each merge; repeated calls accumulate — that is how a
    /// supernode sums its member pieces without intermediate clones.
    pub fn merge_into(&self, members: &[u32], scratch: &mut MergeScratch) -> usize {
        let copy = scratch.copy;
        debug_assert!(copy < self.copies, "copy {copy} out of range");
        let mut absorbed = 0usize;
        for &v in members {
            if !self.is_materialized(v) {
                continue;
            }
            let start = self.slot(v, copy, 0);
            if self.masked() {
                // Fold only the live levels of this column, extracting
                // maximal contiguous runs of set bits so each run is
                // one vectorized span fold. Levels never interact, so
                // run folds are bit-identical to a per-bit walk.
                let mut mask = self.live[self.mask_slot(v, copy)];
                scratch.live |= mask;
                while mask != 0 {
                    let lo = mask.trailing_zeros() as usize;
                    let run = (!(mask >> lo)).trailing_zeros() as usize;
                    self.kernel.fold_cells_soa(
                        &self.cells[start + lo..start + lo + run],
                        &mut scratch.value_sum[lo..lo + run],
                        &mut scratch.index_sum[lo..lo + run],
                        &mut scratch.fp[lo..lo + run],
                    );
                    // Clear the run; `run` can be 64, which a shifted
                    // mask cannot express.
                    mask = if lo + run >= 64 {
                        0
                    } else {
                        mask & !(((1u64 << run) - 1) << lo)
                    };
                }
            } else {
                scratch.dense = true;
                self.kernel.fold_cells_soa(
                    &self.cells[start..start + self.levels],
                    &mut scratch.value_sum,
                    &mut scratch.index_sum,
                    &mut scratch.fp,
                );
            }
            absorbed += 1;
        }
        scratch.absorbed += absorbed;
        absorbed
    }

    /// Queries the accumulated set sketch in `scratch`. When every
    /// absorbed column carried a live mask, only levels in the union
    /// mask are inspected (a level outside every member's mask is a
    /// sum of zeros — provably zero even under cancellation), walked
    /// from the sparsest down exactly like the dense scan.
    pub fn sample_scratch(&self, scratch: &MergeScratch) -> SampleOutcome {
        let family = &self.families[scratch.copy];
        if self.masked() && !scratch.dense {
            let mut any_nonzero = false;
            let mut mask = scratch.live;
            while mask != 0 {
                let l = 63 - mask.leading_zeros() as usize;
                mask &= !(1u64 << l);
                let (value_sum, index_sum, fp) =
                    (scratch.value_sum[l], scratch.index_sum[l], scratch.fp[l]);
                if value_sum == 0 && index_sum == 0 && fp.is_zero() {
                    continue;
                }
                any_nonzero = true;
                if let crate::one_sparse::OneSparseDecode::One { index, weight } =
                    decode_parts(value_sum, index_sum, fp, |i, w| {
                        family.fingerprint().expected_one_sparse(i, w)
                    })
                {
                    return SampleOutcome::Sample { index, weight };
                }
            }
            return if any_nonzero {
                SampleOutcome::Fail
            } else {
                SampleOutcome::Zero
            };
        }
        sample_cells(
            &scratch.value_sum,
            &scratch.index_sum,
            &scratch.fp,
            family,
            self.kernel,
        )
    }

    /// [`SketchArena::merge_into`] with optional host work stealing:
    /// for large member sets, the columns are split into contiguous
    /// spans that the pool's lanes (and the calling thread) claim
    /// self-scheduled, each accumulating into its **own** scratch
    /// clone; the span partials are then folded into `scratch` in span
    /// order. Cell merges are field / two's-complement additions —
    /// associative and commutative — so the result is bit-identical to
    /// the serial walk. With no pool (or a small member set, where the
    /// scope overhead outweighs the walk) this *is* the serial walk.
    pub fn merge_into_stealing(
        &self,
        members: &[u32],
        scratch: &mut MergeScratch,
        pool: Option<&mpc_sim::WorkerPool>,
    ) -> usize {
        /// Columns per span: small enough to balance skewed
        /// components, large enough that a span amortizes the scope's
        /// synchronization.
        const SPAN: usize = 128;
        let Some(pool) = pool else {
            return self.merge_into(members, scratch);
        };
        if pool.lanes() < 2 || members.len() < 2 * SPAN {
            return self.merge_into(members, scratch);
        }
        let mut spans: Vec<(&[u32], MergeScratch)> = members
            .chunks(SPAN)
            .map(|span| {
                let mut partial = self.new_scratch();
                partial.reset(scratch.copy);
                (span, partial)
            })
            .collect();
        pool.steal_each(&mut spans, |(span, partial)| {
            self.merge_into(span, partial);
        });
        let mut absorbed = 0usize;
        for (_, partial) in &spans {
            self.kernel.fold_soa(
                &mut scratch.value_sum,
                &mut scratch.index_sum,
                &mut scratch.fp,
                &partial.value_sum,
                &partial.index_sum,
                &partial.fp,
            );
            scratch.live |= partial.live;
            scratch.dense |= partial.dense;
            absorbed += partial.absorbed;
        }
        scratch.absorbed += absorbed;
        absorbed
    }
}

// The pool travels wholesale: one contiguous `Vec<Cell>` write at save
// and one at load, with the per-copy families re-derived from their
// seeds. Loading cross-checks every structural invariant (block
// arithmetic, base-table bounds, mask extent) so a corrupted snapshot
// surfaces as a typed error instead of an out-of-bounds slot.
impl mpc_snapshot::Persist for SketchArena {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.families.save(w);
        self.base.save(w);
        self.cells.save(w);
        self.live.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let families = Vec::<SketchFamily>::load(r)?;
        let base = Vec::<u32>::load(r)?;
        let cells = Vec::<Cell>::load(r)?;
        let live = Vec::<u64>::load(r)?;
        let corrupt = |what: String| Err(mpc_snapshot::SnapshotError::Corrupt(what));
        if families.is_empty() {
            return corrupt("sketch arena with no copies".into());
        }
        let copies = families.len();
        let levels = families[0].levels();
        if families.iter().any(|f| f.levels() != levels) {
            return corrupt("sketch arena copies disagree on level count".into());
        }
        let block = copies * levels;
        if cells.len() % block != 0 {
            return corrupt(format!(
                "cell pool length {} is not a multiple of the {block}-cell block",
                cells.len()
            ));
        }
        let blocks = cells.len() / block;
        if base
            .iter()
            .any(|&b| b != UNMATERIALIZED && b as usize >= blocks)
        {
            return corrupt(format!("base table points past {blocks} blocks"));
        }
        let expected_masks = if levels <= 64 { blocks * copies } else { 0 };
        if live.len() != expected_masks {
            return corrupt(format!(
                "live-mask table has {} entries, expected {expected_masks}",
                live.len()
            ));
        }
        Ok(SketchArena {
            copies,
            levels,
            families,
            base,
            cells,
            live,
            // Never persisted: the restoring host re-selects its own
            // tier (tiers are bit-identical, so restore equivalence
            // holds across hosts).
            kernel: KernelKind::selected(),
        })
    }
}

/// One dense reusable merge column (`levels` cells) plus the copy it
/// is bound to. Created by [`SketchArena::new_scratch`] /
/// [`SketchBank::new_scratch`](crate::bank::SketchBank::new_scratch).
#[derive(Debug, Clone)]
pub struct MergeScratch {
    copy: usize,
    absorbed: usize,
    /// Union of the live-level masks of every absorbed column: a
    /// level outside this union is a sum of zero cells, so the query
    /// scan can skip it without looking.
    pub(crate) live: u64,
    /// Set when a column without a live mask was absorbed (arena with
    /// `levels > 64`), invalidating `live` — queries fall back to the
    /// dense scan.
    pub(crate) dense: bool,
    pub(crate) value_sum: Vec<i64>,
    pub(crate) index_sum: Vec<i128>,
    pub(crate) fp: Vec<M61>,
}

impl MergeScratch {
    /// Rebinds the accumulator to `copy` and zeroes every cell —
    /// call before each new component merge.
    pub fn reset(&mut self, copy: usize) {
        self.copy = copy;
        self.absorbed = 0;
        self.live = 0;
        self.dense = false;
        self.value_sum.fill(0);
        self.index_sum.fill(0);
        self.fp.fill(M61::ZERO);
    }

    /// The copy index this accumulator is bound to.
    #[inline]
    pub fn copy(&self) -> usize {
        self.copy
    }

    /// Total member columns absorbed since the last reset.
    #[inline]
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// The accumulated raw cell triple at `level` — the hook the
    /// cross-tier bit-identity tests use to compare accumulators
    /// cell for cell.
    #[inline]
    pub fn cell(&self, level: usize) -> (i64, i128, M61) {
        (self.value_sum[level], self.index_sum[level], self.fp[level])
    }

    /// Number of levels in the accumulator column.
    #[inline]
    pub fn levels(&self) -> usize {
        self.value_sum.len()
    }
}

/// Decodes one nonzero cell, mapping a one-sparse recovery to a
/// sample.
#[inline]
fn decode_cell(
    value_sum: i64,
    index_sum: i128,
    fp: M61,
    family: &SketchFamily,
) -> Option<(u64, i64)> {
    if let crate::one_sparse::OneSparseDecode::One { index, weight } =
        decode_parts(value_sum, index_sum, fp, |i, w| {
            family.fingerprint().expected_one_sparse(i, w)
        })
    {
        Some((index, weight))
    } else {
        None
    }
}

/// Samples a dense interleaved cell column (the arena's storage and
/// the standalone sampler): the kernel's wide zero-skip scan hops
/// from one nonzero cell to the next going down from the sparsest
/// level; the first one-sparse recovery wins. `Zero` iff every cell
/// is zero, `Fail` if nonzero cells exist but none decodes.
pub(crate) fn sample_cell_slice(
    cells: &[Cell],
    family: &SketchFamily,
    kernel: KernelKind,
) -> SampleOutcome {
    let mut below = cells.len();
    let mut any_nonzero = false;
    while let Some(l) = kernel.top_nonzero_cells(cells, below) {
        any_nonzero = true;
        let c = &cells[l];
        if let Some((index, weight)) = decode_cell(c.value_sum, c.index_sum, c.fp, family) {
            return SampleOutcome::Sample { index, weight };
        }
        below = l;
    }
    if any_nonzero {
        SampleOutcome::Fail
    } else {
        SampleOutcome::Zero
    }
}

/// Samples a dense cell column held as parallel slices (the scratch
/// accumulator and the standalone sampler); same scan as
/// [`sample_cell_slice`].
pub(crate) fn sample_cells(
    value_sum: &[i64],
    index_sum: &[i128],
    fp: &[M61],
    family: &SketchFamily,
    kernel: KernelKind,
) -> SampleOutcome {
    let mut below = value_sum.len();
    let mut any_nonzero = false;
    while let Some(l) = kernel.top_nonzero_soa(value_sum, index_sum, fp, below) {
        any_nonzero = true;
        if let Some((index, weight)) = decode_cell(value_sum[l], index_sum[l], fp[l], family) {
            return SampleOutcome::Sample { index, weight };
        }
        below = l;
    }
    if any_nonzero {
        SampleOutcome::Fail
    } else {
        SampleOutcome::Zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_matches_standalone_sampler_derivation() {
        // A family and a standalone sampler from the same pair must
        // agree on every level and term — merge compatibility.
        use crate::l0::L0Sampler;
        let family = SketchFamily::new(1 << 16, 42);
        let sampler = L0Sampler::new(1 << 16, 42);
        assert_eq!(family.levels(), sampler.levels());
        for i in [0u64, 1, 999, 65535] {
            let mut a = sampler.fresh();
            let mut b = sampler.fresh();
            a.update(i, 1);
            L0Sampler::update_pair(&mut b, &mut sampler.fresh(), i, 1, -1);
            assert_eq!(a, b, "index {i}");
        }
    }

    #[test]
    fn lazy_blocks_and_pair_updates() {
        let mut arena = SketchArena::new(8, 3, 64, 7);
        assert!(!arena.is_materialized(2));
        assert!(arena.materialize(2));
        assert!(!arena.materialize(2));
        arena.materialize(5);
        arena.update_pair(2, 5, 17, 1, -1);
        assert_eq!(
            arena.sample_column(2, 0),
            SampleOutcome::Sample {
                index: 17,
                weight: 1
            }
        );
        assert_eq!(
            arena.sample_column(5, 1),
            SampleOutcome::Sample {
                index: 17,
                weight: -1
            }
        );
        assert_eq!(arena.sample_column(7, 0), SampleOutcome::Zero);
    }

    #[test]
    fn scratch_merge_cancels_opposite_columns() {
        let mut arena = SketchArena::new(4, 2, 1 << 10, 3);
        arena.materialize(0);
        arena.materialize(1);
        arena.update_pair(0, 1, 100, 1, -1);
        arena.update(0, 200, 1);
        let mut scratch = arena.new_scratch();
        scratch.reset(1);
        assert_eq!(arena.merge_into(&[0, 1, 3], &mut scratch), 2);
        assert_eq!(scratch.absorbed(), 2);
        // The {0,1}-internal coordinate 100 cancels; 200 survives.
        assert_eq!(
            arena.sample_scratch(&scratch),
            SampleOutcome::Sample {
                index: 200,
                weight: 1
            }
        );
        // A vertex whose updates cancel back to zero samples Zero.
        arena.materialize(2);
        arena.update(2, 200, -1);
        arena.update(2, 200, 1);
        assert_eq!(arena.sample_column(2, 1), SampleOutcome::Zero);
    }

    #[test]
    fn reset_rebinds_copy() {
        let mut arena = SketchArena::new(4, 2, 1 << 10, 9);
        arena.materialize(0);
        arena.update(0, 5, 1);
        let mut scratch = arena.new_scratch();
        scratch.reset(0);
        arena.merge_into(&[0], &mut scratch);
        assert!(matches!(
            arena.sample_scratch(&scratch),
            SampleOutcome::Sample {
                index: 5,
                weight: 1
            }
        ));
        scratch.reset(1);
        assert_eq!(scratch.absorbed(), 0);
        assert_eq!(scratch.copy(), 1);
        assert_eq!(arena.sample_scratch(&scratch), SampleOutcome::Zero);
    }
}
