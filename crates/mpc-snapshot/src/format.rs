//! The on-disk container: magic, format version, stream epoch, a
//! section table with per-section FNV-1a checksums, and the section
//! payloads. See `crates/mpc-snapshot/README.md` for the byte-level
//! specification.
//!
//! All integers are little-endian. The container is written in one
//! piece by [`SnapshotWriter::finish`]/[`SnapshotWriter::write_to`]
//! and fully validated (magic, version, table shape, every checksum)
//! by [`Snapshot::from_bytes`] before any section is handed out.

use crate::error::SnapshotError;
use std::path::Path;

/// The 8-byte file magic: `MPCSNAP` plus the container generation.
pub const MAGIC: [u8; 8] = *b"MPCSNAP1";

/// The current format version. Bump on any incompatible change to
/// the container layout *or* to any `Persist` encoding.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the dependency-free checksum guarding
/// every section payload. Not cryptographic; it detects the
/// truncation/bit-rot class of corruption, which is the threat model
/// of a host-side checkpoint file.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Builds a snapshot: named sections are opened, filled through the
/// `put_*` primitives (the sink every [`Persist::save`] writes to),
/// and sealed into the checksummed container.
///
/// [`Persist::save`]: crate::Persist::save
///
/// # Examples
///
/// ```
/// use mpc_snapshot::{Snapshot, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new(7);
/// w.begin_section("numbers");
/// w.put_u64(42);
/// w.end_section();
/// let bytes = w.finish();
/// let snap = Snapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(snap.epoch(), 7);
/// assert_eq!(snap.section("numbers").unwrap().take_u64().unwrap(), 42);
/// ```
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    epoch: u64,
    sections: Vec<(String, Vec<u8>)>,
    open: bool,
}

impl SnapshotWriter {
    /// Starts an empty snapshot carrying `epoch` in its header.
    pub fn new(epoch: u64) -> Self {
        SnapshotWriter {
            epoch,
            sections: Vec::new(),
            open: false,
        }
    }

    /// Opens a new section. Section names must be unique within one
    /// snapshot and at most `u16::MAX` bytes.
    ///
    /// # Panics
    ///
    /// Panics if a section is already open, on a duplicate name, or
    /// on an over-long name — all caller bugs, not data-dependent
    /// conditions.
    pub fn begin_section(&mut self, name: &str) {
        assert!(!self.open, "begin_section with a section already open");
        assert!(
            name.len() <= usize::from(u16::MAX),
            "section name longer than u16::MAX bytes"
        );
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section name {name:?}"
        );
        self.sections.push((name.to_string(), Vec::new()));
        self.open = true;
    }

    /// Seals the open section, returning its payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn end_section(&mut self) -> u64 {
        assert!(self.open, "end_section without begin_section");
        self.open = false;
        self.sections.last().map_or(0, |(_, b)| b.len() as u64)
    }

    fn buf(&mut self) -> &mut Vec<u8> {
        assert!(self.open, "put_* outside an open section");
        &mut self
            .sections
            .last_mut()
            .expect("open implies a section exists")
            .1
    }

    /// Appends raw bytes to the open section.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf().extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf().push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i128`.
    pub fn put_i128(&mut self, v: i128) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit on every
    /// host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by its IEEE-754 bit pattern — bit-exact
    /// round-tripping, no parsing, NaN-safe.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.put_bytes(v.as_bytes());
    }

    /// The epoch this snapshot will carry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sealed section names and payload sizes, in write order — the
    /// per-maintainer byte attribution the session surfaces in its
    /// stats rollup.
    pub fn section_sizes(&self) -> Vec<(String, u64)> {
        self.sections
            .iter()
            .map(|(n, b)| (n.clone(), b.len() as u64))
            .collect()
    }

    /// Serializes the container: header, section table (name, length,
    /// FNV-1a checksum per section), then the payloads in table
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    pub fn finish(self) -> Vec<u8> {
        assert!(!self.open, "finish with a section still open");
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Serializes and writes the container to `path`, returning the
    /// total bytes written. The write goes through a `.tmp` sibling
    /// and an atomic rename, so a crash mid-write never leaves a
    /// half-snapshot under the final name.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn write_to(self, path: &Path) -> Result<u64, SnapshotError> {
        let bytes = self.finish();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(bytes.len() as u64)
    }
}

/// A parsed, checksum-verified snapshot. Constructing one validates
/// the whole container; [`Snapshot::section`] then hands out cursors
/// over individual payloads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u32,
    epoch: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Parses and fully validates a serialized snapshot: magic,
    /// version, table shape, and every section's checksum.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::Corrupt`] on structural damage, or
    /// [`SnapshotError::ChecksumMismatch`] naming the damaged section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let take = |at: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| SnapshotError::Corrupt("truncated header/table".into()))?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        };
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut at = MAGIC.len();
        let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("sized"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let epoch = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("sized"));
        let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("sized")) as usize;
        let mut table: Vec<(String, u64, u64)> = Vec::new();
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("sized"));
            let name = std::str::from_utf8(take(&mut at, usize::from(name_len))?)
                .map_err(|_| SnapshotError::Corrupt("non-UTF-8 section name".into()))?
                .to_string();
            let len = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("sized"));
            let sum = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("sized"));
            table.push((name, len, sum));
        }
        let mut sections = Vec::with_capacity(count);
        for (name, len, sum) in table {
            let len = usize::try_from(len)
                .map_err(|_| SnapshotError::Corrupt(format!("section `{name}` length overflow")))?;
            let payload = take(&mut at, len)
                .map_err(|_| SnapshotError::Corrupt(format!("section `{name}` truncated")))?
                .to_vec();
            if fnv1a(&payload) != sum {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            sections.push((name, payload));
        }
        if at != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last section",
                bytes.len() - at
            )));
        }
        Ok(Snapshot {
            version,
            epoch,
            sections,
        })
    }

    /// Reads and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, then everything
    /// [`Snapshot::from_bytes`] reports.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Snapshot::from_bytes(&bytes)
    }

    /// The container format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The stream epoch embedded at write time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Section names in write order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// A section's payload size in bytes, if present.
    pub fn section_len(&self, name: &str) -> Option<u64> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.len() as u64)
    }

    /// A cursor over one section's payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] if absent.
    pub fn section(&self, name: &str) -> Result<SnapshotReader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, b)| SnapshotReader {
                section: n,
                bytes: b,
                at: 0,
            })
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }
}

/// A decoding cursor over one section's payload — the source every
/// [`Persist::load`] reads from. Every `take_*` is bounds-checked and
/// reports the section it ran off the end of.
///
/// [`Persist::load`]: crate::Persist::load
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    section: &'a str,
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over a raw byte slice (for tests and for round-trip
    /// checks outside a full container).
    pub fn over(section: &'a str, bytes: &'a [u8]) -> Self {
        SnapshotReader {
            section,
            bytes,
            at: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Corrupt(format!(
            "section `{}` exhausted at byte {} of {}",
            self.section,
            self.at,
            self.bytes.len()
        ))
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.truncated())?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take_bytes(4)?.try_into().expect("sized"),
        ))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("sized"),
        ))
    }

    /// Takes a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("sized"),
        ))
    }

    /// Takes a little-endian `i128`.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_i128(&mut self) -> Result<i128, SnapshotError> {
        Ok(i128::from_le_bytes(
            self.take_bytes(16)?.try_into().expect("sized"),
        ))
    }

    /// Takes a `u64` and narrows it to the host `usize`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when truncated or when the value
    /// does not fit the host word.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| {
            SnapshotError::Corrupt(format!(
                "section `{}`: length {v} exceeds the host word",
                self.section
            ))
        })
    }

    /// Takes an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// As [`SnapshotReader::take_bytes`].
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Takes a `bool`, rejecting anything but 0/1.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on truncation or a non-boolean
    /// byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!(
                "section `{}`: invalid bool byte {b}",
                self.section
            ))),
        }
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on truncation or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.take_usize()?;
        let section = self.section;
        let bytes = self.take_bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| SnapshotError::Corrupt(format!("section `{section}`: non-UTF-8 string")))
    }

    /// Asserts the section is fully consumed — loaders call this last
    /// so trailing garbage (a mis-versioned encoder) is an error, not
    /// silently ignored state.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "section `{}`: {} undecoded trailing bytes",
                self.section,
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn container_round_trips() {
        let mut w = SnapshotWriter::new(9);
        w.begin_section("a");
        w.put_u64(1);
        w.put_str("hello");
        w.put_bool(true);
        w.put_f64(-0.5);
        w.put_i128(-(1i128 << 100));
        assert_eq!(w.end_section(), 8 + 8 + 5 + 1 + 8 + 16);
        w.begin_section("b");
        w.end_section();
        let sizes = w.section_sizes();
        assert_eq!(sizes[0].0, "a");
        assert_eq!(sizes[1], ("b".to_string(), 0));
        let bytes = w.finish();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.version(), FORMAT_VERSION);
        assert_eq!(snap.epoch(), 9);
        assert_eq!(snap.section_names(), vec!["a", "b"]);
        let mut r = snap.section("a").unwrap();
        assert_eq!(r.take_u64().unwrap(), 1);
        assert_eq!(r.take_str().unwrap(), "hello");
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap(), -0.5);
        assert_eq!(r.take_i128().unwrap(), -(1i128 << 100));
        r.expect_end().unwrap();
        assert!(matches!(
            snap.section("zzz"),
            Err(SnapshotError::MissingSection(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Snapshot::from_bytes(b"NOTSNAP1rest"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b""),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = SnapshotWriter::new(0).finish();
        bytes[8] = 99; // version field follows the magic
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_its_checksum() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("data");
        w.put_u64(0xDEAD_BEEF);
        w.end_section();
        let mut bytes = w.finish();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, "data"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_rejected() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("data");
        w.put_u64(5);
        w.end_section();
        let bytes = w.finish();
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&extended),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn reader_reports_exhaustion_and_bad_bools() {
        let mut r = SnapshotReader::over("t", &[2]);
        assert!(matches!(r.take_u64(), Err(SnapshotError::Corrupt(_))));
        let mut r = SnapshotReader::over("t", &[2]);
        assert!(matches!(r.take_bool(), Err(SnapshotError::Corrupt(_))));
        let r = SnapshotReader::over("t", &[2]);
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn file_round_trip_is_atomic_under_the_final_name() {
        let dir = std::env::temp_dir().join("mpc-snapshot-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        let mut w = SnapshotWriter::new(3);
        w.begin_section("s");
        w.put_u32(77);
        w.end_section();
        let written = w.write_to(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        assert!(!path.with_extension("tmp").exists());
        let snap = Snapshot::read_from(&path).unwrap();
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.section("s").unwrap().take_u32().unwrap(), 77);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Snapshot::read_from(&path),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_sections_panic() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("x");
        w.end_section();
        w.begin_section("x");
    }
}
