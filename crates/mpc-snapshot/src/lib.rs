//! `mpc-snapshot` — whole-session checkpoint/restore for the
//! streaming-MPC workspace.
//!
//! The paper's central asymmetry makes standing state precious: a
//! maintained structure answers in `O(1)` rounds while a from-scratch
//! rebuild re-pays the `Θ(log n)` Borůvka cascades the whole system
//! exists to avoid. This crate is the durability spine under that
//! state: a **dependency-free, versioned binary container** (magic +
//! format version + stream epoch + section table + per-section
//! FNV-1a checksums, all hand-rolled because the build environment is
//! offline) and the [`Persist`] trait every state-holding structure
//! in the workspace implements.
//!
//! # Layering
//!
//! This crate sits *below* everything else: it knows nothing about
//! graphs, sketches, or sessions. Each workspace crate implements
//! [`Persist`] for its own types (private fields stay private), the
//! session layer in `mpc-stream-core` assembles whole-session
//! snapshots from named sections, and the `io-hygiene` lint rule
//! confines `std::fs`/`std::io` to this crate plus the tool crates —
//! algorithm crates serialize through [`SnapshotWriter`], never
//! through the filesystem directly.
//!
//! # Encoding rules
//!
//! * Fixed-width little-endian scalars; length-prefixed collections;
//!   `f64` by IEEE-754 bit pattern. One byte representation per
//!   value, so `save → load → save` is byte-stable.
//! * **Accumulated state is saved; derived state is rebuilt.** Hash
//!   seeds and coefficients are written, power tables are not;
//!   restored randomness continues the original stream
//!   bit-identically.
//! * Decoders are total: corrupted input yields a typed
//!   [`SnapshotError`], never a panic or an unbounded allocation.
//!
//! # Examples
//!
//! ```
//! use mpc_snapshot::{load_section, save_section, Snapshot, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new(1); // stream epoch 1
//! save_section(&mut w, "loads", &vec![3u64, 1, 4]);
//! let bytes = w.finish();
//!
//! let snap = Snapshot::from_bytes(&bytes)?;
//! assert_eq!(snap.epoch(), 1);
//! let loads: Vec<u64> = load_section(&snap, "loads")?;
//! assert_eq!(loads, vec![3, 1, 4]);
//! # Ok::<(), mpc_snapshot::SnapshotError>(())
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod format;
pub mod persist;

pub use error::SnapshotError;
pub use format::{fnv1a, Snapshot, SnapshotReader, SnapshotWriter, FORMAT_VERSION, MAGIC};
pub use persist::{load_section, save_section, Persist};
